//! Sweep success rate vs. fault rate, with and without the α-tradeoff
//! fallback (EXPERIMENTS.md "fault tolerance" section).

use qosr::sim::{run_scenario, FaultPlan, HostCrash, ScenarioConfig};

fn main() {
    let seeds = [1u64, 2, 3];
    let crashes = vec![
        HostCrash {
            host: 0,
            at: 600.0,
            recover_at: Some(900.0),
        },
        HostCrash {
            host: 2,
            at: 1800.0,
            recover_at: Some(2100.0),
        },
        HostCrash {
            host: 1,
            at: 2700.0,
            recover_at: Some(3000.0),
        },
    ];
    println!("p_fault | policy | success | lost | retries | rollbacks | degraded | fault_fail | mean_qos");
    for p in [0.0, 0.05, 0.10, 0.20, 0.30] {
        for (label, max_retries, fallback) in [
            ("none", 0u32, false),
            ("retry", 2, false),
            ("retry+tradeoff", 2, true),
        ] {
            let mut succ = 0.0;
            let (mut lost, mut retries, mut rollbacks, mut degraded, mut ffail) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            let mut qos = 0.0;
            for seed in seeds {
                let cfg = ScenarioConfig {
                    seed,
                    rate_per_60tu: 120.0,
                    horizon: 3600.0,
                    faults: FaultPlan {
                        seed: seed.wrapping_mul(97),
                        crashes: crashes.clone(),
                        drop_probability: p / 4.0,
                        commit_failure_probability: p,
                        max_retries,
                        backoff_base: 0.25,
                        tradeoff_fallback: fallback,
                    },
                    ..Default::default()
                };
                let r = run_scenario(&cfg);
                let m = &r.metrics;
                succ += m.overall.success_rate();
                qos += m.overall.avg_qos_level();
                lost += m.sessions_lost;
                retries += m.retries;
                rollbacks += m.rollbacks;
                degraded += m.degraded_establishes;
                ffail += m.fault_failures;
            }
            let n = seeds.len() as f64;
            println!(
                "{:5.2} | {:14} | {:.4} | {:4.0} | {:6.0} | {:6.0} | {:5.0} | {:6.0} | {:.4}",
                p,
                label,
                succ / n,
                lost as f64 / n,
                retries as f64 / n,
                rollbacks as f64 / n,
                degraded as f64 / n,
                ffail as f64 / n,
                qos / n,
            );
        }
    }
}
