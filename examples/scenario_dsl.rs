//! The scenario DSL end to end: load a `*.scenario.json`, validate it,
//! run it twice to demonstrate seed determinism, then build one from a
//! JSON string in-process (SCENARIOS.md is the format reference).

use qosr::sim::{run_scenario, ScenarioFile};

fn main() {
    // 1. Load a curated scenario from the shipped library.
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "scenarios/flash-crowd.scenario.json".into());
    let scenario = ScenarioFile::load(&path).expect("scenario file loads");
    scenario.validate().expect("scenario file is valid");
    println!("scenario {} — {}", scenario.name, scenario.description);
    for (i, rule) in scenario.rules.iter().enumerate() {
        let events: Vec<&str> = rule.events.iter().map(|e| e.kind()).collect();
        println!(
            "  rule {:<20} {:<18} -> {}",
            rule.label(i),
            rule.trigger.kind(),
            events.join(" + ")
        );
    }

    // 2. Run it. The file pins its own seed, so this is reproducible.
    let config = scenario.to_config();
    let result = run_scenario(&config);
    let m = &result.metrics;
    println!(
        "\nrun 1: {} attempts, {:.4} success, {:.4} avg QoS, {} trigger(s), {} burst arrival(s)",
        m.overall.attempts,
        m.overall.success_rate(),
        m.overall.avg_qos_level(),
        m.scenario_triggers,
        m.burst_arrivals,
    );

    // 3. A second run is bit-identical — scenarios replay deterministically.
    let again = run_scenario(&config);
    assert_eq!(again.metrics, result.metrics);
    println!(
        "run 2: identical metrics (deterministic under seed {})",
        config.seed
    );

    // 4. Scenarios need not live on disk: build one from a string.
    let inline = ScenarioFile::from_json(
        r#"{
            "name": "inline-demo",
            "description": "a crash at t=300, recovering 100 TU later",
            "config": { "seed": 7, "rate_per_60tu": 90.0, "horizon": 600.0 },
            "rules": [
                { "name": "blip",
                  "trigger": { "at": 300.0 },
                  "events": [ { "crash_host": { "host": 1, "down_for": 100.0 } } ] }
            ]
        }"#,
    )
    .expect("inline scenario parses");
    inline.validate().expect("inline scenario is valid");
    let r = run_scenario(&inline.to_config());
    println!(
        "\ninline scenario: {} attempts, {:.4} success, {} session(s) lost to the crash",
        r.metrics.overall.attempts,
        r.metrics.overall.success_rate(),
        r.metrics.sessions_lost,
    );
}
