//! DAG dependency graphs and the two-pass heuristic (§4.3.2,
//! figures 6–8).
//!
//! A grid-style analysis pipeline: an ingest component fans out to two
//! parallel analyzers whose outputs fan in at a visualizer. The fan-in
//! component's input QoS is the *concatenation* of its predecessors'
//! output QoS. Pass I of the heuristic probes minimax distances with the
//! fan-in max rule; Pass II backtracks and resolves fan-out
//! non-convergence locally.
//!
//! ```sh
//! cargo run --example grid_dag
//! ```

use qosr::core::{plan_dag, AvailabilityView, Qrg, QrgOptions};
use qosr::prelude::*;
use std::sync::Arc;

fn main() {
    // Grades: the ingest produces a data stream at grade 1 (decimated)
    // or 2 (full); each analyzer consumes it and emits results at grade
    // 1 or 2; the visualizer merges both result streams.
    let raw = QosSchema::new("raw", ["grade"]);
    let feed = QosSchema::new("feed", ["grade"]);
    let spectral = QosSchema::new("spectral", ["grade"]);
    let spatial = QosSchema::new("spatial", ["grade"]);
    let vis = QosSchema::new("vis", ["grade"]);
    let v = |s: &Arc<QosSchema>, g: u32| QosVector::new(s.clone(), [g]);

    let ingest = ComponentSpec::new(
        "ingest",
        vec![v(&raw, 2)],
        vec![v(&feed, 1), v(&feed, 2)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(1, 2, 1)
                .entry(0, 0, [6.0])
                .entry(0, 1, [14.0])
                .build(),
        ),
    );
    // Spectral analysis: can produce full-grade results even from the
    // decimated feed (cheap interpolation) — this tempts Pass I into a
    // plan the sibling branch cannot share.
    let spectral_an = ComponentSpec::new(
        "spectral-analyzer",
        vec![v(&feed, 1), v(&feed, 2)],
        vec![v(&spectral, 1), v(&spectral, 2)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(2, 2, 1)
                .entry(0, 0, [5.0])
                .entry(0, 1, [7.0])
                .entry(1, 0, [4.0])
                .entry(1, 1, [9.0])
                .build(),
        ),
    );
    // Spatial analysis: full-grade results strictly need the full feed.
    let spatial_an = ComponentSpec::new(
        "spatial-analyzer",
        vec![v(&feed, 1), v(&feed, 2)],
        vec![v(&spatial, 1), v(&spatial, 2)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(2, 2, 1)
                .entry(0, 0, [6.0])
                .entry(1, 1, [12.0])
                .build(),
        ),
    );
    // The visualizer is a fan-in component: its inputs are
    // concatenations of (spectral, spatial) output grades.
    let visualizer = ComponentSpec::new(
        "visualizer",
        vec![
            QosVector::concat([&v(&spectral, 1), &v(&spatial, 1)]),
            QosVector::concat([&v(&spectral, 2), &v(&spatial, 2)]),
        ],
        vec![v(&vis, 1), v(&vis, 2)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(2, 2, 1)
                .entry(0, 0, [8.0])
                .entry(1, 0, [5.0])
                .entry(1, 1, [15.0])
                .build(),
        ),
    );

    let graph = DependencyGraph::new(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
    let service = Arc::new(
        ServiceSpec::new(
            "grid-analysis",
            vec![ingest, spectral_an, spatial_an, visualizer],
            graph,
            vec![1, 2],
        )
        .unwrap(),
    );
    println!(
        "dependency graph: chain = {}, fan-out at ingest = {}, fan-in at visualizer = {}",
        service.graph().is_chain(),
        service.graph().is_fan_out(0),
        service.graph().is_fan_in(3),
    );

    let mut space = ResourceSpace::new();
    let rids: Vec<_> = ["ingest.cpu", "spectral.cpu", "spatial.cpu", "vis.cpu"]
        .iter()
        .map(|n| space.register(*n, ResourceKind::Compute))
        .collect();
    let session = SessionInstance::new(
        service.clone(),
        rids.iter().map(|&r| ComponentBinding::new([r])).collect(),
        1.0,
    )
    .unwrap();

    for (name, avail) in [
        ("ample resources", [100.0, 100.0, 100.0, 100.0]),
        ("spatial analyzer CPU scarce", [100.0, 100.0, 10.0, 100.0]),
        ("visualizer CPU scarce", [100.0, 100.0, 100.0, 9.0]),
    ] {
        let mut view = AvailabilityView::new();
        for (i, &rid) in rids.iter().enumerate() {
            view.set(rid, avail[i]);
        }
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        println!("\nsnapshot: {name}");
        match plan_dag(&qrg) {
            Ok(plan) => {
                println!(
                    "  embedded graph reaches {} (rank {}), Ψ_G = {:.2}",
                    plan.end_to_end, plan.rank, plan.psi
                );
                for a in &plan.assignments {
                    let comp = service.component(a.component);
                    println!(
                        "  {:>18}: {} -> {}",
                        comp.name(),
                        comp.input_levels()[a.qin],
                        comp.output_levels()[a.qout],
                    );
                }
            }
            Err(e) => println!("  heuristic failed: {e}"),
        }
    }
}
