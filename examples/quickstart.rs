//! Quickstart: define a two-component service, stand up brokers and
//! QoSProxies, and establish a QoS-guaranteed session end to end —
//! recording a JSONL trace of every lifecycle event along the way.
//!
//! ```sh
//! cargo run --example quickstart
//! qosr report results/quickstart-trace.jsonl   # replay the trace
//! qosr trace  results/quickstart-trace.jsonl   # per-session timelines
//! ```

use qosr::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // ── 1. The QoS-Resource Model ────────────────────────────────────
    // A video clip service: an encoder on the server feeds a player at
    // the client. QoS is a single discrete parameter (frame rate).
    let quality = QosSchema::new("video", ["frame_rate"]);
    let v = |fps: u32| QosVector::new(quality.clone(), [fps]);

    // The encoder can produce 15 or 30 fps from the 30 fps master; the
    // translation function maps (input, output) pairs to demands on the
    // component's resource slots.
    let encoder = ComponentSpec::new(
        "encoder",
        vec![v(30)],
        vec![v(15), v(30)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(1, 2, 1)
                .entry(0, 0, [12.0]) // 15 fps: 12 CPU units
                .entry(0, 1, [25.0]) // 30 fps: 25 CPU units
                .build(),
        ),
    );
    // The player needs downstream bandwidth proportional to frame rate.
    let player = ComponentSpec::new(
        "player",
        vec![v(15), v(30)],
        vec![v(15), v(30)],
        vec![SlotSpec::new("net", ResourceKind::NetworkPath)],
        Arc::new(
            TableTranslation::builder(2, 2, 1)
                .entry(0, 0, [8.0])
                .entry(1, 1, [16.0])
                .build(),
        ),
    );
    // End-to-end QoS levels ranked: 30 fps (rank 2) beats 15 fps.
    let service = Arc::new(ServiceSpec::chain("clip", vec![encoder, player], vec![1, 2]).unwrap());

    // ── 2. The reservation-enabled runtime ──────────────────────────
    // One resource space; a server host with a CPU broker, and a network
    // path broker owned by the client-side proxy.
    let mut space = ResourceSpace::new();
    let cpu = space.register("server.cpu", ResourceKind::Compute);
    let net = space.register("path:server->client", ResourceKind::NetworkPath);

    let t0 = SimTime::ZERO;
    let mut server_brokers = BrokerRegistry::new();
    server_brokers.register(Arc::new(LocalBroker::new(
        cpu,
        100.0,
        t0,
        Default::default(),
    )));
    let mut client_brokers = BrokerRegistry::new();
    client_brokers.register(Arc::new(LocalBroker::new(
        net,
        60.0,
        t0,
        Default::default(),
    )));

    // Record every lifecycle event to a JSONL trace; `qosr report` can
    // replay it later. Swap in `Arc::new(NullSink)` (the default of
    // `Coordinator::new`) to run with zero tracing overhead.
    std::fs::create_dir_all("results").expect("create results/");
    let trace_path = "results/quickstart-trace.jsonl";
    let sink = Arc::new(JsonlSink::create(trace_path).expect("create trace file"));
    // Preamble: name the resources so the replay can label bottlenecks.
    for (rid, rname) in [(cpu, "server.cpu"), (net, "path:server->client")] {
        sink.emit(
            &TraceEvent::new(0.0, EventKind::ResourceName)
                .with_resource(u64::from(rid.0))
                .with_name(rname),
        );
    }

    let coordinator = qosr::broker::Coordinator::with_trace(
        vec![
            Arc::new(QosProxy::new("server", server_brokers)),
            Arc::new(QosProxy::new("client", client_brokers)),
        ],
        sink.clone(),
    );

    // ── 3. Establish sessions ────────────────────────────────────────
    let mut rng = StdRng::seed_from_u64(7);
    let session = SessionInstance::new(
        service.clone(),
        vec![ComponentBinding::new([cpu]), ComponentBinding::new([net])],
        1.0,
    )
    .unwrap();

    println!("establishing sessions until resources run out:\n");
    let mut held = Vec::new();
    for i in 1.. {
        let now = t0 + i as f64;
        // Build a session request: the builder carries per-request policy
        // (QoS floor, deadline, planner choice) so `establish_request`
        // needs no positional option arguments.
        let request = SessionRequest::new(session.clone());
        match coordinator.establish_request(&request, now, &mut rng) {
            EstablishOutcome::Committed(est) => {
                println!(
                    "session {}: end-to-end QoS {} (rank {}), bottleneck Ψ = {:.2} on {}",
                    est.id,
                    est.plan.end_to_end,
                    est.plan.rank,
                    est.plan.psi,
                    est.plan
                        .bottleneck
                        .map(|b| space.name(b.resource).to_owned())
                        .unwrap_or_default(),
                );
                held.push(est);
            }
            EstablishOutcome::Degraded {
                session: est,
                from,
                to,
            } => {
                println!(
                    "session {}: committed degraded (rank {from} → {to}) at QoS {}",
                    est.id, est.plan.end_to_end,
                );
                held.push(est);
            }
            EstablishOutcome::Rejected {
                error,
                nearest_miss,
            } => {
                match nearest_miss {
                    Some(miss) => println!(
                        "session rejected: {error} (worst shortfall {:.1}x on {})",
                        miss.ratio,
                        space.name(miss.resource),
                    ),
                    None => println!("session rejected: {error}"),
                }
                break;
            }
        }
    }

    // ── 4. Tear down ─────────────────────────────────────────────────
    let now = t0 + 100.0;
    for est in &held {
        coordinator.terminate(est, now);
    }
    println!(
        "\nreleased {} sessions; protocol stats: {:?}",
        held.len(),
        coordinator.stats()
    );

    // ── 5. Replay the trace ──────────────────────────────────────────
    sink.flush().expect("flush trace");
    let events = qosr::obs::read_jsonl(trace_path).expect("read trace back");
    let summary = TraceSummary::from_events(&events);
    println!(
        "\ntrace written to {trace_path} ({} events); summary:\n{}",
        events.len(),
        summary.render()
    );
}
