//! A miniature version of the paper's performance study (§5): sweep the
//! session generation rate over the figure-9 environment and compare the
//! three planning algorithms — a scaled-down figure 11.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```
//! (Use --release; the full discrete-event runs are slow in debug.)

use qosr::sim::{run_many, PlannerKind, ScenarioConfig};

fn main() {
    let rates = [60.0, 120.0, 180.0, 240.0];
    let planners = [
        PlannerKind::Basic,
        PlannerKind::Tradeoff,
        PlannerKind::Random,
    ];

    let configs: Vec<ScenarioConfig> = rates
        .iter()
        .flat_map(|&rate| {
            planners.iter().map(move |&planner| ScenarioConfig {
                seed: 1,
                rate_per_60tu: rate,
                horizon: 3600.0,
                planner,
                ..ScenarioConfig::default()
            })
        })
        .collect();

    println!("running {} simulations in parallel…\n", configs.len());
    let results = run_many(&configs);

    println!(
        "{:>5}  {:>22}  {:>22}  {:>22}",
        "rate", "basic", "tradeoff", "random"
    );
    println!(
        "{:>5}  {:>22}  {:>22}  {:>22}",
        "", "success / avg QoS", "success / avg QoS", "success / avg QoS"
    );
    for (i, &rate) in rates.iter().enumerate() {
        let row = &results[i * planners.len()..(i + 1) * planners.len()];
        let cell = |r: &qosr::sim::RunResult| {
            format!(
                "{:5.1}% / {:.2}",
                100.0 * r.metrics.overall.success_rate(),
                r.metrics.overall.avg_qos_level()
            )
        };
        println!(
            "{rate:>5.0}  {:>22}  {:>22}  {:>22}",
            cell(&row[0]),
            cell(&row[1]),
            cell(&row[2])
        );
    }

    // The paper's §5.2.2 aside: every resource should become the
    // bottleneck at least once.
    let basic = &results[0];
    println!(
        "\nat rate 60 (basic): {} distinct bottleneck resources, {} total sessions",
        basic.metrics.bottlenecks.len(),
        basic.metrics.overall.attempts,
    );
}
