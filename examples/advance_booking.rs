//! Advance reservations — the paper's §6 "next step", implemented on a
//! piecewise-constant reservation timeline.
//!
//! A virtual-laboratory session (the paper's motivating Grid scenario)
//! is booked for a *future* window: the coordinator plans against the
//! guaranteed minimum availability over the window and books
//! all-or-nothing. Conflicting bookings degrade later requests to lower
//! QoS levels or reject them, exactly like immediate reservations do —
//! but ahead of time.
//!
//! ```sh
//! cargo run --example advance_booking
//! ```

use qosr::broker::{
    AdvanceRegistry, AdvanceRequest, AlphaPolicy, SessionId, SimTime, TimelineBroker,
};
use qosr::core::{plan_basic, Qrg, QrgOptions};
use qosr::prelude::*;
use std::sync::Arc;

fn main() {
    // A remote-experiment service: instrument feed -> analysis -> steering.
    let feed_q = QosSchema::new("feed", ["sample_rate"]);
    let result_q = QosSchema::new("result", ["resolution"]);
    let v = |s: &std::sync::Arc<QosSchema>, x: u32| QosVector::new(s.clone(), [x]);

    let instrument = ComponentSpec::new(
        "instrument-feed",
        vec![v(&feed_q, 100)],
        vec![v(&feed_q, 10), v(&feed_q, 100)],
        vec![SlotSpec::new("bw", ResourceKind::NetworkPath)],
        Arc::new(
            TableTranslation::builder(1, 2, 1)
                .entry(0, 0, [5.0])
                .entry(0, 1, [40.0])
                .build(),
        ),
    );
    let analysis = ComponentSpec::new(
        "analysis",
        vec![v(&feed_q, 10), v(&feed_q, 100)],
        vec![v(&result_q, 1), v(&result_q, 2)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(2, 2, 1)
                .entry(0, 0, [10.0])
                .entry(1, 0, [8.0])
                .entry(1, 1, [55.0])
                .build(),
        ),
    );
    let service = Arc::new(
        ServiceSpec::chain("virtual-lab", vec![instrument, analysis], vec![1, 2]).unwrap(),
    );

    let mut space = ResourceSpace::new();
    let bw = space.register("path:instrument->hpc", ResourceKind::NetworkPath);
    let cpu = space.register("hpc.cpu", ResourceKind::Compute);
    let session_of = |scale: f64| {
        SessionInstance::new(
            service.clone(),
            vec![ComponentBinding::new([bw]), ComponentBinding::new([cpu])],
            scale,
        )
        .unwrap()
    };

    let mut registry = AdvanceRegistry::new();
    registry.register(Arc::new(TimelineBroker::new(bw, 100.0)));
    registry.register(Arc::new(TimelineBroker::new(cpu, 100.0)));

    let t = SimTime::new;
    // Team A books the 09:00-12:00 slot (hours as TU) at full quality.
    let window_a = (t(9.0), t(12.0));
    let view = registry.snapshot_window(window_a.0, window_a.1);
    let session_a = session_of(1.0);
    let qrg = Qrg::build(&session_a, &view, &QrgOptions::default());
    let plan_a = plan_basic(&qrg).unwrap();
    registry
        .book(
            &AdvanceRequest::rigid(SessionId(1), plan_a.total_demand(), window_a.0, window_a.1),
            t(0.0),
        )
        .into_result()
        .unwrap();
    println!(
        "team A books 09:00-12:00 -> {} (Ψ = {:.2})",
        plan_a.end_to_end, plan_a.psi
    );

    // Team B wants an overlapping 11:00-14:00 slot. Within the overlap
    // the CPU has only 45 units left, so the planner degrades to the
    // low-resolution level.
    let window_b = (t(11.0), t(14.0));
    let view = registry.snapshot_window(window_b.0, window_b.1);
    println!(
        "availability over 11:00-14:00: bw = {}, cpu = {}",
        view.avail(bw),
        view.avail(cpu)
    );
    let session_b = session_of(1.0);
    let qrg = Qrg::build(&session_b, &view, &QrgOptions::default());
    let plan_b = plan_basic(&qrg).unwrap();
    registry
        .book(
            &AdvanceRequest::rigid(SessionId(2), plan_b.total_demand(), window_b.0, window_b.1),
            t(0.0),
        )
        .into_result()
        .unwrap();
    println!(
        "team B books 11:00-14:00 -> {} (degraded: Ψ = {:.2})",
        plan_b.end_to_end, plan_b.psi
    );

    // Team C asks for the same afternoon slot at 10x scale ("fat"
    // session): nothing fits while A and B hold their windows…
    let window_c = (t(11.0), t(13.0));
    let view = registry.snapshot_window(window_c.0, window_c.1);
    let session_c = session_of(10.0);
    let qrg = Qrg::build(&session_c, &view, &QrgOptions::default());
    match plan_basic(&qrg) {
        Ok(_) => unreachable!(),
        Err(e) => println!("team C (10x) for 11:00-13:00 -> rejected: {e}"),
    }
    // …but the evening is wide open.
    let window_c = (t(14.0), t(16.0));
    let view = registry.snapshot_window(window_c.0, window_c.1);
    let qrg = Qrg::build(&session_c, &view, &QrgOptions::default());
    let plan_c = plan_basic(&qrg).unwrap();
    registry
        .book(
            &AdvanceRequest::rigid(SessionId(3), plan_c.total_demand(), window_c.0, window_c.1),
            t(0.0),
        )
        .into_result()
        .unwrap();
    println!(
        "team C books 14:00-16:00 -> {} at 10x (Ψ = {:.2})",
        plan_c.end_to_end, plan_c.psi
    );

    // Team A cancels; the overlap frees up for an upgrade.
    let cancelled = registry.cancel_all(SessionId(1));
    let view = registry.snapshot_window(window_b.0, window_b.1);
    println!(
        "after A cancels ({} bookings, {} volume-units released), \
         11:00-14:00 availability: bw = {}, cpu = {}",
        cancelled.bookings_removed,
        cancelled.released_volume,
        view.avail(bw),
        view.avail(cpu)
    );

    // A malleable bulk transfer: move 150 volume-units of results over
    // the path before 18:00, whenever contention is lowest — the broker
    // picks start, duration, and rate around the rigid bookings.
    let transfer = AdvanceRequest::malleable(SessionId(4), bw, 150.0, t(18.0))
        .earliest(t(11.0))
        .max_rate(60.0)
        .alpha_policy(AlphaPolicy::Tradeoff);
    let outcome = registry.book(&transfer, t(10.0));
    let profile = outcome.profile().expect("the evening is wide open");
    println!(
        "bulk transfer (150 units by 18:00) -> [{:.1}, {:.1}) over {} segment(s), psi = {:.2}",
        profile.start.value(),
        profile.end.value(),
        profile.segments.len(),
        profile.psi
    );

    // A rigid crisis session may preempt it: its fixed 80-unit path
    // demand does not fit next to the running transfer, so the broker
    // evicts the transfer, books the crisis window, and replans the
    // transfer around it — all-or-nothing.
    let crisis_demand = ResourceVector::from_pairs([(bw, 80.0), (cpu, 40.0)]).unwrap();
    let outcome = registry.book(
        &AdvanceRequest::rigid(SessionId(5), crisis_demand, t(11.0), t(13.0)).allow_preempt(true),
        t(10.0),
    );
    println!(
        "crisis session books 11:00-13:00, repacking {} malleable session(s)",
        outcome.moved().len()
    );
    if let Some(broker) = registry.get(bw) {
        for b in broker.bookings_of(SessionId(4)) {
            println!(
                "  transfer replanned: rate {:.1} over [{:.1}, {:.1})",
                b.amount,
                b.from.value(),
                b.to.value()
            );
        }
    }
}
