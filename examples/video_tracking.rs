//! The paper's running example (figures 1, 4, and 5): a *Video
//! Streaming + Tracking* service.
//!
//! A video server streams to a tracking proxy that recognizes objects in
//! the frames, then forwards the stream plus tracking results to the
//! client. Three components: `VideoSender → ObjectTracker → VideoPlayer`.
//! Both the tracker and the player have the paper's hypothetical *image
//! intrapolation* capability — they can upscale a lower-quality input at
//! the cost of extra CPU — which is what creates multiple feasible
//! reservation plans per end-to-end QoS level.
//!
//! The example plans the same session under several availability
//! snapshots and shows how the selected plan and its bottleneck shift —
//! the paper's "contention-awareness" in action.
//!
//! ```sh
//! cargo run --example video_tracking
//! ```

use qosr::core::{plan_basic, AvailabilityView, Qrg, QrgOptions};
use qosr::prelude::*;
use std::sync::Arc;

fn main() {
    // QoS spaces: the sender's output is [frame_rate, image_size]; the
    // tracker adds the number of trackable objects; the player adds
    // buffering delay (smaller value index = larger delay).
    let src = QosSchema::new("master", ["frame_rate", "image_size"]);
    let feed = QosSchema::new("feed", ["frame_rate", "image_size"]);
    let tracked = QosSchema::new("tracked", ["frame_rate", "image_size", "objects"]);
    let shown = QosSchema::new(
        "shown",
        ["frame_rate", "image_size", "objects", "smoothness"],
    );

    let sv = |r, s| QosVector::new(src.clone(), [r, s]);
    let fv = |r, s| QosVector::new(feed.clone(), [r, s]);
    let tv = |r, s, o| QosVector::new(tracked.clone(), [r, s, o]);
    let pv = |r, s, o, d| QosVector::new(shown.clone(), [r, s, o, d]);

    // VideoSender: CPU + disk I/O on the video server.
    let sender = ComponentSpec::new(
        "VideoSender",
        vec![sv(30, 480)],
        vec![fv(15, 240), fv(30, 240), fv(30, 480)],
        vec![
            SlotSpec::new("cpu", ResourceKind::Compute),
            SlotSpec::new("disk", ResourceKind::DiskIo),
        ],
        Arc::new(
            TableTranslation::builder(1, 3, 2)
                .entry(0, 0, [6.0, 8.0])
                .entry(0, 1, [10.0, 14.0])
                .entry(0, 2, [18.0, 26.0])
                .build(),
        ),
    );

    // ObjectTracker: CPU on the proxy + bandwidth server->proxy. It can
    // upscale 240-line input to 480 ("image intrapolation") for more
    // CPU, and track 1 or 2 objects.
    let tracker = ComponentSpec::new(
        "ObjectTracker",
        vec![fv(15, 240), fv(30, 240), fv(30, 480)],
        vec![
            tv(15, 240, 1),
            tv(30, 240, 2),
            tv(30, 480, 1),
            tv(30, 480, 2),
        ],
        vec![
            SlotSpec::new("cpu", ResourceKind::Compute),
            SlotSpec::new("bw_in", ResourceKind::NetworkPath),
        ],
        Arc::new(
            TableTranslation::builder(3, 4, 2)
                // From the 15/240 feed: cheap, low quality only.
                .entry(0, 0, [5.0, 6.0])
                // From 30/240: track 2 objects, or upscale to 480.
                .entry(1, 1, [12.0, 12.0])
                .entry(1, 2, [20.0, 12.0]) // intrapolation: extra CPU
                .entry(1, 3, [26.0, 12.0])
                // From 30/480: native high quality.
                .entry(2, 2, [10.0, 24.0])
                .entry(2, 3, [16.0, 24.0])
                .build(),
        ),
    );

    // VideoPlayer: CPU at the client + bandwidth proxy->client. Its
    // output adds smoothness (1 = long buffering, 2 = short).
    let player = ComponentSpec::new(
        "VideoPlayer",
        vec![
            tv(15, 240, 1),
            tv(30, 240, 2),
            tv(30, 480, 1),
            tv(30, 480, 2),
        ],
        vec![
            pv(15, 240, 1, 1),
            pv(30, 240, 2, 1),
            pv(30, 240, 2, 2),
            pv(30, 480, 1, 2),
            pv(30, 480, 2, 1),
            pv(30, 480, 2, 2),
        ],
        vec![
            SlotSpec::new("cpu", ResourceKind::Compute),
            SlotSpec::new("bw_out", ResourceKind::NetworkPath),
        ],
        Arc::new(
            TableTranslation::builder(4, 6, 2)
                .entry(0, 0, [3.0, 6.0])
                .entry(1, 1, [6.0, 12.0])
                .entry(1, 2, [9.0, 16.0]) // short buffering needs headroom
                .entry(2, 3, [8.0, 22.0])
                .entry(3, 4, [10.0, 24.0])
                .entry(3, 5, [14.0, 30.0])
                .build(),
        ),
    );

    // The user ranks the six end-to-end levels linearly (the paper lets
    // the user arbitrate incomparable levels).
    let service = Arc::new(
        ServiceSpec::chain(
            "video-streaming+tracking",
            vec![sender, tracker, player],
            vec![1, 2, 3, 4, 5, 6],
        )
        .unwrap(),
    );

    // Resources: server cpu+disk, proxy cpu, client cpu, two paths.
    let mut space = ResourceSpace::new();
    let s_cpu = space.register("server.cpu", ResourceKind::Compute);
    let s_disk = space.register("server.disk", ResourceKind::DiskIo);
    let p_cpu = space.register("proxy.cpu", ResourceKind::Compute);
    let c_cpu = space.register("client.cpu", ResourceKind::Compute);
    let bw_sp = space.register("path:server->proxy", ResourceKind::NetworkPath);
    let bw_pc = space.register("path:proxy->client", ResourceKind::NetworkPath);

    let session = SessionInstance::new(
        service,
        vec![
            ComponentBinding::new([s_cpu, s_disk]),
            ComponentBinding::new([p_cpu, bw_sp]),
            ComponentBinding::new([c_cpu, bw_pc]),
        ],
        1.0,
    )
    .unwrap();
    session.validate_kinds(&space).unwrap();

    // Three availability snapshots: balanced, bandwidth-starved between
    // server and proxy, and CPU-starved at the proxy.
    let snapshots: [(&str, [f64; 6]); 3] = [
        ("balanced", [100.0, 100.0, 100.0, 100.0, 100.0, 100.0]),
        (
            "server->proxy bandwidth scarce",
            [100.0, 100.0, 100.0, 100.0, 26.0, 100.0],
        ),
        (
            "proxy CPU scarce",
            [100.0, 100.0, 22.0, 100.0, 100.0, 100.0],
        ),
    ];

    for (name, avail) in snapshots {
        let mut view = AvailabilityView::new();
        for (i, rid) in [s_cpu, s_disk, p_cpu, c_cpu, bw_sp, bw_pc]
            .into_iter()
            .enumerate()
        {
            view.set(rid, avail[i]);
        }
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        println!("snapshot: {name}");
        match plan_basic(&qrg) {
            Ok(plan) => {
                println!("  end-to-end QoS: {} (rank {})", plan.end_to_end, plan.rank);
                for a in &plan.assignments {
                    let comp = session.service().component(a.component);
                    println!(
                        "  {:>13}: {} -> {}  reserving {}",
                        comp.name(),
                        comp.input_levels()[a.qin],
                        comp.output_levels()[a.qout],
                        a.demand,
                    );
                }
                if let Some(b) = plan.bottleneck {
                    println!(
                        "  bottleneck: {} at Ψ = {:.2}",
                        space.name(b.resource),
                        b.psi
                    );
                }
            }
            Err(e) => println!("  no feasible plan: {e}"),
        }
        println!();
    }
}
