//! The session-request builder and structured establishment outcomes.
//!
//! This is the client-facing admission API: a [`SessionRequest`] bundles
//! the session instance with everything the coordinator needs to admit
//! it — planning options, an optional QoS floor, an optional admission
//! deadline — and [`Coordinator::establish_request`] returns a
//! structured [`EstablishOutcome`] instead of an ad-hoc result tuple:
//!
//! ```no_run
//! # use qosr_broker::*;
//! # use rand::rngs::StdRng;
//! # use rand::SeedableRng;
//! # fn demo(coordinator: &Coordinator, session: qosr_model::SessionInstance) {
//! let mut rng = StdRng::seed_from_u64(7);
//! let request = SessionRequest::new(session)
//!     .qos_min(1)
//!     .deadline(SimTime::new(30.0))
//!     .alpha_policy(AlphaPolicy::Tradeoff);
//! match coordinator.establish_request(&request, SimTime::new(1.0), &mut rng) {
//!     EstablishOutcome::Committed(est) => println!("rank {}", est.plan.rank),
//!     EstablishOutcome::Degraded { session, from, to } => {
//!         println!("degraded {from} → {to} ({})", session.id.0)
//!     }
//!     EstablishOutcome::Rejected { error, nearest_miss } => {
//!         println!("rejected: {error} (nearest miss: {nearest_miss:?})")
//!     }
//! }
//! # }
//! ```
//!
//! The same request type feeds the batched
//! [`AdmissionQueue`](crate::AdmissionQueue), so single-session and
//! batched admission share one vocabulary.

use crate::SimTime;
use crate::{EstablishError, EstablishOptions, EstablishedSession, ObservationPolicy, RetryPolicy};
use qosr_core::{Planner, QrgOptions};
use qosr_model::{ResourceId, SessionInstance};
use qosr_obs::{RequestTrace, SpanKind, SpanRecord, TraceId};

/// The request-scoped tracing context riding a [`SessionRequest`]: the
/// ingress-minted id plus the ingress instant, from which every span
/// offset and the end-to-end latency are measured.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceCtx {
    /// The ingress-minted trace id.
    pub(crate) id: TraceId,
    /// When the request entered the system (wire read / CLI mint). The
    /// gap between this and the first measured phase becomes the
    /// `queue` span.
    pub(crate) arrived: std::time::Instant,
}

/// How the request wants the availability-change index α (§4.3.1) used
/// during planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlphaPolicy {
    /// Plan purely on current availability, ignoring trends (the basic
    /// algorithm).
    #[default]
    Ignore,
    /// Trade end-to-end QoS for success rate: step around resources
    /// whose availability is trending down (α < 1), per §4.3.1.
    Tradeoff,
}

/// One session-admission request: the instance to admit plus the
/// planning options and QoS constraints to admit it under.
///
/// Build with [`SessionRequest::new`] and the chained setters; defaults
/// match [`EstablishOptions::default`] with no QoS floor and no
/// deadline, so a bare `SessionRequest::new(session)` passed to
/// `Coordinator::establish_request` admits under the basic planner with
/// accurate observations and no retries.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    pub(crate) session: SessionInstance,
    pub(crate) options: EstablishOptions,
    pub(crate) qos_min: Option<u32>,
    pub(crate) deadline: Option<SimTime>,
    pub(crate) trace: Option<TraceCtx>,
}

impl SessionRequest {
    /// A request for `session` under default options: basic planner,
    /// accurate observation, no retries, no QoS floor, no deadline.
    pub fn new(session: SessionInstance) -> Self {
        SessionRequest {
            session,
            options: EstablishOptions::default(),
            qos_min: None,
            deadline: None,
            trace: None,
        }
    }

    /// Marks the request as traced under `id`, capturing *now* as its
    /// ingress instant: the coordinator (or batched admission queue)
    /// will assemble a causal [`qosr_obs::RequestTrace`] attributing the
    /// request's end-to-end latency span by span, provided the
    /// coordinator's [`qosr_obs::Tracer`] is enabled. Call at the true
    /// ingress (wire read, scenario arrival) so queue wait is charged
    /// from the moment the request existed.
    pub fn traced(mut self, id: TraceId) -> Self {
        self.trace = Some(TraceCtx {
            id,
            arrived: std::time::Instant::now(),
        });
        self
    }

    /// Requires the committed end-to-end QoS rank to be at least `min`
    /// (1-based). A plan below the floor is rejected with
    /// [`EstablishError::QosBelowMin`] *before* anything is reserved.
    pub fn qos_min(mut self, min: u32) -> Self {
        self.qos_min = Some(min);
        self
    }

    /// Drops the request with [`EstablishError::DeadlineExpired`] if
    /// admission is attempted after `deadline` — the knob batched
    /// clients use to bound queueing delay.
    pub fn deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Selects how the α availability-change index is used:
    /// [`AlphaPolicy::Tradeoff`] plans with the α-tradeoff policy,
    /// [`AlphaPolicy::Ignore`] with the basic algorithm.
    pub fn alpha_policy(mut self, policy: AlphaPolicy) -> Self {
        self.options.planner = match policy {
            AlphaPolicy::Ignore => Planner::Basic,
            AlphaPolicy::Tradeoff => Planner::Tradeoff,
        };
        self
    }

    /// Sets the planning algorithm directly (finer-grained than
    /// [`SessionRequest::alpha_policy`]).
    pub fn planner(mut self, planner: Planner) -> Self {
        self.options.planner = planner;
        self
    }

    /// Sets the observation accuracy model for phase 1.
    pub fn observation(mut self, observation: ObservationPolicy) -> Self {
        self.options.observation = observation;
        self
    }

    /// Sets QRG construction options (ψ definition, tie-break ablation).
    pub fn qrg(mut self, qrg: QrgOptions) -> Self {
        self.options.qrg = qrg;
        self
    }

    /// Sets the bounded retry/backoff policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.options.retry = retry;
        self
    }

    /// Replaces the full option block at once (for callers that already
    /// hold an [`EstablishOptions`]).
    pub fn options(mut self, options: EstablishOptions) -> Self {
        self.options = options;
        self
    }

    /// The session instance this request admits.
    pub fn session(&self) -> &SessionInstance {
        &self.session
    }

    /// The establishment options in force for this request.
    pub fn establish_options(&self) -> &EstablishOptions {
        &self.options
    }

    /// The QoS floor, if any.
    pub fn min_rank(&self) -> Option<u32> {
        self.qos_min
    }

    /// The admission deadline, if any.
    pub fn due(&self) -> Option<SimTime> {
        self.deadline
    }

    /// The trace id, when the request is traced.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.trace.map(|t| t.id)
    }

    /// Consumes the request, yielding the session instance back (useful
    /// after admission, when the caller keeps the instance for
    /// renegotiation or termination bookkeeping).
    pub fn into_session(self) -> SessionInstance {
        self.session
    }

    /// Consumes the request, yielding the session instance and the
    /// options — for callers (e.g. the serve front-end's lease table)
    /// that need to keep both without cloning them.
    pub fn into_parts(self) -> (SessionInstance, EstablishOptions) {
        (self.session, self.options)
    }
}

/// The stable lowercase label of a planner, for span annotations.
pub(crate) fn planner_label(planner: Planner) -> &'static str {
    match planner {
        Planner::Basic => "basic",
        Planner::Tradeoff => "tradeoff",
        Planner::Random => "random",
        Planner::Dag => "dag",
    }
}

/// Accumulates the measured [`SpanRecord`]s of one traced request while
/// it moves through the pipeline, then assembles the final
/// [`RequestTrace`]. Only constructed when the coordinator's tracer is
/// enabled *and* the request carries a [`TraceCtx`] — untraced requests
/// never reach this type.
pub(crate) struct SpanCollector {
    pub(crate) id: TraceId,
    origin: std::time::Instant,
    spans: Vec<SpanRecord>,
    pub(crate) retries: u32,
    pub(crate) conflicts: u32,
}

impl SpanCollector {
    pub(crate) fn new(ctx: TraceCtx) -> Self {
        SpanCollector {
            id: ctx.id,
            origin: ctx.arrived,
            spans: Vec::new(),
            retries: 0,
            conflicts: 0,
        }
    }

    /// Nanosecond offset of `at` from the request's ingress (saturating
    /// to zero for instants captured before ingress).
    pub(crate) fn offset_ns(&self, at: std::time::Instant) -> u64 {
        at.saturating_duration_since(self.origin).as_nanos() as u64
    }

    /// Closes a span of `kind` opened at `started` (duration runs to
    /// *now*) and returns it for annotation.
    pub(crate) fn record(
        &mut self,
        kind: SpanKind,
        started: std::time::Instant,
    ) -> &mut SpanRecord {
        let span = SpanRecord::new(
            kind,
            self.offset_ns(started),
            started.elapsed().as_nanos() as u64,
        );
        self.spans.push(span);
        self.spans.last_mut().expect("span just pushed")
    }

    /// Appends an externally assembled span (batched admission builds
    /// replan spans with children before handing them over).
    pub(crate) fn push(&mut self, span: SpanRecord) {
        self.spans.push(span);
    }

    /// Assembles the final trace. The end-to-end total runs from ingress
    /// to *now*; the unmeasured residual (socket read, gather-window
    /// wait, scheduling) becomes a leading [`SpanKind::Queue`] span, so
    /// the root spans' durations sum *exactly* to `total_ns`.
    pub(crate) fn finish(self, outcome: &EstablishOutcome, service: &str) -> RequestTrace {
        let (label, session, rank, psi) = match outcome {
            EstablishOutcome::Committed(est) => (
                qosr_obs::trace::OUTCOME_COMMITTED,
                Some(est.id.0),
                Some(est.plan.rank),
                Some(est.plan.psi),
            ),
            EstablishOutcome::Degraded { session: est, .. } => (
                qosr_obs::trace::OUTCOME_DEGRADED,
                Some(est.id.0),
                Some(est.plan.rank),
                Some(est.plan.psi),
            ),
            EstablishOutcome::Rejected { .. } => {
                (qosr_obs::trace::OUTCOME_REJECTED, None, None, None)
            }
        };
        self.finish_with(label, session, rank, psi, service)
    }

    /// [`SpanCollector::finish`] for callers whose outcome is not an
    /// [`EstablishOutcome`] (the advance-reservation path): same
    /// queue-residual assembly, caller-supplied outcome fields.
    pub(crate) fn finish_with(
        mut self,
        outcome: &str,
        session: Option<u64>,
        rank: Option<u32>,
        psi: Option<f64>,
        service: &str,
    ) -> RequestTrace {
        let measured: u64 = self.spans.iter().map(|s| s.duration_ns).sum();
        let total_ns = (self.origin.elapsed().as_nanos() as u64).max(measured);
        let mut spans = vec![SpanRecord::new(SpanKind::Queue, 0, total_ns - measured)];
        spans.append(&mut self.spans);
        RequestTrace {
            trace: self.id.value(),
            service: Some(service.to_string()),
            outcome: outcome.to_string(),
            session,
            rank,
            psi,
            conflicts: self.conflicts,
            retries: self.retries,
            total_ns,
            spans,
        }
    }
}

/// The blocking resource of a failed plan: the infeasible candidate
/// closest to fitting, with its `req/avail` overshoot ratio (> 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearestMiss {
    /// The most-overshooting resource of the nearest-to-feasible
    /// candidate.
    pub resource: ResourceId,
    /// Its `req/avail` overshoot ratio (> 1; 1.2 means 20% short).
    pub ratio: f64,
}

/// The structured result of one admission:
/// [`Coordinator::establish_request`](crate::Coordinator::establish_request) and the batched
/// [`AdmissionQueue`](crate::AdmissionQueue) both return it.
#[derive(Debug, Clone)]
pub enum EstablishOutcome {
    /// The session committed at the rank its first plan asked for.
    Committed(EstablishedSession),
    /// The session committed, but at a lower end-to-end rank than first
    /// planned — the graceful-degradation path (retry fallback, or a
    /// batched replan after a same-round conflict).
    Degraded {
        /// The committed session.
        session: EstablishedSession,
        /// The rank the first plan achieved.
        from: u32,
        /// The rank actually committed.
        to: u32,
    },
    /// The session was not admitted; nothing is left reserved.
    Rejected {
        /// Why admission failed.
        error: EstablishError,
        /// When planning failed outright: the blocking resource closest
        /// to fitting, naming what extra capacity would have admitted
        /// the session.
        nearest_miss: Option<NearestMiss>,
    },
}

impl EstablishOutcome {
    /// `true` for [`EstablishOutcome::Committed`] and
    /// [`EstablishOutcome::Degraded`] — the session holds reservations.
    pub fn is_admitted(&self) -> bool {
        !matches!(self, EstablishOutcome::Rejected { .. })
    }

    /// The established session, if admitted.
    pub fn session(&self) -> Option<&EstablishedSession> {
        match self {
            EstablishOutcome::Committed(est) | EstablishOutcome::Degraded { session: est, .. } => {
                Some(est)
            }
            EstablishOutcome::Rejected { .. } => None,
        }
    }

    /// Consumes the outcome, yielding the established session if
    /// admitted.
    pub fn into_session(self) -> Option<EstablishedSession> {
        match self {
            EstablishOutcome::Committed(est) | EstablishOutcome::Degraded { session: est, .. } => {
                Some(est)
            }
            EstablishOutcome::Rejected { .. } => None,
        }
    }

    /// The rejection error, if not admitted.
    pub fn error(&self) -> Option<&EstablishError> {
        match self {
            EstablishOutcome::Rejected { error, .. } => Some(error),
            _ => None,
        }
    }

    /// Collapses to the classic `Result` shape (degraded commits are
    /// `Ok`), for call sites that only branch on admitted-or-not.
    pub fn into_result(self) -> Result<EstablishedSession, EstablishError> {
        match self {
            EstablishOutcome::Committed(est) | EstablishOutcome::Degraded { session: est, .. } => {
                Ok(est)
            }
            EstablishOutcome::Rejected { error, .. } => Err(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosr_core::ReservationPlan;
    use qosr_model::*;
    use std::sync::Arc;

    fn instance() -> SessionInstance {
        let schema = QosSchema::new("q", ["x"]);
        let v = |x: u32| QosVector::new(schema.clone(), [x]);
        let comp = ComponentSpec::new(
            "c",
            vec![v(0)],
            vec![v(1)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 1, 1)
                    .entry(0, 0, [10.0])
                    .build(),
            ),
        );
        let service = Arc::new(ServiceSpec::chain("svc", vec![comp], vec![1]).unwrap());
        SessionInstance::new(service, vec![ComponentBinding::new([ResourceId(0)])], 1.0).unwrap()
    }

    #[test]
    fn builder_chains_constraints_and_options() {
        let req = SessionRequest::new(instance())
            .qos_min(2)
            .deadline(SimTime::new(12.0))
            .alpha_policy(AlphaPolicy::Tradeoff)
            .retry(crate::RetryPolicy {
                max_retries: 2,
                ..Default::default()
            });
        assert_eq!(req.min_rank(), Some(2));
        assert_eq!(req.due(), Some(SimTime::new(12.0)));
        assert!(matches!(req.establish_options().planner, Planner::Tradeoff));
        assert_eq!(req.establish_options().retry.max_retries, 2);
        let req = req.alpha_policy(AlphaPolicy::Ignore);
        assert!(matches!(req.establish_options().planner, Planner::Basic));
        assert_eq!(req.into_session().service().name(), "svc");
    }

    #[test]
    fn outcome_helpers_classify_variants() {
        let schema = QosSchema::new("q", ["x"]);
        let est = EstablishedSession {
            id: crate::SessionId(4),
            plan: ReservationPlan {
                assignments: vec![],
                sink_level: 0,
                rank: 1,
                end_to_end: QosVector::new(schema, [1]),
                psi: 0.5,
                bottleneck: None,
            },
        };
        let committed = EstablishOutcome::Committed(est.clone());
        assert!(committed.is_admitted());
        assert_eq!(committed.session().unwrap().id.0, 4);
        assert!(committed.into_result().is_ok());

        let degraded = EstablishOutcome::Degraded {
            session: est,
            from: 2,
            to: 1,
        };
        assert!(degraded.is_admitted());
        assert!(degraded.error().is_none());
        assert_eq!(degraded.into_session().unwrap().plan.rank, 1);

        let rejected = EstablishOutcome::Rejected {
            error: EstablishError::QosBelowMin {
                achieved: 1,
                min: 3,
            },
            nearest_miss: Some(NearestMiss {
                resource: ResourceId(2),
                ratio: 1.25,
            }),
        };
        assert!(!rejected.is_admitted());
        assert!(rejected.session().is_none());
        assert!(matches!(
            rejected.error(),
            Some(EstablishError::QosBelowMin { .. })
        ));
        assert!(rejected.into_result().is_err());
    }
}
