//! # qosr-broker — the reservation-enabled runtime (§3)
//!
//! The paper assumes a *fully reservation-enabled environment*: every
//! resource type has a **Resource Broker** that can (1) report current
//! availability, (2) make and enforce reservations, and (3) terminate or
//! cancel them. A **QoSProxy** per end host coordinates: the main
//! QoSProxy collects availability from all participants, runs the
//! planning algorithm (from `qosr-core`), and dispatches the plan's
//! segments back to the participating proxies for actual reservation.
//!
//! This crate provides:
//!
//! * [`SimTime`] — the simulated clock (the paper's "time units");
//! * [`Broker`] — the resource-broker trait, with availability reports
//!   carrying the *Availability Change Index* α of §4.3.1 (eq. 5) and a
//!   change log supporting "availability as observed `e` time units ago"
//!   queries (the observation-inaccuracy experiment, §5.2.4);
//! * [`LocalBroker`] — brokers for host-local resources (CPU, memory,
//!   disk I/O bandwidth);
//! * [`BrokerRegistry`] — the directory of all brokers, producing fresh
//!   or deliberately stale [`qosr_core::AvailabilityView`] snapshots and
//!   offering all-or-nothing multi-resource reservation with rollback;
//! * [`QosProxy`] and [`Coordinator`] — the per-host proxies and the
//!   three-phase session-establishment protocol (collect → compute →
//!   two-phase reserve/commit dispatch) with message accounting (§4.2);
//! * [`FaultInjector`] and [`RetryPolicy`] — deterministic, seedable
//!   fault injection (host crashes, dropped protocol messages, commit
//!   failures) and the bounded-retry/backoff recovery with exactly-once
//!   rollback and graceful QoS degradation that the dispatch runs under.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod advance;
mod alpha;
mod broker;
mod error;
mod fault;
mod local;
mod malleable;
mod proxy;
mod registry;
mod request;
mod time;

pub use admission::{AdmissionConfig, AdmissionQueue};
pub use advance::{
    AdvanceRegistry, Booking, CancelOutcome, Timeline, TimelineBroker, TimelineIndex,
};
pub use alpha::AlphaWindow;
pub use broker::{Broker, BrokerReport};
pub use error::{EstablishError, FaultError, ReserveError};
pub use fault::{FaultInjector, RetryPolicy};
pub use local::{LocalBroker, LocalBrokerConfig};
pub use malleable::{AdvanceOutcome, AdvanceProfile, AdvanceRequest, AdvanceShape, RateSegment};
pub use proxy::{
    Coordinator, EstablishOptions, EstablishedSession, HostMessageStats, MessageStats,
    ObservationPolicy, QosProxy,
};
pub use registry::BrokerRegistry;
pub use request::{AlphaPolicy, EstablishOutcome, NearestMiss, SessionRequest};
pub use time::{SessionId, SimTime};
