//! Broker for host-local resources (CPU, memory, disk I/O bandwidth).

use crate::{AlphaWindow, Broker, BrokerReport, ReserveError, SessionId, SimTime};
use parking_lot::Mutex;
use qosr_model::ResourceId;
use std::collections::{HashMap, VecDeque};

/// Configuration of a [`LocalBroker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalBrokerConfig {
    /// Sliding-window length `T` (in time units) over which
    /// `r^avail_avg` is computed for the availability-change index α
    /// (§4.3.1). The paper's evaluation uses `T = 3` TU.
    pub alpha_window: f64,
    /// How far back (in time units) the availability change log must be
    /// able to answer [`Broker::available_at`] queries. Bounds memory.
    pub log_horizon: f64,
}

impl Default for LocalBrokerConfig {
    fn default() -> Self {
        LocalBrokerConfig {
            alpha_window: 3.0,
            log_horizon: 64.0,
        }
    }
}

#[derive(Debug)]
struct Inner {
    available: f64,
    ledger: HashMap<SessionId, f64>,
    /// Sliding α window over reported availabilities (eq. 5).
    alpha: AlphaWindow,
    /// `(change time, availability after the change)`, pruned to the log
    /// horizon. Never empty: seeded with the creation event.
    changes: VecDeque<(SimTime, f64)>,
}

/// A Resource Broker for a single local resource.
///
/// Thread-safe (interior mutability behind a [`parking_lot::Mutex`]);
/// every operation is O(log) or amortized O(1) except
/// [`Broker::available_at`], which binary-searches the change log.
#[derive(Debug)]
pub struct LocalBroker {
    resource: ResourceId,
    capacity: f64,
    config: LocalBrokerConfig,
    inner: Mutex<Inner>,
}

impl LocalBroker {
    /// Creates a broker with `capacity` units, all available, at time
    /// `created`.
    ///
    /// # Panics
    /// Panics if `capacity` is not finite and positive.
    pub fn new(
        resource: ResourceId,
        capacity: f64,
        created: SimTime,
        config: LocalBrokerConfig,
    ) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be finite and positive, got {capacity}"
        );
        let mut changes = VecDeque::new();
        changes.push_back((created, capacity));
        LocalBroker {
            resource,
            capacity,
            config,
            inner: Mutex::new(Inner {
                available: capacity,
                ledger: HashMap::new(),
                alpha: AlphaWindow::new(config.alpha_window),
                changes,
            }),
        }
    }

    /// Broker configuration.
    pub fn config(&self) -> &LocalBrokerConfig {
        &self.config
    }

    /// Number of sessions currently holding reservations.
    pub fn active_sessions(&self) -> usize {
        self.inner.lock().ledger.len()
    }

    fn log_change(inner: &mut Inner, now: SimTime, horizon: f64) {
        inner.changes.push_back((now, inner.available));
        // Prune entries made redundant by a newer entry that is itself
        // older than the horizon (we must keep one entry at or before
        // `now - horizon` so historical queries stay answerable).
        let cutoff = now - horizon;
        while inner.changes.len() >= 2 && inner.changes[1].0 <= cutoff {
            inner.changes.pop_front();
        }
    }
}

impl Broker for LocalBroker {
    fn resource(&self) -> ResourceId {
        self.resource
    }

    fn capacity(&self) -> f64 {
        self.capacity
    }

    fn available(&self) -> f64 {
        self.inner.lock().available
    }

    fn available_at(&self, t: SimTime) -> f64 {
        let inner = self.inner.lock();
        // Last change at or before `t`; before the log begins, report the
        // oldest known value.
        match inner.changes.partition_point(|&(ct, _)| ct <= t) {
            0 => inner.changes.front().expect("log never empty").1,
            n => inner.changes[n - 1].1,
        }
    }

    fn report_observed(&self, now: SimTime, observed_at: SimTime) -> BrokerReport {
        let avail = self.available_at(observed_at);
        let alpha = self.inner.lock().alpha.observe(now, avail);
        BrokerReport { avail, alpha }
    }

    fn reserve(&self, session: SessionId, amount: f64, now: SimTime) -> Result<(), ReserveError> {
        if !amount.is_finite() || amount <= 0.0 {
            return Err(ReserveError::InvalidAmount {
                resource: self.resource,
                amount,
            });
        }
        let mut inner = self.inner.lock();
        if amount > inner.available {
            return Err(ReserveError::Insufficient {
                resource: self.resource,
                requested: amount,
                available: inner.available,
            });
        }
        inner.available -= amount;
        *inner.ledger.entry(session).or_insert(0.0) += amount;
        Self::log_change(&mut inner, now, self.config.log_horizon);
        Ok(())
    }

    fn release(&self, session: SessionId, now: SimTime) -> f64 {
        let mut inner = self.inner.lock();
        let Some(amount) = inner.ledger.remove(&session) else {
            return 0.0;
        };
        inner.available = (inner.available + amount).min(self.capacity);
        Self::log_change(&mut inner, now, self.config.log_horizon);
        amount
    }

    fn release_amount(&self, session: SessionId, amount: f64, now: SimTime) -> f64 {
        if !amount.is_finite() || amount <= 0.0 {
            return 0.0;
        }
        let mut inner = self.inner.lock();
        let Some(held) = inner.ledger.get_mut(&session) else {
            return 0.0;
        };
        let released = amount.min(*held);
        *held -= released;
        if *held <= 0.0 {
            inner.ledger.remove(&session);
        }
        inner.available = (inner.available + released).min(self.capacity);
        Self::log_change(&mut inner, now, self.config.log_horizon);
        released
    }

    fn reserved_for(&self, session: SessionId) -> f64 {
        self.inner
            .lock()
            .ledger
            .get(&session)
            .copied()
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker(capacity: f64) -> LocalBroker {
        LocalBroker::new(
            ResourceId(0),
            capacity,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        )
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let b = broker(100.0);
        let (s1, s2) = (SessionId(1), SessionId(2));
        assert_eq!(b.available(), 100.0);
        b.reserve(s1, 30.0, SimTime::new(1.0)).unwrap();
        b.reserve(s2, 50.0, SimTime::new(2.0)).unwrap();
        assert_eq!(b.available(), 20.0);
        assert_eq!(b.reserved_for(s1), 30.0);
        assert_eq!(b.active_sessions(), 2);
        // Over-reservation rejected and state unchanged.
        let err = b
            .reserve(SessionId(3), 21.0, SimTime::new(3.0))
            .unwrap_err();
        assert!(matches!(err, ReserveError::Insufficient { available, .. } if available == 20.0));
        assert_eq!(b.available(), 20.0);
        // Releases restore availability; double release is a no-op.
        assert_eq!(b.release(s1, SimTime::new(4.0)), 30.0);
        assert_eq!(b.release(s1, SimTime::new(4.0)), 0.0);
        assert_eq!(b.available(), 50.0);
    }

    #[test]
    fn same_session_accumulates() {
        let b = broker(100.0);
        let s = SessionId(7);
        b.reserve(s, 10.0, SimTime::new(1.0)).unwrap();
        b.reserve(s, 15.0, SimTime::new(1.0)).unwrap();
        assert_eq!(b.reserved_for(s), 25.0);
        assert_eq!(b.release(s, SimTime::new(2.0)), 25.0);
        assert_eq!(b.available(), 100.0);
    }

    #[test]
    fn rejects_invalid_amounts() {
        let b = broker(10.0);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                b.reserve(SessionId(1), bad, SimTime::ZERO),
                Err(ReserveError::InvalidAmount { .. })
            ));
        }
    }

    #[test]
    fn exact_exhaustion_allowed() {
        let b = broker(10.0);
        b.reserve(SessionId(1), 10.0, SimTime::ZERO).unwrap();
        assert_eq!(b.available(), 0.0);
    }

    #[test]
    fn available_at_reconstructs_history() {
        let b = broker(100.0);
        b.reserve(SessionId(1), 40.0, SimTime::new(10.0)).unwrap();
        b.reserve(SessionId(2), 20.0, SimTime::new(20.0)).unwrap();
        b.release(SessionId(1), SimTime::new(30.0));
        assert_eq!(b.available_at(SimTime::new(5.0)), 100.0);
        assert_eq!(b.available_at(SimTime::new(10.0)), 60.0);
        assert_eq!(b.available_at(SimTime::new(15.0)), 60.0);
        assert_eq!(b.available_at(SimTime::new(25.0)), 40.0);
        assert_eq!(b.available_at(SimTime::new(35.0)), 80.0);
        // Before the log begins: oldest known value.
        assert_eq!(b.available_at(SimTime::new(-5.0)), 100.0);
    }

    #[test]
    fn log_pruning_keeps_horizon_answerable() {
        let b = LocalBroker::new(
            ResourceId(0),
            100.0,
            SimTime::ZERO,
            LocalBrokerConfig {
                alpha_window: 3.0,
                log_horizon: 10.0,
            },
        );
        for i in 1..=100u64 {
            b.reserve(SessionId(i), 0.5, SimTime::new(i as f64))
                .unwrap();
        }
        // Entries well inside the horizon survive.
        assert_eq!(b.available_at(SimTime::new(95.0)), 100.0 - 95.0 * 0.5);
        // The log does not grow without bound: ~horizon entries plus slack.
        assert!(b.inner.lock().changes.len() <= 12);
    }

    #[test]
    fn alpha_reflects_trend() {
        let b = broker(100.0);
        // First report: no history -> neutral.
        let r = b.report(SimTime::new(0.0));
        assert_eq!(r.alpha, 1.0);
        assert_eq!(r.avail, 100.0);
        // Drop availability, report again: α = 60 / avg(100) = 0.6.
        b.reserve(SessionId(1), 40.0, SimTime::new(1.0)).unwrap();
        let r = b.report(SimTime::new(1.0));
        assert!((r.alpha - 0.6).abs() < 1e-12);
        // Recover: α = 100 / avg(100, 60) = 1.25.
        b.release(SessionId(1), SimTime::new(2.0));
        let r = b.report(SimTime::new(2.0));
        assert!((r.alpha - 1.25).abs() < 1e-12);
    }

    #[test]
    fn alpha_window_evicts_old_reports() {
        let b = broker(100.0); // T = 3
        b.report(SimTime::new(0.0)); // avail 100 -> evicted later
        b.reserve(SessionId(1), 50.0, SimTime::new(0.5)).unwrap();
        b.report(SimTime::new(2.0)); // avail 50
                                     // At t=5, the t=0 report (age 5 > 3) is out of the window; only
                                     // the t=2 report (50) remains: α = 50/50 = 1.
        let r = b.report(SimTime::new(5.0));
        assert!((r.alpha - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stale_report_uses_historical_availability() {
        let b = broker(100.0);
        b.reserve(SessionId(1), 70.0, SimTime::new(10.0)).unwrap();
        // Observed 5 TU ago (t=8): the reservation hadn't happened yet.
        let r = b.report_observed(SimTime::new(13.0), SimTime::new(8.0));
        assert_eq!(r.avail, 100.0);
        // An accurate report sees 30.
        assert_eq!(b.report(SimTime::new(13.0)).avail, 30.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_bad_capacity() {
        broker(0.0);
    }
}

#[cfg(test)]
mod release_amount_tests {
    use super::*;
    use crate::Broker;

    #[test]
    fn partial_release() {
        let b = LocalBroker::new(
            ResourceId(0),
            100.0,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        );
        let s = SessionId(1);
        b.reserve(s, 40.0, SimTime::new(1.0)).unwrap();
        assert_eq!(b.release_amount(s, 15.0, SimTime::new(2.0)), 15.0);
        assert_eq!(b.reserved_for(s), 25.0);
        assert_eq!(b.available(), 75.0);
        // Releasing more than held clamps; entry disappears at zero.
        assert_eq!(b.release_amount(s, 100.0, SimTime::new(3.0)), 25.0);
        assert_eq!(b.reserved_for(s), 0.0);
        assert_eq!(b.active_sessions(), 0);
        assert_eq!(b.available(), 100.0);
        // Unknown session / bad amounts are no-ops.
        assert_eq!(b.release_amount(SessionId(9), 5.0, SimTime::new(3.0)), 0.0);
        assert_eq!(b.release_amount(s, -1.0, SimTime::new(3.0)), 0.0);
        assert_eq!(b.release_amount(s, f64::NAN, SimTime::new(3.0)), 0.0);
    }
}
