//! Runtime errors for brokers and session establishment.

use qosr_core::PlanError;
use qosr_model::ResourceId;
use std::fmt;

/// A reservation attempt was rejected by a broker.
#[derive(Debug, Clone, PartialEq)]
pub enum ReserveError {
    /// Not enough unreserved capacity at reservation time. This is the
    /// failure mode the paper's success-rate metric counts: under
    /// inaccurate (stale) observations a plan may be computed against
    /// availability that no longer exists.
    Insufficient {
        /// The resource that rejected the reservation.
        resource: ResourceId,
        /// Amount requested.
        requested: f64,
        /// Amount actually available at reservation time.
        available: f64,
    },
    /// The requested amount was non-finite or not positive.
    InvalidAmount {
        /// The resource addressed.
        resource: ResourceId,
        /// The offending amount.
        amount: f64,
    },
    /// No broker is registered for the resource.
    UnknownResource {
        /// The unregistered resource.
        resource: ResourceId,
    },
}

impl ReserveError {
    /// The resource the error concerns.
    pub fn resource(&self) -> ResourceId {
        match *self {
            ReserveError::Insufficient { resource, .. }
            | ReserveError::InvalidAmount { resource, .. }
            | ReserveError::UnknownResource { resource } => resource,
        }
    }
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReserveError::Insufficient {
                resource,
                requested,
                available,
            } => write!(
                f,
                "insufficient {resource}: requested {requested}, available {available}"
            ),
            ReserveError::InvalidAmount { resource, amount } => {
                write!(f, "invalid amount {amount} for {resource}")
            }
            ReserveError::UnknownResource { resource } => {
                write!(f, "no broker registered for {resource}")
            }
        }
    }
}

impl std::error::Error for ReserveError {}

/// An injected fault interrupted the establishment protocol. Carried by
/// [`EstablishError::Fault`] once the retry budget is exhausted; every
/// partially reserved hop has been rolled back by then.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A participating host was down and did not answer.
    HostDown {
        /// The unreachable host.
        host: String,
    },
    /// A protocol message to `host` was lost.
    MessageLost {
        /// The host the message was addressed to.
        host: String,
    },
    /// The commit message failed at `host` after its reserve phase had
    /// already succeeded (the classic two-phase abort case).
    CommitFailed {
        /// The host whose commit failed.
        host: String,
    },
}

impl FaultError {
    /// The host the fault concerns.
    pub fn host(&self) -> &str {
        match self {
            FaultError::HostDown { host }
            | FaultError::MessageLost { host }
            | FaultError::CommitFailed { host } => host,
        }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::HostDown { host } => write!(f, "host {host} is down"),
            FaultError::MessageLost { host } => write!(f, "message to {host} lost"),
            FaultError::CommitFailed { host } => write!(f, "commit failed at {host}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// Failure of the end-to-end session establishment protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum EstablishError {
    /// The planner found no feasible end-to-end plan (or the DAG
    /// heuristic failed).
    Plan(PlanError),
    /// A broker rejected its segment of the plan during dispatch; all
    /// previously reserved segments have been rolled back.
    Reserve(ReserveError),
    /// An injected fault (host crash, lost message, commit failure)
    /// interrupted the protocol and the retry budget, if any, was
    /// exhausted; nothing is left reserved.
    Fault(FaultError),
    /// The best feasible plan's end-to-end rank fell below the request's
    /// [`qos_min`](crate::SessionRequest::qos_min) floor. Nothing was
    /// reserved: the floor is checked between planning and dispatch.
    QosBelowMin {
        /// The best rank planning could achieve.
        achieved: u32,
        /// The floor the request demanded.
        min: u32,
    },
    /// The request's [`deadline`](crate::SessionRequest::deadline) had
    /// already passed when admission was attempted; the request was
    /// dropped without planning.
    DeadlineExpired {
        /// The deadline the request carried, in time units.
        deadline: f64,
        /// The time admission was attempted at.
        now: f64,
    },
}

impl fmt::Display for EstablishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstablishError::Plan(e) => write!(f, "planning failed: {e}"),
            EstablishError::Reserve(e) => write!(f, "reservation failed: {e}"),
            EstablishError::Fault(e) => write!(f, "establishment faulted: {e}"),
            EstablishError::QosBelowMin { achieved, min } => {
                write!(f, "best plan rank {achieved} below requested minimum {min}")
            }
            EstablishError::DeadlineExpired { deadline, now } => {
                write!(f, "deadline {deadline} already passed at {now}")
            }
        }
    }
}

impl std::error::Error for EstablishError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstablishError::Plan(e) => Some(e),
            EstablishError::Reserve(e) => Some(e),
            EstablishError::Fault(e) => Some(e),
            EstablishError::QosBelowMin { .. } | EstablishError::DeadlineExpired { .. } => None,
        }
    }
}

impl From<PlanError> for EstablishError {
    fn from(e: PlanError) -> Self {
        EstablishError::Plan(e)
    }
}

impl From<ReserveError> for EstablishError {
    fn from(e: ReserveError) -> Self {
        EstablishError::Reserve(e)
    }
}

impl From<FaultError> for EstablishError {
    fn from(e: FaultError) -> Self {
        EstablishError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let e = ReserveError::Insufficient {
            resource: ResourceId(3),
            requested: 10.0,
            available: 4.0,
        };
        assert_eq!(e.resource(), ResourceId(3));
        assert!(e.to_string().contains("r3"));

        let est: EstablishError = e.into();
        assert!(est.to_string().contains("reservation failed"));
        assert!(std::error::Error::source(&est).is_some());

        let est: EstablishError = PlanError::NoFeasiblePlan.into();
        assert!(matches!(
            est,
            EstablishError::Plan(PlanError::NoFeasiblePlan)
        ));
    }
}
