//! The Availability Change Index window (§4.3.1, eq. 5).
//!
//! Each broker keeps a sliding window of recent availability
//! observations and summarizes it as α = current availability over the
//! windowed average: α ≈ 1 means a stable resource, α < 1 one whose
//! availability is shrinking (contention building up), α > 1 one that is
//! recovering. The tradeoff planner (§4.3.1) consults the bottleneck's α
//! to decide whether the best reachable QoS level is worth committing to
//! or whether to step down to a less contended plan — see
//! `qosr_core::plan_tradeoff`.

use crate::SimTime;
use std::collections::VecDeque;

/// Cap for the "recovering from full exhaustion" corner case, where the
/// windowed average is zero but current availability is positive.
const ALPHA_CAP: f64 = 1.0e6;

/// Sliding window of availability reports computing the paper's
/// *Availability Change Index* `α = r^avail / r^avail_avg` (eq. 5).
///
/// Per the paper, `r^avail_avg` is the average of the values *reported
/// during the past `T` time units*, and is updated **after** each report
/// — so the current report is compared against history that does not yet
/// include it.
///
/// ```
/// use qosr_broker::{AlphaWindow, SimTime};
/// let mut w = AlphaWindow::new(3.0);
/// assert_eq!(w.observe(SimTime::new(0.0), 100.0), 1.0); // no history yet
/// // Availability halves: the trend index drops below 1.
/// assert_eq!(w.observe(SimTime::new(1.0), 50.0), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct AlphaWindow {
    window: f64,
    reports: VecDeque<(SimTime, f64)>,
}

impl AlphaWindow {
    /// Creates a window of `T = window` time units.
    ///
    /// # Panics
    /// Panics when `window` is not finite and positive.
    pub fn new(window: f64) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "alpha window must be finite and positive, got {window}"
        );
        AlphaWindow {
            window,
            reports: VecDeque::new(),
        }
    }

    /// The window length `T`.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Records a report of `avail` at `now` and returns the α for it.
    /// With no prior reports in the window, α is `1.0` (no known trend).
    pub fn observe(&mut self, now: SimTime, avail: f64) -> f64 {
        let cutoff = now - self.window;
        while self.reports.front().is_some_and(|&(t, _)| t < cutoff) {
            self.reports.pop_front();
        }
        let alpha = if self.reports.is_empty() {
            1.0
        } else {
            let avg = self.reports.iter().map(|&(_, a)| a).sum::<f64>() / self.reports.len() as f64;
            if avg > 0.0 {
                avail / avg
            } else if avail > 0.0 {
                ALPHA_CAP
            } else {
                1.0
            }
        };
        self.reports.push_back((now, avail));
        alpha
    }

    /// Number of reports currently inside the window.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` when the window holds no reports.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_report_is_neutral() {
        let mut w = AlphaWindow::new(3.0);
        assert_eq!(w.observe(SimTime::ZERO, 100.0), 1.0);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn alpha_tracks_trend() {
        let mut w = AlphaWindow::new(3.0);
        w.observe(SimTime::new(0.0), 100.0);
        // Down-trend.
        assert!((w.observe(SimTime::new(1.0), 60.0) - 0.6).abs() < 1e-12);
        // Up vs avg(100, 60) = 80.
        assert!((w.observe(SimTime::new(2.0), 100.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn window_evicts() {
        let mut w = AlphaWindow::new(3.0);
        w.observe(SimTime::new(0.0), 100.0);
        w.observe(SimTime::new(2.0), 50.0);
        // At t=5 only the t=2 report remains: α = 50/50.
        assert!((w.observe(SimTime::new(5.0), 50.0) - 1.0).abs() < 1e-12);
        assert_eq!(w.len(), 2); // t=2 evicted next time, t=5 and this one
    }

    #[test]
    fn zero_average_recovery_is_capped() {
        let mut w = AlphaWindow::new(3.0);
        w.observe(SimTime::new(0.0), 0.0);
        let a = w.observe(SimTime::new(1.0), 10.0);
        assert_eq!(a, 1.0e6);
        // Zero over zero: neutral.
        let mut w = AlphaWindow::new(3.0);
        w.observe(SimTime::new(0.0), 0.0);
        assert_eq!(w.observe(SimTime::new(1.0), 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha window")]
    fn rejects_bad_window() {
        AlphaWindow::new(0.0);
    }
}
