//! Batched, concurrent session admission — the admission pipeline.
//!
//! Arrivals often come in bursts. Admitting a burst one session at a
//! time repeats phase 1 (availability collection, one message round
//! trip per host) once per session and serializes phase 2 (plan
//! computation) even though the plans are independent. The
//! [`AdmissionQueue`] amortizes both: each call to
//! [`AdmissionQueue::admit`] runs one *round* —
//!
//! 1. **Snapshot**: one epoch-stamped phase-1 collect
//!    ([`qosr_core::EpochSnapshot`]) shared by the whole batch;
//! 2. **Group + parallel plan**: requests with the same *shape* (same
//!    service spec, scale and bindings, same [`qosr_core::QrgOptions`])
//!    are grouped, and each group shares **one** [`qosr_core::PlanCtx`]
//!    prepared once against the snapshot via
//!    [`qosr_core::PlanCtx::prepare_epoch`] — a delta-aware prepare
//!    that *repairs* the context's previous relaxation instead of
//!    recomputing it when the availability delta since the last epoch
//!    is small. Worker threads then run Pass II concurrently and
//!    read-only over the shared relaxation
//!    ([`qosr_core::PlanCtx::plan_shared`]), each with its own private
//!    [`qosr_core::PlanWorkspace`];
//! 3. **Sequential commit**: plans are committed in arrival order
//!    through the ordinary two-phase reserve/commit dispatch. Before
//!    each dispatch the round's *working view* (snapshot minus what
//!    earlier commits in the round consumed) is checked: a plan whose
//!    Ψ-critical resource was consumed by an earlier commit is detected
//!    as a **commit conflict** and *replanned* against the working view
//!    (bounded by [`AdmissionConfig::max_replans`]) rather than failed —
//!    the batched analogue of the single-session retry-with-degradation
//!    path. Replans reuse the request's group context through
//!    [`qosr_core::PlanCtx::prepare_delta`], so the debited working
//!    view feeds back as a delta and post-conflict replans are
//!    incremental too.
//!
//! The pipeline is deterministic regardless of worker count: each
//! request plans with an RNG derived from `(seed, epoch, index,
//! attempt)`, group contexts are prepared sequentially in discovery
//! order (so delta repair/fallback counters and events never depend on
//! worker interleaving), trace events are buffered per request and
//! emitted in arrival order after the workers join, and commits are
//! strictly sequential. Running the same batch with 1 or 8 workers
//! yields byte-identical outcomes, counters and traces.

use crate::request::{planner_label, EstablishOutcome, NearestMiss, SessionRequest, SpanCollector};
use crate::{
    Coordinator, EstablishError, EstablishedSession, ObservationPolicy, ReserveError, SimTime,
};
use qosr_core::{AvailabilityView, FullReason, PlanCtx, PlanWorkspace, Planner, RepairOutcome};
use qosr_obs::{Counters, EventKind, Phase, RequestTrace, SpanKind, SpanRecord, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Tuning knobs for a batched admission round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Worker threads planning a round in parallel (clamped to the
    /// batch size; `1` degenerates to sequential planning).
    pub workers: usize,
    /// How many times one request may be replanned after a commit
    /// conflict before it is rejected.
    pub max_replans: u32,
    /// Base seed for the per-request derived RNGs; two queues with the
    /// same seed admit identical batches identically.
    pub seed: u64,
    /// Observation accuracy for the round's single phase-1 snapshot
    /// (per-request observation options are not consulted — sharing one
    /// snapshot is the point of batching).
    pub observation: ObservationPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            workers: 4,
            max_replans: 2,
            seed: 0,
            observation: ObservationPolicy::Accurate,
        }
    }
}

/// The batched admission pipeline over a [`Coordinator`].
///
/// Stateless between rounds apart from a monotonically increasing epoch
/// counter; cheap to construct and to keep around. See the
/// module docs above for the round structure.
pub struct AdmissionQueue<'a> {
    coordinator: &'a Coordinator,
    config: AdmissionConfig,
    epoch: AtomicU64,
    /// Requests in the round currently being admitted (0 between
    /// rounds) — the live queue-depth gauge.
    in_flight: AtomicUsize,
    /// Size of the most recently admitted batch.
    last_batch: AtomicUsize,
}

/// What one worker produced for one request: the plan (or the terminal
/// error), plus the buffered trace events to emit in arrival order.
struct Planned {
    result: Result<qosr_core::ReservationPlan, EstablishError>,
    nearest: Option<NearestMiss>,
    downgraded: bool,
    events: Vec<TraceEvent>,
    /// When the request is traced: the wall-clock instant Pass II
    /// started and how long it ran, measured on the worker so the
    /// commit phase can attach an exact plan span without re-timing.
    span: Option<(Instant, u64)>,
}

/// Mixes `(base, epoch, index, attempt)` into an independent RNG seed
/// (splitmix64 finalizer), so replans and parallel workers never share
/// or reorder random streams.
fn derive_seed(base: u64, epoch: u64, index: u64, attempt: u64) -> u64 {
    let mut z = base
        ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ attempt.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether two requests can share one prepared planning context: same
/// service spec, same scale, same per-component bindings, same QRG
/// construction options. Per-request knobs that only affect Pass II or
/// commit (planner choice, QoS floor, deadline) do not split groups.
fn same_shape(a: &SessionRequest, b: &SessionRequest) -> bool {
    a.session.service().uid() == b.session.service().uid()
        && a.session.scale().to_bits() == b.session.scale().to_bits()
        && a.options.qrg == b.options.qrg
        && a.session.bindings().len() == b.session.bindings().len()
        && a.session
            .bindings()
            .iter()
            .zip(b.session.bindings())
            .all(|(x, y)| x.resources() == y.resources())
}

/// Records a delta-aware prepare's outcome into the coordinator's
/// counters. Called only from sequential sections of the round, so the
/// counts are identical for every worker count.
fn record_delta_outcome(counters: &Counters, outcome: &RepairOutcome) {
    match outcome {
        RepairOutcome::Repaired(stats) => {
            counters.record_delta_repair();
            counters.record_relax_nodes_repaired(stats.nodes_recomputed as u64);
        }
        RepairOutcome::Full(_) => counters.record_delta_fallback(),
    }
}

/// A human label for why a delta prepare fell back to a full rebuild.
fn fallback_label(reason: FullReason) -> &'static str {
    match reason {
        FullReason::ColdCache => "cold cache",
        FullReason::SessionChanged => "session changed",
        FullReason::OptionsChanged => "options changed",
        FullReason::DeltaTooLarge => "delta too large",
    }
}

/// Builds the [`EventKind::DeltaRepair`] trace record for one prepare.
fn delta_repair_event(t: f64, service: &str, outcome: &RepairOutcome, when: String) -> TraceEvent {
    let ev = TraceEvent::new(t, EventKind::DeltaRepair).with_service(service);
    match outcome {
        RepairOutcome::Repaired(stats) => ev
            .with_feasible(true)
            .with_level(stats.resources_changed as u32)
            .with_value(stats.nodes_recomputed as f64)
            .with_detail(when),
        RepairOutcome::Full(reason) => ev
            .with_feasible(false)
            .with_detail(format!("{when}, full rebuild: {}", fallback_label(*reason))),
    }
}

impl<'a> AdmissionQueue<'a> {
    /// A queue admitting batches through `coordinator` under `config`.
    pub fn new(coordinator: &'a Coordinator, config: AdmissionConfig) -> Self {
        AdmissionQueue {
            coordinator,
            config,
            epoch: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            last_batch: AtomicUsize::new(0),
        }
    }

    /// The coordinator this queue admits through.
    pub fn coordinator(&self) -> &Coordinator {
        self.coordinator
    }

    /// The queue's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// How many admission rounds have run (the next round's epoch).
    pub fn rounds(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Requests in the round currently being admitted (0 between
    /// rounds). Sampled by the simulator's telemetry tick as the
    /// queue-depth gauge.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Size of the most recently admitted batch (0 before any round).
    pub fn last_batch_size(&self) -> usize {
        self.last_batch.load(Ordering::Relaxed)
    }

    /// Admits one batch: snapshot, parallel plan, sequential commit with
    /// conflict-triggered replans. Returns one [`EstablishOutcome`] per
    /// request, in arrival order. Admitted outcomes hold live
    /// reservations (terminate them via [`Coordinator::terminate`]);
    /// rejected ones hold nothing.
    pub fn admit(&self, requests: &[SessionRequest], now: SimTime) -> Vec<EstablishOutcome> {
        let mut outcomes = Vec::with_capacity(requests.len());
        self.admit_with(requests, now, |_, outcome| outcomes.push(outcome));
        outcomes
    }

    /// [`AdmissionQueue::admit`], streaming: runs the same round but
    /// hands each `(arrival index, outcome)` to `on_outcome` the moment
    /// its sequential commit lands, instead of collecting the whole
    /// round into a `Vec` first. Servers use this to push results onto
    /// the wire while later requests in the round are still committing;
    /// the callback is invoked exactly once per request, in arrival
    /// order, from the calling thread.
    pub fn admit_with(
        &self,
        requests: &[SessionRequest],
        now: SimTime,
        mut on_outcome: impl FnMut(usize, EstablishOutcome),
    ) {
        self.admit_traced(requests, now, |i, outcome, _| on_outcome(i, outcome));
    }

    /// [`AdmissionQueue::admit_with`], additionally handing each
    /// callback the request's recorded span tree when the request was
    /// traced ([`SessionRequest::traced`]) and the coordinator's
    /// [`qosr_obs::Tracer`] is enabled — `None` otherwise. Servers use
    /// the trace to fill per-request latency attribution into outcome
    /// frames without re-parsing the trace log.
    pub fn admit_traced(
        &self,
        requests: &[SessionRequest],
        now: SimTime,
        mut on_outcome: impl FnMut(usize, EstablishOutcome, Option<Arc<RequestTrace>>),
    ) {
        let n = requests.len();
        if n == 0 {
            return;
        }
        let coordinator = self.coordinator;
        let traced = coordinator.sink().enabled();
        let tracing = coordinator.tracer().enabled();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        self.in_flight.store(n, Ordering::Relaxed);
        self.last_batch.store(n, Ordering::Relaxed);

        // Phase 1, once per round: the epoch-stamped snapshot every
        // request in the batch plans against. The collect span is
        // measured once and shared by every traced request in the round
        // — batching means they all paid for exactly this one collect.
        let collect_started = tracing.then(Instant::now);
        let mut snap_rng = StdRng::seed_from_u64(derive_seed(self.config.seed, epoch, u64::MAX, 0));
        let snapshot =
            coordinator.epoch_snapshot(epoch, now, self.config.observation, &mut snap_rng);
        let collect_ns = collect_started.map(|s| s.elapsed().as_nanos() as u64);

        // Phase 2a, sequential: group same-shaped requests and prepare
        // one shared planning context per group against the snapshot.
        // prepare_epoch repairs the context's previous relaxation from
        // the availability delta when it can (falling back to a full
        // rebuild otherwise); doing this here, in discovery order,
        // keeps the repair/fallback counters and events independent of
        // worker interleaving.
        let t = now.value();
        let mut group_of: Vec<usize> = Vec::with_capacity(n);
        let mut reps: Vec<usize> = Vec::new();
        let mut group_ctxs = Vec::new();
        let mut group_events: Vec<TraceEvent> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            let found = reps.iter().position(|&r| same_shape(&requests[r], request));
            let g = match found {
                Some(g) => g,
                None => {
                    let span = coordinator.phase_timers().span(Phase::Plan);
                    let mut ctx = coordinator.plan_pool().checkout();
                    let outcome =
                        ctx.prepare_epoch(&request.session, &snapshot, &request.options.qrg);
                    let ns = span.end();
                    record_delta_outcome(coordinator.counters(), &outcome);
                    if traced {
                        if let Some(ns) = ns {
                            group_events.push(
                                TraceEvent::new(t, EventKind::PhaseTiming)
                                    .with_name(Phase::Plan.name())
                                    .with_duration_ns(ns),
                            );
                        }
                        group_events.push(delta_repair_event(
                            t,
                            request.session.service().name(),
                            &outcome,
                            format!("epoch {epoch}"),
                        ));
                    }
                    reps.push(i);
                    group_ctxs.push(ctx);
                    group_ctxs.len() - 1
                }
            };
            group_of.push(g);
        }

        // Phase 2b, in parallel: Pass II for each request, read-only
        // over its group's shared relaxation. Workers pull indices from
        // an atomic cursor and send results home over a channel; events
        // stay buffered per request so emission order (below) is
        // arrival order, not worker order.
        let workers = self.config.workers.clamp(1, n);
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<Planned>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        if workers == 1 {
            // Sequential planning needs neither threads nor a channel.
            let mut work = PlanWorkspace::new();
            for (i, request) in requests.iter().enumerate() {
                let ctx: &PlanCtx = &group_ctxs[group_of[i]];
                slots[i] = Some(self.plan_one(request, ctx, &mut work, epoch, i, now, traced));
            }
        } else {
            std::thread::scope(|scope| {
                let (tx, rx) = mpsc::channel();
                for _ in 0..workers {
                    let tx = tx.clone();
                    let cursor = &cursor;
                    let group_of = &group_of;
                    let group_ctxs = &group_ctxs;
                    scope.spawn(move || {
                        let mut work = PlanWorkspace::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let ctx: &PlanCtx = &group_ctxs[group_of[i]];
                            let planned =
                                self.plan_one(&requests[i], ctx, &mut work, epoch, i, now, traced);
                            if tx.send((i, planned)).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                for (i, planned) in rx {
                    slots[i] = Some(planned);
                }
            });
        }

        coordinator.counters().record_batch_planned();
        if traced {
            for ev in &group_events {
                coordinator.sink().emit(ev);
            }
            coordinator.sink().emit(
                &TraceEvent::new(t, EventKind::BatchPlanned)
                    .with_level(n as u32)
                    .with_detail(format!(
                        "epoch {epoch}, {workers} workers, {} plan groups",
                        reps.len()
                    )),
            );
        }

        // Phase 3, sequential in arrival order: commit against live
        // broker state, detecting conflicts against the round's working
        // view (snapshot minus earlier commits).
        let mut working = snapshot.working();
        for (i, request) in requests.iter().enumerate() {
            let planned = slots[i].take().expect("every request was planned");
            let gctx: &mut PlanCtx = &mut group_ctxs[group_of[i]];
            let mut collector = match request.trace {
                Some(ctx) if tracing => Some(SpanCollector::new(ctx)),
                _ => None,
            };
            if let (Some(c), Some(started), Some(ns)) =
                (collector.as_mut(), collect_started, collect_ns)
            {
                let offset = c.offset_ns(started);
                c.push(SpanRecord::new(SpanKind::Collect, offset, ns));
            }
            let outcome = self.commit_one(
                request,
                planned,
                gctx,
                &mut working,
                epoch,
                i,
                now,
                traced,
                collector.as_mut(),
            );
            self.in_flight.store(n - i - 1, Ordering::Relaxed);
            let trace = collector.map(|c| {
                let trace = c.finish(&outcome, request.session.service().name());
                coordinator
                    .tracer()
                    .record(trace, coordinator.sink().as_ref(), t)
            });
            on_outcome(i, outcome, trace);
        }
    }

    /// Phase 2b for one request: Pass II against its group's shared,
    /// delta-prepared context, assembling in the worker's private
    /// workspace and buffering the trace events the single-session path
    /// would have emitted.
    #[allow(clippy::too_many_arguments)]
    fn plan_one(
        &self,
        request: &SessionRequest,
        ctx: &PlanCtx,
        work: &mut PlanWorkspace,
        epoch: u64,
        index: usize,
        now: SimTime,
        traced: bool,
    ) -> Planned {
        let t = now.value();
        let session = &request.session;
        let service_name = session.service().name();
        let mut events: Vec<TraceEvent> = Vec::new();
        if traced {
            events.push(TraceEvent::new(t, EventKind::PlanStarted).with_service(service_name));
        }

        if let Some(due) = request.deadline {
            if t > due.value() {
                let err = EstablishError::DeadlineExpired {
                    deadline: due.value(),
                    now: t,
                };
                if traced {
                    events.push(
                        TraceEvent::new(t, EventKind::PlanRejected)
                            .with_service(service_name)
                            .with_detail(err.to_string()),
                    );
                }
                return Planned {
                    result: Err(err),
                    nearest: None,
                    downgraded: false,
                    events,
                    span: None,
                };
            }
        }

        let mut rng = StdRng::seed_from_u64(derive_seed(self.config.seed, epoch, index as u64, 0));
        // Time the plan with a plain (un-traced) span and buffer the
        // timing event with the rest: workers must not emit directly,
        // or trace order would depend on worker interleaving. Traced
        // requests additionally capture the raw instants so commit_one
        // can attach the exact plan span in arrival order.
        let span_wanted = request.trace.is_some() && self.coordinator.tracer().enabled();
        let plan_started = span_wanted.then(Instant::now);
        let plan_span = self.coordinator.phase_timers().span(Phase::Plan);
        let result = ctx.plan_shared(request.options.planner, &mut rng, work);
        let span = plan_started.map(|s| (s, s.elapsed().as_nanos() as u64));
        if let Some(ns) = plan_span.end() {
            if traced {
                events.push(
                    TraceEvent::new(t, EventKind::PhaseTiming)
                        .with_name(Phase::Plan.name())
                        .with_duration_ns(ns),
                );
            }
        }
        let mut nearest: Option<NearestMiss> = None;
        if result.is_err() {
            nearest = ctx
                .nearest_miss()
                .map(|(resource, ratio)| NearestMiss { resource, ratio });
        }
        if traced {
            for c in ctx.candidates() {
                let mut ev = TraceEvent::new(t, EventKind::CandidateEvaluated)
                    .with_pair(c.component, c.qin, c.qout)
                    .with_feasible(c.feasible)
                    .with_psi(c.psi);
                if let Some(rid) = c.resource {
                    ev = ev.with_resource(u64::from(rid.0));
                }
                if let Some(alpha) = c.alpha {
                    ev = ev.with_alpha(alpha);
                }
                events.push(ev);
            }
        }
        let downgrade = work.last_downgrade();
        if let Some((from, to)) = downgrade {
            if traced {
                events.push(
                    TraceEvent::new(t, EventKind::TradeoffDowngrade)
                        .with_service(service_name)
                        .with_level(to)
                        .with_detail(format!("stepped down from rank {from}")),
                );
            }
        }

        let result = match result {
            Err(e) => {
                if traced {
                    let mut ev = TraceEvent::new(t, EventKind::PlanRejected)
                        .with_service(service_name)
                        .with_detail("no feasible end-to-end plan");
                    if let Some(miss) = nearest {
                        ev = ev
                            .with_resource(u64::from(miss.resource.0))
                            .with_psi(miss.ratio);
                    }
                    events.push(ev);
                }
                Err(e.into())
            }
            Ok(plan) => match request.qos_min {
                Some(min) if plan.rank < min => {
                    let err = EstablishError::QosBelowMin {
                        achieved: plan.rank,
                        min,
                    };
                    if traced {
                        events.push(
                            TraceEvent::new(t, EventKind::PlanRejected)
                                .with_service(service_name)
                                .with_level(plan.rank)
                                .with_detail(err.to_string()),
                        );
                    }
                    Err(err)
                }
                _ => {
                    if traced {
                        let mut ev = TraceEvent::new(t, EventKind::PlanCompleted)
                            .with_service(service_name)
                            .with_level(plan.rank)
                            .with_psi(plan.psi);
                        if let Some(b) = &plan.bottleneck {
                            ev = ev
                                .with_resource(u64::from(b.resource.0))
                                .with_alpha(b.alpha);
                        }
                        events.push(ev);
                        for a in &plan.assignments {
                            let mut ev = TraceEvent::new(t, EventKind::HopSelected).with_pair(
                                a.component as u32,
                                a.qin as u32,
                                a.qout as u32,
                            );
                            if let Some(c) = ctx.candidate(a.component, a.qin, a.qout) {
                                ev = ev.with_psi(c.psi);
                                if let Some(rid) = c.resource {
                                    ev = ev.with_resource(u64::from(rid.0));
                                }
                            }
                            events.push(ev);
                        }
                    }
                    Ok(plan)
                }
            },
        };
        Planned {
            result,
            nearest,
            downgraded: downgrade.is_some(),
            events,
            span,
        }
    }

    /// Phase 3 for one request: emit its buffered plan events, then
    /// commit its plan — replanning on conflict (bounded), rejecting
    /// when the budget is spent. Replans go through the request's group
    /// context: the debited working view arrives as a delta, so a
    /// post-conflict replan repairs the group's relaxation instead of
    /// rebuilding it.
    #[allow(clippy::too_many_arguments)]
    fn commit_one(
        &self,
        request: &SessionRequest,
        planned: Planned,
        gctx: &mut PlanCtx,
        working: &mut AvailabilityView,
        epoch: u64,
        index: usize,
        now: SimTime,
        traced: bool,
        mut collector: Option<&mut SpanCollector>,
    ) -> EstablishOutcome {
        let coordinator = self.coordinator;
        let counters = coordinator.counters();
        let sink = coordinator.sink();
        let t = now.value();
        let session = &request.session;
        let service_name = session.service().name();

        for ev in &planned.events {
            sink.emit(ev);
        }
        counters.record_establish_attempt();
        counters.record_plan_started();
        if planned.downgraded {
            counters.record_tradeoff_downgrade();
        }
        if let (Some(c), Some((started, ns))) = (collector.as_deref_mut(), planned.span) {
            let offset = c.offset_ns(started);
            let mut span = SpanRecord::new(SpanKind::Plan, offset, ns)
                .with_planner(planner_label(request.options.planner));
            if let Ok(plan) = &planned.result {
                span.psi = Some(plan.psi);
            }
            if planned.downgraded {
                span.detail = Some("downgraded".to_string());
            }
            c.push(span);
        }

        let mut plan = match planned.result {
            Ok(plan) => {
                counters.record_plan_completed();
                plan
            }
            Err(error) => {
                counters.record_plan_rejected();
                return EstablishOutcome::Rejected {
                    error,
                    nearest_miss: planned.nearest,
                };
            }
        };

        let first_rank = plan.rank;
        let mut replans = 0u32;
        loop {
            let demand = plan.total_demand();
            // Conflict detection: does the round's working view still
            // cover this plan, or did an earlier commit consume its
            // Ψ-critical capacity?
            let conflict = match working.first_deficit(demand.iter()) {
                Some(deficit) => Some(deficit),
                None => {
                    let id = coordinator.alloc_session_id();
                    let commit_started = collector.is_some().then(Instant::now);
                    let dispatched = coordinator.dispatch(id, &demand, now, traced, true);
                    if let (Some(c), Some(started)) = (collector.as_deref_mut(), commit_started) {
                        let span = c.record(SpanKind::Commit, started);
                        if replans > 0 {
                            span.attempt = Some(replans);
                        }
                        if dispatched.is_err() {
                            span.detail = Some("rolled back".to_string());
                        }
                    }
                    match dispatched {
                        Ok(()) => {
                            for (rid, amount) in demand.iter() {
                                working.debit(rid, amount);
                            }
                            counters.record_establishment();
                            counters.record_commit(plan.psi);
                            if traced {
                                let mut ev = TraceEvent::new(t, EventKind::ReservationCommitted)
                                    .with_session(id.0)
                                    .with_service(service_name)
                                    .with_level(plan.rank)
                                    .with_psi(plan.psi);
                                if let Some(b) = &plan.bottleneck {
                                    ev = ev
                                        .with_resource(u64::from(b.resource.0))
                                        .with_alpha(b.alpha);
                                }
                                sink.emit(&ev);
                            }
                            let est = EstablishedSession { id, plan };
                            if est.plan.rank < first_rank {
                                counters.record_degraded_commit();
                                if traced {
                                    sink.emit(
                                        &TraceEvent::new(t, EventKind::DegradedEstablish)
                                            .with_session(est.id.0)
                                            .with_service(service_name)
                                            .with_level(est.plan.rank)
                                            .with_detail(format!(
                                                "first plan of epoch {epoch} had rank {first_rank}"
                                            )),
                                    );
                                }
                                return EstablishOutcome::Degraded {
                                    from: first_rank,
                                    to: est.plan.rank,
                                    session: est,
                                };
                            }
                            return EstablishOutcome::Committed(est);
                        }
                        Err(EstablishError::Reserve(ReserveError::Insufficient {
                            resource,
                            requested,
                            available,
                        })) => {
                            // Live broker state diverged from the round
                            // snapshot (outside traffic, stale
                            // observation). Clamp the working view to
                            // the truth the broker just reported, so the
                            // replan routes around it.
                            let seen = working.avail(resource);
                            if seen > available {
                                working.debit(resource, seen - available);
                            }
                            Some((resource, requested, available))
                        }
                        Err(error) => {
                            match &error {
                                EstablishError::Fault(fe) => {
                                    counters.record_fault_failure();
                                    if traced {
                                        sink.emit(
                                            &TraceEvent::new(t, EventKind::EstablishFaulted)
                                                .with_session(id.0)
                                                .with_service(service_name)
                                                .with_name(fe.host())
                                                .with_detail(fe.to_string()),
                                        );
                                    }
                                }
                                other => {
                                    counters.record_reservation_rejected();
                                    if traced {
                                        sink.emit(
                                            &TraceEvent::new(t, EventKind::ReservationRejected)
                                                .with_session(id.0)
                                                .with_service(service_name)
                                                .with_detail(other.to_string()),
                                        );
                                    }
                                }
                            }
                            return EstablishOutcome::Rejected {
                                error,
                                nearest_miss: None,
                            };
                        }
                    }
                }
            };
            let Some((resource, requested, available)) = conflict else {
                unreachable!("non-conflict paths return above");
            };
            let ratio = requested / available.max(1e-9);
            counters.record_commit_conflict();
            if let Some(c) = collector.as_deref_mut() {
                c.conflicts += 1;
            }
            if traced {
                sink.emit(
                    &TraceEvent::new(t, EventKind::CommitConflict)
                        .with_service(service_name)
                        .with_resource(u64::from(resource.0))
                        .with_psi(ratio)
                        .with_detail(format!(
                            "requested {requested}, {available} left in epoch {epoch}"
                        )),
                );
            }
            if replans >= self.config.max_replans {
                counters.record_reservation_rejected();
                let error = EstablishError::Reserve(ReserveError::Insufficient {
                    resource,
                    requested,
                    available,
                });
                if traced {
                    sink.emit(
                        &TraceEvent::new(t, EventKind::ReservationRejected)
                            .with_service(service_name)
                            .with_resource(u64::from(resource.0))
                            .with_detail(format!(
                                "{error}; replan budget ({}) spent",
                                self.config.max_replans
                            )),
                    );
                }
                return EstablishOutcome::Rejected {
                    error,
                    nearest_miss: Some(NearestMiss { resource, ratio }),
                };
            }
            replans += 1;
            counters.record_replan();
            if let Some(c) = collector.as_deref_mut() {
                c.retries += 1;
            }
            if traced {
                sink.emit(
                    &TraceEvent::new(t, EventKind::Replanned)
                        .with_service(service_name)
                        .with_detail(format!(
                            "replan {replans}/{} in epoch {epoch}",
                            self.config.max_replans
                        )),
                );
            }
            // Replan against the working view. Like the single-session
            // retry path, fall back to the α-tradeoff planner so the
            // request degrades to a feasible level instead of repeating
            // the conflicted plan.
            let planner = if request.options.retry.tradeoff_fallback
                && matches!(request.options.planner, Planner::Basic)
            {
                Planner::Tradeoff
            } else {
                request.options.planner
            };
            let mut rng = StdRng::seed_from_u64(derive_seed(
                self.config.seed,
                epoch,
                index as u64,
                u64::from(replans),
            ));
            let replan_started = collector.is_some().then(Instant::now);
            let inner_plan: Option<(Instant, u64)>;
            let replanned = {
                let _span = coordinator
                    .phase_timers()
                    .span_traced(Phase::Replan, sink.as_ref(), t);
                // The working view diverged from whatever the group
                // context last planned against only by what this round
                // debited — exactly the delta the repair path wants.
                let outcome = gctx.prepare_delta(session, working, &request.options.qrg);
                record_delta_outcome(counters, &outcome);
                if traced {
                    sink.emit(&delta_repair_event(
                        t,
                        service_name,
                        &outcome,
                        format!("replan {replans} in epoch {epoch}"),
                    ));
                }
                let plan_started = collector.is_some().then(Instant::now);
                let result = match gctx.plan(planner, &mut rng) {
                    Ok(p) => Ok(p),
                    Err(e) => Err((
                        EstablishError::from(e),
                        gctx.nearest_miss()
                            .map(|(resource, ratio)| NearestMiss { resource, ratio }),
                    )),
                };
                inner_plan = plan_started.map(|s| (s, s.elapsed().as_nanos() as u64));
                result
            };
            if let (Some(c), Some(started)) = (collector.as_deref_mut(), replan_started) {
                let mut span = SpanRecord::new(
                    SpanKind::Replan,
                    c.offset_ns(started),
                    started.elapsed().as_nanos() as u64,
                )
                .with_attempt(replans)
                .with_resource(u64::from(resource.0));
                if let Ok(p) = &replanned {
                    span.psi = Some(p.psi);
                }
                if let Some((plan_at, ns)) = inner_plan {
                    span = span.with_child(
                        SpanRecord::new(SpanKind::Plan, c.offset_ns(plan_at), ns)
                            .with_planner(planner_label(planner)),
                    );
                }
                c.push(span);
            }
            match replanned {
                Ok(p) => {
                    if let Some(min) = request.qos_min {
                        if p.rank < min {
                            counters.record_plan_rejected();
                            let error = EstablishError::QosBelowMin {
                                achieved: p.rank,
                                min,
                            };
                            if traced {
                                sink.emit(
                                    &TraceEvent::new(t, EventKind::PlanRejected)
                                        .with_service(service_name)
                                        .with_level(p.rank)
                                        .with_detail(error.to_string()),
                                );
                            }
                            return EstablishOutcome::Rejected {
                                error,
                                nearest_miss: None,
                            };
                        }
                    }
                    plan = p;
                }
                Err((error, nearest_miss)) => {
                    counters.record_plan_rejected();
                    if traced {
                        let mut ev = TraceEvent::new(t, EventKind::PlanRejected)
                            .with_service(service_name)
                            .with_detail(format!("replan found no feasible plan: {error}"));
                        if let Some(miss) = nearest_miss {
                            ev = ev
                                .with_resource(u64::from(miss.resource.0))
                                .with_psi(miss.ratio);
                        }
                        sink.emit(&ev);
                    }
                    return EstablishOutcome::Rejected {
                        error,
                        nearest_miss,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BrokerRegistry, LocalBroker, LocalBrokerConfig, QosProxy};
    use qosr_model::*;
    use std::sync::Arc;

    /// Single host, single CPU, a one-component service whose levels
    /// demand 20 (rank 1) and 60 (rank 2).
    struct World {
        coordinator: Coordinator,
        session: SessionInstance,
        cpu: ResourceId,
    }

    fn world(capacity: f64) -> World {
        let mut space = ResourceSpace::new();
        let cpu = space.register("cpu", ResourceKind::Compute);
        let mut reg = BrokerRegistry::new();
        reg.register(Arc::new(LocalBroker::new(
            cpu,
            capacity,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        )));
        let coordinator = Coordinator::new(vec![Arc::new(QosProxy::new("H", reg))]);

        let schema = QosSchema::new("q", ["x"]);
        let v = |x: u32| QosVector::new(schema.clone(), [x]);
        let comp = ComponentSpec::new(
            "c",
            vec![v(0)],
            vec![v(1), v(2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [20.0])
                    .entry(0, 1, [60.0])
                    .build(),
            ),
        );
        let service = Arc::new(ServiceSpec::chain("svc", vec![comp], vec![1, 2]).unwrap());
        let session =
            SessionInstance::new(service, vec![ComponentBinding::new([cpu])], 1.0).unwrap();
        World {
            coordinator,
            session,
            cpu,
        }
    }

    fn available(w: &World) -> f64 {
        w.coordinator.proxies()[0]
            .brokers()
            .get(w.cpu)
            .unwrap()
            .available()
    }

    #[test]
    fn batch_replans_conflicts_into_degraded_commits() {
        let w = world(100.0);
        let queue = AdmissionQueue::new(
            &w.coordinator,
            AdmissionConfig {
                workers: 4,
                seed: 7,
                ..AdmissionConfig::default()
            },
        );
        let requests: Vec<_> = (0..3)
            .map(|_| SessionRequest::new(w.session.clone()))
            .collect();
        let outcomes = queue.admit(&requests, SimTime::new(1.0));
        assert_eq!(queue.rounds(), 1);

        // All three planned rank 2 (60) against the 100-unit snapshot;
        // the first commits, the other two conflict and replan to rank 1.
        assert!(matches!(&outcomes[0], EstablishOutcome::Committed(est) if est.plan.rank == 2));
        for outcome in &outcomes[1..] {
            assert!(
                matches!(outcome, EstablishOutcome::Degraded { from: 2, to: 1, .. }),
                "expected a 2→1 degraded commit, got admitted={}",
                outcome.is_admitted()
            );
        }
        assert_eq!(available(&w), 0.0); // 60 + 20 + 20

        let snap = w.coordinator.counters().snapshot();
        assert_eq!(snap.batches_planned, 1);
        assert_eq!(snap.commit_conflicts, 2);
        assert_eq!(snap.replans, 2);
        assert_eq!(snap.establishments, 3);
        assert_eq!(snap.establish_attempts, 3);
        // One collect round trip for the whole batch.
        assert_eq!(w.coordinator.stats().collect_roundtrips, 1);
        // One shared prepare for the whole (same-shaped) batch plus one
        // per replan. This tiny world has a single resource, so any
        // commit dirties every candidate and the replans rebuild fully
        // (delta too large) — still counted on the delta path.
        assert_eq!(snap.delta_fallbacks + snap.delta_repairs, 3);
    }

    #[test]
    fn exhausted_replan_budget_rejects_without_over_commit() {
        let w = world(100.0);
        let queue = AdmissionQueue::new(
            &w.coordinator,
            AdmissionConfig {
                workers: 2,
                max_replans: 0,
                seed: 7,
                ..AdmissionConfig::default()
            },
        );
        let requests: Vec<_> = (0..3)
            .map(|_| SessionRequest::new(w.session.clone()))
            .collect();
        let outcomes = queue.admit(&requests, SimTime::new(1.0));

        assert!(matches!(&outcomes[0], EstablishOutcome::Committed(est) if est.plan.rank == 2));
        for outcome in &outcomes[1..] {
            let EstablishOutcome::Rejected {
                error,
                nearest_miss,
            } = outcome
            else {
                panic!("replan budget 0 must reject conflicting requests");
            };
            assert!(matches!(
                error,
                EstablishError::Reserve(ReserveError::Insufficient { .. })
            ));
            let miss = nearest_miss.expect("conflicts name the contended resource");
            assert_eq!(miss.resource, w.cpu);
            assert!((miss.ratio - 1.5).abs() < 1e-9, "60 requested / 40 left");
        }
        // Only the first commit holds capacity: no over-commit.
        assert_eq!(available(&w), 40.0);
        let snap = w.coordinator.counters().snapshot();
        assert_eq!(snap.commit_conflicts, 2);
        assert_eq!(snap.replans, 0);
    }

    #[test]
    fn outcomes_are_deterministic_across_worker_counts() {
        let run = |workers: usize| {
            let w = world(100.0);
            let queue = AdmissionQueue::new(
                &w.coordinator,
                AdmissionConfig {
                    workers,
                    seed: 42,
                    ..AdmissionConfig::default()
                },
            );
            let requests: Vec<_> = (0..5)
                .map(|_| SessionRequest::new(w.session.clone()))
                .collect();
            let outcomes = queue.admit(&requests, SimTime::new(1.0));
            let shape: Vec<_> = outcomes
                .iter()
                .map(|o| (o.is_admitted(), o.session().map(|e| (e.id.0, e.plan.rank))))
                .collect();
            (shape, available(&w), w.coordinator.counters().snapshot())
        };
        let (shape1, avail1, snap1) = run(1);
        let (shape8, avail8, snap8) = run(8);
        assert_eq!(shape1, shape8);
        assert_eq!(avail1, avail8);
        assert_eq!(snap1.commit_conflicts, snap8.commit_conflicts);
        assert_eq!(snap1.replans, snap8.replans);
        assert_eq!(snap1.establishments, snap8.establishments);
        // Delta accounting happens in sequential sections only, so it
        // must not depend on worker count either.
        assert_eq!(snap1.delta_repairs, snap8.delta_repairs);
        assert_eq!(snap1.delta_fallbacks, snap8.delta_fallbacks);
        assert_eq!(snap1.relax_nodes_repaired, snap8.relax_nodes_repaired);
    }

    #[test]
    fn steady_state_rounds_reuse_the_repaired_relaxation() {
        let w = world(100.0);
        let queue = AdmissionQueue::new(
            &w.coordinator,
            AdmissionConfig {
                seed: 3,
                ..AdmissionConfig::default()
            },
        );
        // A floor above the best reachable rank: every round plans,
        // nothing commits, availability never moves.
        let requests: Vec<_> = (0..4)
            .map(|_| SessionRequest::new(w.session.clone()).qos_min(3))
            .collect();
        for round in 0..3 {
            let outcomes = queue.admit(&requests, SimTime::new(1.0 + round as f64));
            assert!(outcomes.iter().all(|o| !o.is_admitted()));
        }
        let snap = w.coordinator.counters().snapshot();
        // Round 1 pays the one full build (cold pooled context); rounds
        // 2 and 3 find an unchanged view and repair for free — one
        // prepare per round despite four same-shaped requests each.
        assert_eq!(snap.delta_fallbacks, 1);
        assert_eq!(snap.delta_repairs, 2);
        assert_eq!(snap.relax_nodes_repaired, 0, "empty deltas repair no nodes");
        assert_eq!(available(&w), 100.0);
    }

    #[test]
    fn admit_with_streams_in_arrival_order_and_matches_admit() {
        let shape = |outcomes: &[(usize, EstablishOutcome)]| -> Vec<_> {
            outcomes
                .iter()
                .map(|(i, o)| {
                    (
                        *i,
                        o.is_admitted(),
                        o.session().map(|e| (e.id.0, e.plan.rank)),
                    )
                })
                .collect()
        };
        let config = AdmissionConfig {
            workers: 3,
            seed: 9,
            ..AdmissionConfig::default()
        };

        let w = world(100.0);
        let queue = AdmissionQueue::new(&w.coordinator, config);
        let requests: Vec<_> = (0..4)
            .map(|_| SessionRequest::new(w.session.clone()))
            .collect();
        let mut streamed = Vec::new();
        queue.admit_with(&requests, SimTime::new(1.0), |i, o| streamed.push((i, o)));
        let indices: Vec<_> = streamed.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, vec![0, 1, 2, 3], "callback fires in arrival order");

        let w2 = world(100.0);
        let queue2 = AdmissionQueue::new(&w2.coordinator, config);
        let collected: Vec<_> = queue2
            .admit(&requests, SimTime::new(1.0))
            .into_iter()
            .enumerate()
            .collect();
        assert_eq!(shape(&streamed), shape(&collected));
        assert_eq!(available(&w), available(&w2));
    }

    #[test]
    fn traced_batches_assemble_exact_span_trees() {
        let w = world(100.0);
        w.coordinator.tracer().set_enabled(true);
        let queue = AdmissionQueue::new(
            &w.coordinator,
            AdmissionConfig {
                workers: 4,
                seed: 7,
                ..AdmissionConfig::default()
            },
        );
        let requests: Vec<_> = (0..3)
            .map(|i| SessionRequest::new(w.session.clone()).traced(qosr_obs::TraceId(100 + i)))
            .collect();
        let mut traces = Vec::new();
        queue.admit_traced(&requests, SimTime::new(1.0), |i, outcome, trace| {
            traces.push((i, outcome.is_admitted(), trace));
        });
        assert_eq!(traces.len(), 3);
        for (i, admitted, trace) in &traces {
            assert!(*admitted);
            let trace = trace.as_ref().expect("traced request yields a span tree");
            assert_eq!(trace.trace, 100 + *i as u64);
            // Root span durations sum *exactly* to the end-to-end total
            // (the queue residual absorbs everything unmeasured).
            let measured: u64 = trace.spans.iter().map(|s| s.duration_ns).sum();
            assert_eq!(measured, trace.total_ns);
            assert_eq!(trace.spans[0].kind, SpanKind::Queue);
            assert_eq!(trace.spans[1].kind, SpanKind::Collect);
            assert_eq!(trace.spans[2].kind, SpanKind::Plan);
            assert_eq!(trace.spans[2].planner.as_deref(), Some("basic"));
            assert_eq!(trace.spans.last().unwrap().kind, SpanKind::Commit);
        }

        // The first request commits clean; the other two conflict,
        // replan (contended resource annotated, the inner plan nested
        // as a child span) and commit degraded.
        let first = traces[0].2.as_ref().unwrap();
        assert_eq!(first.outcome, "committed");
        assert_eq!(first.conflicts, 0);
        assert!(first.spans.iter().all(|s| s.kind != SpanKind::Replan));
        for (_, _, trace) in &traces[1..] {
            let trace = trace.as_ref().unwrap();
            assert_eq!(trace.outcome, "degraded");
            assert_eq!(trace.conflicts, 1);
            assert_eq!(trace.retries, 1);
            let replan = trace
                .spans
                .iter()
                .find(|s| s.kind == SpanKind::Replan)
                .expect("conflicted requests carry a replan span");
            assert_eq!(replan.attempt, Some(1));
            assert_eq!(replan.resource, Some(u64::from(w.cpu.0)));
            assert_eq!(replan.children.len(), 1);
            assert_eq!(replan.children[0].kind, SpanKind::Plan);
        }

        // The tracer aggregated all three; the flight ring holds them.
        assert_eq!(w.coordinator.tracer().recorded(), 3);
        assert_eq!(w.coordinator.tracer().outcome_counts(), (1, 2, 0));
        assert_eq!(w.coordinator.tracer().flight().len(), 3);

        // Untraced requests yield no span tree even while tracing is on.
        let plain = vec![SessionRequest::new(w.session.clone())];
        queue.admit_traced(&plain, SimTime::new(2.0), |_, _, trace| {
            assert!(trace.is_none());
        });
        assert_eq!(w.coordinator.tracer().recorded(), 3);
    }

    #[test]
    fn tracing_is_off_by_default_and_admission_is_unchanged() {
        let w = world(100.0);
        assert!(!w.coordinator.tracer().enabled());
        let queue = AdmissionQueue::new(&w.coordinator, AdmissionConfig::default());
        let requests: Vec<_> = (0..2)
            .map(|i| SessionRequest::new(w.session.clone()).traced(qosr_obs::TraceId(i)))
            .collect();
        let mut saw = 0;
        queue.admit_traced(&requests, SimTime::new(1.0), |_, outcome, trace| {
            assert!(trace.is_none(), "disabled tracer must not record");
            assert!(outcome.is_admitted());
            saw += 1;
        });
        assert_eq!(saw, 2);
        assert_eq!(w.coordinator.tracer().recorded(), 0);
        assert!(w.coordinator.tracer().flight().is_empty());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let w = world(100.0);
        let queue = AdmissionQueue::new(&w.coordinator, AdmissionConfig::default());
        assert!(queue.admit(&[], SimTime::new(1.0)).is_empty());
        assert_eq!(queue.rounds(), 0);
        assert_eq!(w.coordinator.counters().snapshot().batches_planned, 0);
    }

    #[test]
    fn qos_floor_and_deadline_apply_in_batches() {
        let w = world(100.0);
        let queue = AdmissionQueue::new(
            &w.coordinator,
            AdmissionConfig {
                workers: 3,
                seed: 1,
                ..AdmissionConfig::default()
            },
        );
        let requests = vec![
            SessionRequest::new(w.session.clone()),
            // Floor of 2, but request 0 consumes the 60: a replan could
            // only reach rank 1, so the floor rejects it.
            SessionRequest::new(w.session.clone()).qos_min(2),
            // Already past its deadline: dropped without planning.
            SessionRequest::new(w.session.clone()).deadline(SimTime::new(0.5)),
        ];
        let outcomes = queue.admit(&requests, SimTime::new(1.0));
        assert!(outcomes[0].is_admitted());
        assert!(matches!(
            outcomes[1].error(),
            Some(EstablishError::QosBelowMin {
                achieved: 1,
                min: 2
            })
        ));
        assert!(matches!(
            outcomes[2].error(),
            Some(EstablishError::DeadlineExpired { .. })
        ));
        assert_eq!(available(&w), 40.0);
    }
}
