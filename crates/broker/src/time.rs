//! Simulated time and session identifiers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in the paper's *time units* (TU).
///
/// Backed by `f64` (Poisson arrivals are continuous) but guaranteed
/// finite, which makes the total order safe; `Ord` is implemented so
/// `SimTime` can key event queues directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    /// Panics on non-finite input.
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite(), "SimTime must be finite, got {t}");
        SimTime(t)
    }

    /// The raw value in time units.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Elapsed time units since `earlier` (may be negative).
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }

    /// Component-wise minimum.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Component-wise maximum.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, dt: f64) -> SimTime {
        SimTime::new(self.0 + dt)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, dt: f64) {
        *self = *self + dt;
    }
}

impl Sub<f64> for SimTime {
    type Output = SimTime;
    fn sub(self, dt: f64) -> SimTime {
        SimTime::new(self.0 - dt)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}tu", self.0)
    }
}

/// Identifies one service session across brokers and proxies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_order() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + 5.0;
        assert_eq!(t1.value(), 5.0);
        assert!(t1 > t0);
        assert_eq!(t1.since(t0), 5.0);
        assert_eq!((t1 - 2.0).value(), 3.0);
        let mut t = t0;
        t += 1.5;
        assert_eq!(t.value(), 1.5);
        assert_eq!(t0.min(t1), t0);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t1.to_string(), "5.000tu");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        SimTime::new(f64::NAN);
    }

    #[test]
    fn ord_is_total() {
        let mut v = [SimTime::new(3.0), SimTime::new(-1.0), SimTime::new(2.0)];
        v.sort();
        assert_eq!(
            v.iter().map(|t| t.value()).collect::<Vec<_>>(),
            vec![-1.0, 2.0, 3.0]
        );
    }
}
