//! Malleable advance requests and the deadline-driven planner.
//!
//! The paper's reservation model books *rigid* windows: a fixed demand
//! over a fixed `[from, to)` interval. Bulk data transfers want the
//! dual formulation — "move `volume` units before `deadline`", leaving
//! the broker free to pick start time, duration, and rate profile (the
//! *malleable* reservations of the flexible-bandwidth-framework line of
//! work referenced in PAPERS.md).
//!
//! This module defines the request/outcome surface shared by both
//! shapes and the planning algorithm for the malleable one:
//!
//! * [`AdvanceRequest`] — a builder covering rigid windows and
//!   malleable `{volume, deadline, min_rate, max_rate}` transfers, with
//!   an [`AlphaPolicy`] knob that trades start-time slack against the
//!   contention share ψ and an opt-in preempt-and-repack flag;
//! * [`AdvanceOutcome`] — `Booked`, `Repacked { moved }`, or
//!   `Rejected { nearest_feasible_deadline }`;
//! * [`AdvanceProfile`] / [`RateSegment`] — the concrete plan: when the
//!   transfer runs and at what rate in each availability step.
//!
//! The planner first sweeps *constant-rate* candidate profiles anchored
//! at the request's earliest start and at every availability breakpoint
//! before the deadline (a fixed-point iteration per candidate: guess a
//! rate, measure availability over the implied window, clamp, repeat).
//! If no single rate fits, it falls back to *water-filling*: run at the
//! usable availability of each step, pausing through steps below
//! `min_rate`, until the volume is moved or the deadline passes. When
//! even that fails, the same water-fill without a deadline yields the
//! `nearest_feasible_deadline` hint carried by the rejection.

use crate::advance::{Booking, TimelineBroker};
use crate::error::ReserveError;
use crate::request::{AlphaPolicy, TraceCtx};
use crate::time::{SessionId, SimTime};
use qosr_model::{ResourceId, ResourceVector};
use qosr_obs::TraceId;

/// One constant-rate piece of a malleable transfer plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// Segment start (inclusive).
    pub from: SimTime,
    /// Segment end (exclusive).
    pub to: SimTime,
    /// Reserved rate over `[from, to)`.
    pub rate: f64,
}

impl RateSegment {
    /// Volume moved by this segment: `rate × (to − from)`.
    pub fn volume(&self) -> f64 {
        self.rate * self.to.since(self.from)
    }
}

/// The concrete plan an admitted advance request was booked under.
///
/// Rigid requests get a degenerate profile: `resource` is `None` (the
/// demand may span several resources), `segments` is empty, and
/// `volume` sums demand × duration across the demand vector.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvanceProfile {
    /// Resource the plan runs on (`None` for rigid multi-resource
    /// bookings).
    pub resource: Option<ResourceId>,
    /// When the plan starts.
    pub start: SimTime,
    /// When the plan completes.
    pub end: SimTime,
    /// Total volume booked (rate × duration, summed over segments).
    pub volume: f64,
    /// Contention share ψ of the plan: booked rate over availability,
    /// maximised across segments. ψ ≤ 1 for any admitted plan.
    pub psi: f64,
    /// Constant-rate pieces of the plan, in time order. A single entry
    /// for constant-rate plans; several when the planner water-filled
    /// around existing bookings.
    pub segments: Vec<RateSegment>,
}

/// The shape of an advance request: a fixed window or a malleable
/// deadline-driven transfer.
#[derive(Debug, Clone, PartialEq)]
pub enum AdvanceShape {
    /// Book exactly `demand` over `[from, to)` on every resource in the
    /// vector — the paper's original model.
    Rigid {
        /// Per-resource demand to hold over the window.
        demand: ResourceVector,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        to: SimTime,
    },
    /// Move `volume` units on one resource before `deadline`; the
    /// broker picks start, duration, and rate profile.
    Malleable {
        /// Resource the transfer runs on.
        resource: ResourceId,
        /// Total volume to move (rate × time units).
        volume: f64,
        /// Earliest permitted start (defaults to [`SimTime::ZERO`]).
        earliest: SimTime,
        /// Completion deadline (exclusive upper bound on the plan).
        deadline: SimTime,
        /// Minimum usable rate: steps offering less are paused through
        /// rather than trickled (defaults to `0.0`).
        min_rate: f64,
        /// Rate ceiling, e.g. a NIC line rate (defaults to
        /// `f64::INFINITY`).
        max_rate: f64,
    },
}

/// A builder-style advance-reservation request.
///
/// Mirrors the [`crate::SessionRequest`] redesign: construct with
/// [`AdvanceRequest::rigid`] or [`AdvanceRequest::malleable`], refine
/// with chained setters, then book through
/// [`crate::AdvanceRegistry::book`].
///
/// ```
/// use qosr_broker::{AdvanceRequest, AlphaPolicy, SessionId, SimTime};
/// use qosr_model::ResourceId;
///
/// let request = AdvanceRequest::malleable(
///     SessionId(7),
///     ResourceId(0),
///     600.0,
///     SimTime::new(120.0),
/// )
/// .earliest(SimTime::new(10.0))
/// .min_rate(1.0)
/// .max_rate(40.0)
/// .alpha_policy(AlphaPolicy::Tradeoff)
/// .allow_preempt(false);
/// assert_eq!(request.session(), SessionId(7));
/// ```
#[derive(Debug, Clone)]
pub struct AdvanceRequest {
    session: SessionId,
    shape: AdvanceShape,
    policy: AlphaPolicy,
    preempt: bool,
    pub(crate) trace: Option<TraceCtx>,
}

impl AdvanceRequest {
    /// A rigid request: hold `demand` over `[from, to)`.
    pub fn rigid(session: SessionId, demand: ResourceVector, from: SimTime, to: SimTime) -> Self {
        Self {
            session,
            shape: AdvanceShape::Rigid { demand, from, to },
            policy: AlphaPolicy::Ignore,
            preempt: false,
            trace: None,
        }
    }

    /// A malleable request: move `volume` units on `resource` before
    /// `deadline`. Starts as early as [`SimTime::ZERO`] with no rate
    /// floor or ceiling; refine with [`earliest`](Self::earliest),
    /// [`min_rate`](Self::min_rate), and [`max_rate`](Self::max_rate).
    pub fn malleable(
        session: SessionId,
        resource: ResourceId,
        volume: f64,
        deadline: SimTime,
    ) -> Self {
        Self {
            session,
            shape: AdvanceShape::Malleable {
                resource,
                volume,
                earliest: SimTime::ZERO,
                deadline,
                min_rate: 0.0,
                max_rate: f64::INFINITY,
            },
            policy: AlphaPolicy::Ignore,
            preempt: false,
            trace: None,
        }
    }

    /// Tags the request with an ingress-minted trace id, so
    /// [`crate::AdvanceRegistry::book`] records a span tree for it when
    /// the registry's tracer is enabled. The ingress instant is *now* —
    /// call this at the point the request entered the system.
    pub fn traced(mut self, id: TraceId) -> Self {
        self.trace = Some(TraceCtx {
            id,
            arrived: std::time::Instant::now(),
        });
        self
    }

    /// The trace id, when the request is traced.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.trace.map(|t| t.id)
    }

    /// Earliest permitted start for a malleable transfer. No-op on
    /// rigid requests (their window is the shape).
    pub fn earliest(mut self, at: SimTime) -> Self {
        if let AdvanceShape::Malleable { earliest, .. } = &mut self.shape {
            *earliest = at;
        }
        self
    }

    /// Minimum usable rate for a malleable transfer; availability steps
    /// below it are paused through. No-op on rigid requests.
    pub fn min_rate(mut self, rate: f64) -> Self {
        if let AdvanceShape::Malleable { min_rate, .. } = &mut self.shape {
            *min_rate = rate;
        }
        self
    }

    /// Rate ceiling for a malleable transfer. No-op on rigid requests.
    pub fn max_rate(mut self, rate: f64) -> Self {
        if let AdvanceShape::Malleable { max_rate, .. } = &mut self.shape {
            *max_rate = rate;
        }
        self
    }

    /// How to weigh start-time slack against contention share ψ:
    /// [`AlphaPolicy::Ignore`] books the earliest feasible profile,
    /// [`AlphaPolicy::Tradeoff`] the lowest-ψ one (earliest on ties).
    pub fn alpha_policy(mut self, policy: AlphaPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Allow this request to preempt malleable bookings and replan them
    /// (all-or-nothing, rolled back on failure) when it cannot be
    /// admitted as-is.
    pub fn allow_preempt(mut self, preempt: bool) -> Self {
        self.preempt = preempt;
        self
    }

    /// The requesting session.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The request's shape.
    pub fn shape(&self) -> &AdvanceShape {
        &self.shape
    }

    /// The configured slack-vs-ψ policy.
    pub fn policy(&self) -> AlphaPolicy {
        self.policy
    }

    /// Whether this request may preempt-and-repack malleable bookings.
    pub fn preempts(&self) -> bool {
        self.preempt
    }

    /// Planner-ready view of a malleable shape; `None` for rigid.
    pub(crate) fn malleable_spec(&self) -> Option<MalleableSpec> {
        match &self.shape {
            AdvanceShape::Malleable {
                resource,
                volume,
                earliest,
                deadline,
                min_rate,
                max_rate,
            } => Some(MalleableSpec {
                resource: *resource,
                volume: *volume,
                earliest: *earliest,
                deadline: *deadline,
                min_rate: *min_rate,
                max_rate: *max_rate,
                policy: self.policy,
            }),
            AdvanceShape::Rigid { .. } => None,
        }
    }
}

/// Outcome of booking an [`AdvanceRequest`].
#[derive(Debug, Clone)]
pub enum AdvanceOutcome {
    /// Admitted as requested.
    Booked {
        /// The plan the request was booked under.
        profile: AdvanceProfile,
    },
    /// Admitted after preempting and replanning malleable bookings.
    Repacked {
        /// The plan the request was booked under.
        profile: AdvanceProfile,
        /// Malleable sessions that were moved to make room.
        moved: Vec<SessionId>,
    },
    /// Not admitted; state is unchanged.
    Rejected {
        /// Why admission failed.
        error: ReserveError,
        /// For malleable requests: the earliest deadline under which
        /// the same transfer *would* fit today, when one exists.
        nearest_feasible_deadline: Option<SimTime>,
    },
}

impl AdvanceOutcome {
    /// `true` for [`Booked`](Self::Booked) and
    /// [`Repacked`](Self::Repacked).
    pub fn is_booked(&self) -> bool {
        matches!(self, Self::Booked { .. } | Self::Repacked { .. })
    }

    /// The booked plan, when admitted.
    pub fn profile(&self) -> Option<&AdvanceProfile> {
        match self {
            Self::Booked { profile } | Self::Repacked { profile, .. } => Some(profile),
            Self::Rejected { .. } => None,
        }
    }

    /// Sessions moved by a repack (empty otherwise).
    pub fn moved(&self) -> &[SessionId] {
        match self {
            Self::Repacked { moved, .. } => moved,
            _ => &[],
        }
    }

    /// The rejection error, when not admitted.
    pub fn error(&self) -> Option<&ReserveError> {
        match self {
            Self::Rejected { error, .. } => Some(error),
            _ => None,
        }
    }

    /// Collapse into a `Result`, dropping repack/nearest-deadline
    /// detail.
    pub fn into_result(self) -> Result<AdvanceProfile, ReserveError> {
        match self {
            Self::Booked { profile } | Self::Repacked { profile, .. } => Ok(profile),
            Self::Rejected { error, .. } => Err(error),
        }
    }
}

/// Planner-ready malleable request: the `Malleable` shape flattened,
/// with the request's policy attached. Kept by [`crate::AdvanceRegistry`]
/// so preempted transfers can be replanned from their original terms.
#[derive(Debug, Clone)]
pub(crate) struct MalleableSpec {
    pub resource: ResourceId,
    pub volume: f64,
    pub earliest: SimTime,
    pub deadline: SimTime,
    pub min_rate: f64,
    pub max_rate: f64,
    pub policy: AlphaPolicy,
}

/// Plan and book a malleable transfer on `broker`.
///
/// On success the bookings are installed and the chosen profile
/// returned. On failure nothing is booked and the error carries the
/// nearest feasible deadline when the transfer would fit with more
/// slack.
pub(crate) fn book_malleable(
    broker: &TimelineBroker,
    session: SessionId,
    spec: &MalleableSpec,
    now: SimTime,
) -> Result<AdvanceProfile, (ReserveError, Option<SimTime>)> {
    if !spec.volume.is_finite() || spec.volume <= 0.0 {
        return Err((
            ReserveError::InvalidAmount {
                resource: spec.resource,
                amount: spec.volume,
            },
            None,
        ));
    }
    if spec.max_rate.is_nan() || spec.max_rate <= 0.0 {
        return Err((
            ReserveError::InvalidAmount {
                resource: spec.resource,
                amount: spec.max_rate,
            },
            None,
        ));
    }
    if !spec.min_rate.is_finite() || spec.min_rate < 0.0 {
        return Err((
            ReserveError::InvalidAmount {
                resource: spec.resource,
                amount: spec.min_rate,
            },
            None,
        ));
    }

    let start = spec.earliest.max(now);
    let avail = broker.availability_after(start);
    if start >= spec.deadline {
        let (_, _, _, nearest) = water_fill(&avail, start, None, spec);
        return Err((
            ReserveError::Insufficient {
                resource: spec.resource,
                requested: spec.volume,
                available: 0.0,
            },
            nearest,
        ));
    }

    // Constant-rate sweep: one candidate anchored at `start`, one at
    // every availability breakpoint before the deadline.
    let mut best: Option<(SimTime, f64, SimTime, f64)> = None;
    'candidates: for &(s, _) in avail.iter().filter(|&&(s, _)| s < spec.deadline) {
        let Some((rate, end, psi)) = constant_rate_at(broker, spec, s) else {
            continue;
        };
        match spec.policy {
            AlphaPolicy::Ignore => {
                best = Some((s, rate, end, psi));
                break 'candidates;
            }
            AlphaPolicy::Tradeoff => {
                if best.is_none_or(|(_, _, _, best_psi)| psi < best_psi) {
                    best = Some((s, rate, end, psi));
                }
            }
        }
    }
    if let Some((s, rate, end, psi)) = best {
        broker
            .reserve_window(session, rate, s, end)
            .map_err(|e| (e, None))?;
        return Ok(AdvanceProfile {
            resource: Some(spec.resource),
            start: s,
            end,
            volume: rate * end.since(s),
            psi,
            segments: vec![RateSegment {
                from: s,
                to: end,
                rate,
            }],
        });
    }

    // Variable-rate fallback: water-fill each availability step up to
    // the deadline.
    let (segments, achieved, max_psi, completion) =
        water_fill(&avail, start, Some(spec.deadline), spec);
    if let Some(end) = completion {
        // Validate every segment against the same pre-booking snapshot,
        // then install unchecked: the segments are time-disjoint, so
        // one-snapshot validation is exact, whereas booking them
        // sequentially through the checked path could trip over
        // ulp-level drift in the running level at shared breakpoints.
        for seg in &segments {
            let seg_avail = broker.available_over(seg.from, seg.to);
            if seg.rate > seg_avail {
                return Err((
                    ReserveError::Insufficient {
                        resource: spec.resource,
                        requested: seg.rate,
                        available: seg_avail,
                    },
                    None,
                ));
            }
        }
        let bookings: Vec<Booking> = segments
            .iter()
            .map(|seg| Booking {
                from: seg.from,
                to: seg.to,
                amount: seg.rate,
            })
            .collect();
        broker.restore(session, &bookings);
        let plan_start = segments.first().map_or(start, |seg| seg.from);
        return Ok(AdvanceProfile {
            resource: Some(spec.resource),
            start: plan_start,
            end,
            volume: segments.iter().map(RateSegment::volume).sum(),
            psi: max_psi,
            segments,
        });
    }

    // Infeasible by the deadline: rerun the water-fill unbounded to
    // report when the transfer *would* complete.
    let (_, _, _, nearest) = water_fill(&avail, start, None, spec);
    Err((
        ReserveError::Insufficient {
            resource: spec.resource,
            requested: spec.volume,
            available: achieved,
        },
        nearest,
    ))
}

/// Fixed-point search for a constant-rate profile starting at `s`:
/// guess a rate, measure availability over the implied window, clamp,
/// repeat until the rate is self-consistent. Returns
/// `(rate, end, psi)` or `None` when no constant rate from `s` can
/// finish by the deadline.
fn constant_rate_at(
    broker: &TimelineBroker,
    spec: &MalleableSpec,
    s: SimTime,
) -> Option<(f64, SimTime, f64)> {
    let horizon = spec.deadline.since(s);
    if horizon <= 0.0 {
        return None;
    }
    // Any feasible rate must reach `volume` by the deadline and respect
    // the request's floor.
    let floor = spec.min_rate.max(spec.volume / horizon);
    let mut rate = spec.max_rate.min(broker.capacity());
    for _ in 0..64 {
        if rate <= 0.0 || rate < floor {
            return None;
        }
        let duration = spec.volume / rate;
        if !duration.is_finite() {
            return None;
        }
        let end = SimTime::new(s.value() + duration);
        if end > spec.deadline {
            return None;
        }
        let avail = broker.available_over(s, end);
        let usable = avail.min(spec.max_rate);
        if rate <= usable {
            // Self-consistent: the window the rate implies really does
            // offer that rate. `rate <= avail` bitwise, so the checked
            // booking path accepts it without any epsilon slack.
            let psi = if avail > 0.0 {
                rate / avail
            } else {
                f64::INFINITY
            };
            return Some((rate, end, psi));
        }
        rate = usable;
    }
    None
}

/// Greedy water-fill over the availability steps from `start`: run each
/// step at `min(availability, max_rate)`, pause through steps below
/// `min_rate`, stop at `deadline` (or never, when `None` — used for the
/// nearest-feasible-deadline probe). Returns
/// `(segments, achieved_volume, max_psi, completion_time)`;
/// `completion_time` is `None` when the volume cannot be moved.
fn water_fill(
    avail: &[(SimTime, f64)],
    start: SimTime,
    deadline: Option<SimTime>,
    spec: &MalleableSpec,
) -> (Vec<RateSegment>, f64, f64, Option<SimTime>) {
    let mut segments: Vec<RateSegment> = Vec::new();
    let mut achieved = 0.0_f64;
    let mut max_psi = 0.0_f64;
    let mut remaining = spec.volume;
    for (i, &(step_start, step_avail)) in avail.iter().enumerate() {
        if deadline.is_some_and(|d| step_start >= d) {
            break;
        }
        let seg_start = step_start.max(start);
        // Upper bound of this step, clipped to the deadline; `None`
        // marks the unbounded final step.
        let bound = match (avail.get(i + 1).map(|&(next, _)| next), deadline) {
            (Some(next), Some(d)) => Some(next.min(d)),
            (Some(next), None) => Some(next),
            (None, d) => d,
        };
        if bound.is_some_and(|e| e <= seg_start) {
            continue;
        }
        let rate = step_avail.min(spec.max_rate);
        if rate <= 0.0 || rate < spec.min_rate {
            continue; // pause through this step
        }
        let step_volume = bound.map(|e| rate * e.since(seg_start));
        match step_volume {
            Some(v) if v < remaining => {
                let e = bound.expect("bounded step");
                segments.push(RateSegment {
                    from: seg_start,
                    to: e,
                    rate,
                });
                achieved += v;
                remaining -= v;
                max_psi = max_psi.max(rate / step_avail);
            }
            _ => {
                // This step can finish the transfer. Clamp to the step
                // bound: `remaining / rate` can overshoot it by an ulp,
                // which would spill the segment into the next
                // availability step (or past the deadline).
                let duration = remaining / rate;
                let e = SimTime::new(seg_start.value() + duration);
                let e = bound.map_or(e, |b| e.min(b));
                segments.push(RateSegment {
                    from: seg_start,
                    to: e,
                    rate,
                });
                achieved += remaining;
                max_psi = max_psi.max(rate / step_avail);
                return (segments, achieved, max_psi, Some(e));
            }
        }
    }
    (segments, achieved, max_psi, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advance::AdvanceRegistry;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    fn spec(volume: f64, deadline: f64) -> MalleableSpec {
        MalleableSpec {
            resource: ResourceId(0),
            volume,
            earliest: SimTime::ZERO,
            deadline: t(deadline),
            min_rate: 0.0,
            max_rate: f64::INFINITY,
            policy: AlphaPolicy::Ignore,
        }
    }

    #[test]
    fn builder_chains_and_accessors() {
        let req = AdvanceRequest::malleable(SessionId(7), ResourceId(2), 600.0, t(120.0))
            .earliest(t(10.0))
            .min_rate(1.0)
            .max_rate(40.0)
            .alpha_policy(AlphaPolicy::Tradeoff)
            .allow_preempt(true);
        assert_eq!(req.session(), SessionId(7));
        assert!(req.preempts());
        assert_eq!(req.policy(), AlphaPolicy::Tradeoff);
        let spec = req.malleable_spec().expect("malleable shape");
        assert_eq!(spec.resource, ResourceId(2));
        assert_eq!(spec.volume, 600.0);
        assert_eq!(spec.earliest, t(10.0));
        assert_eq!(spec.deadline, t(120.0));
        assert_eq!(spec.min_rate, 1.0);
        assert_eq!(spec.max_rate, 40.0);

        let rigid = AdvanceRequest::rigid(
            SessionId(1),
            ResourceVector::from_pairs([(ResourceId(0), 5.0)]).expect("demand"),
            t(0.0),
            t(10.0),
        )
        .earliest(t(99.0)) // no-op on rigid shapes
        .min_rate(3.0);
        assert!(rigid.malleable_spec().is_none());
        assert!(matches!(rigid.shape(), AdvanceShape::Rigid { .. }));
    }

    #[test]
    fn outcome_helpers_classify_variants() {
        let profile = AdvanceProfile {
            resource: Some(ResourceId(0)),
            start: t(0.0),
            end: t(10.0),
            volume: 50.0,
            psi: 0.5,
            segments: vec![RateSegment {
                from: t(0.0),
                to: t(10.0),
                rate: 5.0,
            }],
        };
        let booked = AdvanceOutcome::Booked {
            profile: profile.clone(),
        };
        assert!(booked.is_booked());
        assert!(booked.error().is_none());
        assert!(booked.moved().is_empty());
        assert_eq!(booked.profile().map(|p| p.volume), Some(50.0));

        let repacked = AdvanceOutcome::Repacked {
            profile: profile.clone(),
            moved: vec![SessionId(3)],
        };
        assert!(repacked.is_booked());
        assert_eq!(repacked.moved(), &[SessionId(3)]);
        assert!(repacked.clone().into_result().is_ok());

        let rejected = AdvanceOutcome::Rejected {
            error: ReserveError::InvalidAmount {
                resource: ResourceId(0),
                amount: -1.0,
            },
            nearest_feasible_deadline: Some(t(42.0)),
        };
        assert!(!rejected.is_booked());
        assert!(rejected.profile().is_none());
        assert!(rejected.error().is_some());
        assert!(rejected.into_result().is_err());
    }

    #[test]
    fn constant_rate_policy_picks_earliest_or_lowest_psi() {
        // Capacity 10 with an 8-unit obstacle over [0, 10): availability
        // is 2 until t=10, then 10.
        let setup = || {
            let broker = TimelineBroker::new(ResourceId(0), 10.0);
            broker
                .reserve_window(SessionId(99), 8.0, t(0.0), t(10.0))
                .expect("obstacle");
            broker
        };

        // Ignore: earliest feasible start wins — rate 2 over [0, 20).
        let broker = setup();
        let mut s = spec(40.0, 30.0);
        s.max_rate = 4.0;
        let profile = book_malleable(&broker, SessionId(1), &s, t(0.0)).expect("feasible");
        assert_eq!(profile.start, t(0.0));
        assert_eq!(profile.end, t(20.0));
        assert_eq!(profile.volume, 40.0);
        assert_eq!(profile.segments.len(), 1);
        assert_eq!(profile.segments[0].rate, 2.0);
        assert_eq!(profile.psi, 1.0);

        // Tradeoff: waiting for the obstacle to clear gives ψ = 4/10.
        let broker = setup();
        let mut s = spec(40.0, 30.0);
        s.max_rate = 4.0;
        s.policy = AlphaPolicy::Tradeoff;
        let profile = book_malleable(&broker, SessionId(1), &s, t(0.0)).expect("feasible");
        assert_eq!(profile.start, t(10.0));
        assert_eq!(profile.end, t(20.0));
        assert_eq!(profile.segments[0].rate, 4.0);
        assert!((profile.psi - 0.4).abs() < 1e-12);
        // The booking really landed: [10, 20) now offers 10 − 4 = 6.
        assert_eq!(broker.available_over(t(10.0), t(20.0)), 6.0);
    }

    #[test]
    fn water_fill_spans_availability_steps() {
        // Availability staircase 2 → 5 → 10; no constant rate moves 70
        // units by t=20, but water-filling the first two steps does.
        let broker = TimelineBroker::new(ResourceId(0), 10.0);
        broker
            .reserve_window(SessionId(98), 8.0, t(0.0), t(10.0))
            .expect("obstacle");
        broker
            .reserve_window(SessionId(99), 5.0, t(10.0), t(20.0))
            .expect("obstacle");
        let profile =
            book_malleable(&broker, SessionId(1), &spec(70.0, 20.0), t(0.0)).expect("water-fill");
        assert_eq!(profile.segments.len(), 2);
        assert_eq!(
            profile.segments[0],
            RateSegment {
                from: t(0.0),
                to: t(10.0),
                rate: 2.0
            }
        );
        assert_eq!(
            profile.segments[1],
            RateSegment {
                from: t(10.0),
                to: t(20.0),
                rate: 5.0
            }
        );
        assert_eq!(profile.volume, 70.0);
        assert_eq!(profile.end, t(20.0));
        assert_eq!(profile.psi, 1.0);
        // Both steps are now saturated.
        assert_eq!(broker.available_over(t(0.0), t(20.0)), 0.0);
    }

    #[test]
    fn min_rate_pauses_through_thin_steps() {
        // Step [0, 10) offers only 2 — below the 3-unit floor — so the
        // transfer pauses and runs at full rate afterwards.
        let broker = TimelineBroker::new(ResourceId(0), 10.0);
        broker
            .reserve_window(SessionId(99), 8.0, t(0.0), t(10.0))
            .expect("obstacle");
        let mut s = spec(50.0, 30.0);
        s.min_rate = 3.0;
        s.max_rate = 5.0;
        let profile = book_malleable(&broker, SessionId(1), &s, t(0.0)).expect("feasible");
        assert_eq!(profile.start, t(10.0));
        assert_eq!(profile.end, t(20.0));
        assert_eq!(
            profile.segments,
            vec![RateSegment {
                from: t(10.0),
                to: t(20.0),
                rate: 5.0
            }]
        );
    }

    #[test]
    fn infeasible_reports_nearest_deadline() {
        let broker = TimelineBroker::new(ResourceId(0), 10.0);
        broker
            .reserve_window(SessionId(99), 8.0, t(0.0), t(10.0))
            .expect("obstacle");
        let (error, nearest) =
            book_malleable(&broker, SessionId(1), &spec(100.0, 10.0), t(0.0)).expect_err("too big");
        match error {
            ReserveError::Insufficient {
                requested,
                available,
                ..
            } => {
                assert_eq!(requested, 100.0);
                assert_eq!(available, 20.0); // 2 × 10 achievable by the deadline
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // 20 units by t=10, the remaining 80 at rate 10 → done at t=18.
        assert_eq!(nearest, Some(t(18.0)));
        // Nothing was booked.
        assert!(broker.bookings_of(SessionId(1)).is_empty());
        assert_eq!(broker.available_over(t(10.0), t(20.0)), 10.0);
    }

    #[test]
    fn registry_repack_moves_malleable_sessions() {
        let mut registry = AdvanceRegistry::new();
        registry.register(std::sync::Arc::new(TimelineBroker::new(
            ResourceId(0),
            10.0,
        )));

        // Malleable A books rate 4 over [0, 10).
        let a = AdvanceRequest::malleable(SessionId(1), ResourceId(0), 40.0, t(30.0)).max_rate(4.0);
        assert!(registry.book(&a, t(0.0)).is_booked());

        // Rigid B needs 8 over [0, 10): only 6 free, so it must preempt.
        let demand = ResourceVector::from_pairs([(ResourceId(0), 8.0)]).expect("demand");
        let b = AdvanceRequest::rigid(SessionId(2), demand.clone(), t(0.0), t(10.0))
            .allow_preempt(true);
        let outcome = registry.book(&b, t(0.0));
        assert!(outcome.is_booked());
        assert_eq!(outcome.moved(), &[SessionId(1)]);

        // A was replanned to rate 2 over [0, 20) around the rigid block.
        let broker = registry.get(ResourceId(0)).expect("registered");
        let replanned = broker.bookings_of(SessionId(1));
        assert_eq!(replanned.len(), 1);
        assert_eq!(replanned[0].amount, 2.0);
        assert_eq!(replanned[0].to, t(20.0));
        assert_eq!(broker.available_over(t(0.0), t(10.0)), 0.0);

        // Rigid C cannot fit even after evicting A: all-or-nothing
        // rollback leaves every booking exactly as it was.
        let c = AdvanceRequest::rigid(SessionId(3), demand, t(0.0), t(10.0)).allow_preempt(true);
        let outcome = registry.book(&c, t(0.0));
        assert!(!outcome.is_booked());
        assert!(outcome.error().is_some());
        let broker = registry.get(ResourceId(0)).expect("registered");
        assert_eq!(broker.bookings_of(SessionId(1)).len(), 1);
        assert_eq!(broker.bookings_of(SessionId(1))[0].amount, 2.0);
        assert!(broker.bookings_of(SessionId(3)).is_empty());
        assert_eq!(broker.available_over(t(0.0), t(10.0)), 0.0);
    }
}
