//! QoSProxies and the coordinated session-establishment protocol (§3,
//! §4.2).
//!
//! One [`QosProxy`] runs per end host, fronting that host's Resource
//! Brokers. For each service session the [`Coordinator`] — the paper's
//! *main QoSProxy*, which stores the service's QoS-Resource Model — runs
//! the three-phase protocol of §4.2:
//!
//! 1. **Collect**: every participating QoSProxy reports the availability
//!    (and α) of its local resources — one message round trip each;
//! 2. **Compute**: the main QoSProxy builds the QRG and computes the
//!    end-to-end reservation plan locally;
//! 3. **Dispatch**: the plan's segments are dispatched to the owning
//!    proxies as a **two-phase reserve/commit**: every segment is first
//!    reserved (prepare), then every prepared segment is confirmed
//!    (commit). Any failure in either phase — a broker rejection, a
//!    crashed host, a lost message, or an injected commit failure —
//!    rolls back *all* prepared segments exactly once.
//!
//! Failures injected by the coordinator's [`FaultInjector`] are
//! absorbed by a bounded [`RetryPolicy`]: each retry re-collects
//! availability (down hosts report nothing, so planning routes around
//! them), optionally falling back to the α-tradeoff planner so the
//! session degrades to a lower QoS level instead of failing hard.

use crate::request::{planner_label, EstablishOutcome, NearestMiss, SessionRequest, SpanCollector};
use crate::{
    BrokerRegistry, EstablishError, FaultError, FaultInjector, ReserveError, RetryPolicy,
    SessionId, SimTime,
};
use qosr_core::{
    AvailabilityView, EpochSnapshot, PlanCtxPool, Planner, QrgOptions, ReservationPlan,
};
use qosr_model::{ResourceId, ResourceVector, SessionInstance};
use qosr_obs::{
    Counters, EventKind, NullSink, Phase, PhaseTimers, SpanKind, TraceEvent, TraceSink, Tracer,
};
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the coordinator observes resource availability when planning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObservationPolicy {
    /// Plan computation and reservation are atomic: observations are
    /// always consistent and up to date (the paper's base assumption).
    Accurate,
    /// Each resource may have been observed up to `max_age` time units
    /// ago (independently, uniformly distributed) — the relaxation of
    /// §5.2.4. Reservations still run against *true* broker state, so
    /// they can now fail.
    Stale {
        /// Maximum observation age `E`, in time units.
        max_age: f64,
    },
}

/// Options for one establishment attempt.
#[derive(Debug, Clone)]
pub struct EstablishOptions {
    /// Which planning algorithm the main QoSProxy runs.
    pub planner: Planner,
    /// Observation accuracy model.
    pub observation: ObservationPolicy,
    /// QRG construction options (ψ definition, tie-break ablation).
    pub qrg: QrgOptions,
    /// Bounded retry + backoff applied when an attempt fails. The
    /// default takes no retries, leaving the fault-free protocol
    /// byte-identical to the pre-fault behavior.
    pub retry: RetryPolicy,
}

impl Default for EstablishOptions {
    fn default() -> Self {
        EstablishOptions {
            planner: Planner::Basic,
            observation: ObservationPolicy::Accurate,
            qrg: QrgOptions::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// A successfully established session: its id and the reservation plan
/// in force. Pass it to [`Coordinator::terminate`] to cancel the
/// reservations when the session ends.
#[derive(Debug, Clone)]
pub struct EstablishedSession {
    /// The session's id at the brokers.
    pub id: SessionId,
    /// The end-to-end reservation plan in force.
    pub plan: ReservationPlan,
}

/// Message-passing accounting for the three-phase protocol (§4.2 derives
/// the overhead as one round trip per participating QoSProxy plus local
/// execution).
///
/// Assembled on demand by [`Coordinator::stats`] from per-host shard
/// counters plus the coordinator's [`Counters`] — there is no lock on
/// the establish path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Availability-collection round trips (phase 1).
    pub collect_roundtrips: u64,
    /// Plan-segment reserve (prepare) messages (phase 3a).
    pub dispatches: u64,
    /// Plan-segment commit confirmations (phase 3b).
    pub commit_roundtrips: u64,
    /// Establishment attempts.
    pub attempts: u64,
    /// Successful establishments.
    pub established: u64,
}

/// Per-host relaxed-atomic message counters. One shard per proxy, in
/// proxy order, so protocol traffic on disjoint hosts never contends on
/// a shared lock (or even a shared cache line of counters).
#[derive(Debug, Default)]
struct ShardCounters {
    collect_roundtrips: AtomicU64,
    dispatches: AtomicU64,
    commit_roundtrips: AtomicU64,
}

/// Protocol message statistics for one host, as reported by
/// [`Coordinator::host_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostMessageStats {
    /// The host the shard counts traffic for.
    pub host: String,
    /// Availability-collection round trips to this host (phase 1).
    pub collect_roundtrips: u64,
    /// Reserve (prepare) messages to this host (phase 3a).
    pub dispatches: u64,
    /// Commit confirmations to this host (phase 3b).
    pub commit_roundtrips: u64,
}

/// The per-host reservation front end: a QoSProxy and its local Resource
/// Brokers.
pub struct QosProxy {
    host: String,
    brokers: BrokerRegistry,
}

impl QosProxy {
    /// Creates a proxy for `host` fronting the given brokers.
    pub fn new(host: impl Into<String>, brokers: BrokerRegistry) -> Self {
        QosProxy {
            host: host.into(),
            brokers,
        }
    }

    /// The host this proxy runs on.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The proxy's local brokers.
    pub fn brokers(&self) -> &BrokerRegistry {
        &self.brokers
    }

    /// Phase 1: report availability of all local resources into `view`.
    fn collect_into(
        &self,
        view: &mut AvailabilityView,
        now: SimTime,
        observation: ObservationPolicy,
        rng: &mut impl Rng,
    ) {
        match observation {
            ObservationPolicy::Accurate => {
                for broker in self.brokers.iter() {
                    let r = broker.report(now);
                    view.set_with_alpha(broker.resource(), r.avail, r.alpha);
                }
            }
            ObservationPolicy::Stale { max_age } => {
                let stale = self.brokers.snapshot_stale(now, max_age, rng);
                for (id, avail, alpha) in stale.iter() {
                    view.set_with_alpha(id, avail, alpha);
                }
            }
        }
    }
}

impl QosProxy {
    pub(crate) fn reserve_segment(
        &self,
        session: SessionId,
        demand: &ResourceVector,
        now: SimTime,
    ) -> Result<(), ReserveError> {
        self.brokers.reserve_all(session, demand, now)
    }

    pub(crate) fn release_session(&self, session: SessionId, now: SimTime) -> f64 {
        self.brokers.release_all(session, now)
    }
}

/// The main QoSProxy: coordinates multi-resource reservations across the
/// per-host proxies.
pub struct Coordinator {
    proxies: Vec<Arc<QosProxy>>,
    /// Which proxy owns each resource.
    owner: HashMap<ResourceId, usize>,
    next_session: AtomicU64,
    /// Per-host message counters, parallel to `proxies`.
    shards: Vec<ShardCounters>,
    /// Pool of reusable planning contexts (phase 2): each caches a QRG
    /// skeleton and planning scratch, and concurrent planners (the
    /// batched [`AdmissionQueue`](crate::AdmissionQueue)) check out
    /// their own instead of serializing on one shared context.
    plan_pool: PlanCtxPool,
    /// Session-lifecycle event destination ([`NullSink`] by default, so
    /// instrumented paths cost one branch).
    sink: Arc<dyn TraceSink>,
    /// This coordinator's monotonic counters (always on).
    counters: Arc<Counters>,
    /// Per-phase wall-clock histograms (disabled by default: spans cost
    /// one relaxed atomic load until a metrics registry attaches).
    timers: Arc<PhaseTimers>,
    /// Fault injection (disabled by default: one relaxed atomic load per
    /// protocol message boundary).
    faults: Arc<FaultInjector>,
    /// Request-scoped tracing (disabled by default: requests pay one
    /// relaxed atomic load; see [`qosr_obs::Tracer`]).
    tracer: Arc<Tracer>,
}

/// Failure of one establishment attempt: the error, the terminal trace
/// event to emit if the attempt turns out to be the last, and the
/// planner's nearest miss (for [`EstablishOutcome::Rejected`]).
type AttemptFailure = (EstablishError, Option<Box<TraceEvent>>, Option<NearestMiss>);

impl Coordinator {
    /// Builds a coordinator over the given per-host proxies, with tracing
    /// disabled ([`NullSink`]).
    ///
    /// # Panics
    /// Panics if two proxies broker the same resource.
    pub fn new(proxies: Vec<Arc<QosProxy>>) -> Self {
        Coordinator::with_trace(proxies, Arc::new(NullSink))
    }

    /// Builds a coordinator that emits session-lifecycle [`TraceEvent`]s
    /// to `sink` (see the `qosr-obs` crate).
    ///
    /// # Panics
    /// Panics if two proxies broker the same resource.
    pub fn with_trace(proxies: Vec<Arc<QosProxy>>, sink: Arc<dyn TraceSink>) -> Self {
        let mut owner = HashMap::new();
        for (i, proxy) in proxies.iter().enumerate() {
            for broker in proxy.brokers.iter() {
                let prev = owner.insert(broker.resource(), i);
                assert!(
                    prev.is_none(),
                    "resource {} brokered by two proxies",
                    broker.resource()
                );
            }
        }
        let shards = proxies.iter().map(|_| ShardCounters::default()).collect();
        Coordinator {
            proxies,
            owner,
            next_session: AtomicU64::new(1),
            shards,
            plan_pool: PlanCtxPool::new(),
            sink,
            counters: Arc::new(Counters::new()),
            timers: Arc::new(PhaseTimers::new()),
            faults: Arc::new(FaultInjector::disabled()),
            tracer: Arc::new(Tracer::default()),
        }
    }

    /// The per-host proxies.
    pub fn proxies(&self) -> &[Arc<QosProxy>] {
        &self.proxies
    }

    /// The coordinator's trace sink.
    pub fn sink(&self) -> &Arc<dyn TraceSink> {
        &self.sink
    }

    /// The coordinator's monotonic counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// A shareable handle to the coordinator's counters (for attaching
    /// to a `MetricsRegistry`).
    pub fn counters_arc(&self) -> Arc<Counters> {
        Arc::clone(&self.counters)
    }

    /// The coordinator's per-phase wall-clock timers. Disabled by
    /// default — enable them (directly, or by attaching a
    /// `MetricsRegistry`) to measure where admissions spend their time.
    pub fn phase_timers(&self) -> &Arc<PhaseTimers> {
        &self.timers
    }

    /// The coordinator's request tracer. Disabled by default — call
    /// [`Tracer::set_enabled`] to start assembling per-request span
    /// trees for [`SessionRequest`]s carrying a trace id (see
    /// [`SessionRequest::traced`]); completed trees land in the tracer's
    /// flight ring and, when the sink is live, as
    /// [`EventKind::RequestSpan`]/[`EventKind::RequestOutcome`] events.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Replaces the coordinator's tracer with a shared one, so a caller
    /// (e.g. the scenario engine's observed entry point, or a server
    /// sharing one tracer with its advance registry) can keep reading
    /// span histograms and the flight ring after the coordinator is
    /// gone.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = tracer;
    }

    /// The coordinator's fault injector. Disabled unless configured;
    /// use [`FaultInjector::configure`], [`Coordinator::crash_host`] and
    /// [`Coordinator::recover_host`] to arm it.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// Marks `host` crashed: its brokers stop answering collect,
    /// prepare and commit messages until [`Coordinator::recover_host`].
    /// Records the fault and emits [`EventKind::FaultInjected`].
    pub fn crash_host(&self, host: &str, now: SimTime) {
        self.faults.crash(host);
        self.counters.record_fault_injected();
        if self.sink.enabled() {
            self.sink.emit(
                &TraceEvent::new(now.value(), EventKind::FaultInjected)
                    .with_name(host)
                    .with_detail("host crashed"),
            );
        }
    }

    /// Marks `host` recovered: its brokers answer again, re-admitting
    /// their capacity to planning (the upgrade scan then reclaims it).
    /// Emits [`EventKind::HostRecovered`].
    pub fn recover_host(&self, host: &str, now: SimTime) {
        self.faults.recover(host);
        if self.sink.enabled() {
            self.sink
                .emit(&TraceEvent::new(now.value(), EventKind::HostRecovered).with_name(host));
        }
    }

    /// The proxy owning `resource`, if any.
    pub fn owner_of(&self, resource: ResourceId) -> Option<&Arc<QosProxy>> {
        self.owner.get(&resource).map(|&i| &self.proxies[i])
    }

    /// Cumulative protocol message statistics, assembled from the
    /// per-host shard counters and the coordinator's [`Counters`].
    pub fn stats(&self) -> MessageStats {
        let mut stats = MessageStats::default();
        for shard in &self.shards {
            stats.collect_roundtrips += shard.collect_roundtrips.load(Ordering::Relaxed);
            stats.dispatches += shard.dispatches.load(Ordering::Relaxed);
            stats.commit_roundtrips += shard.commit_roundtrips.load(Ordering::Relaxed);
        }
        let snap = self.counters.snapshot();
        stats.attempts = snap.establish_attempts;
        stats.established = snap.establishments;
        stats
    }

    /// Per-host protocol message statistics, in proxy order. Shows how
    /// protocol traffic spreads across the host shards.
    pub fn host_stats(&self) -> Vec<HostMessageStats> {
        self.proxies
            .iter()
            .zip(&self.shards)
            .map(|(proxy, shard)| HostMessageStats {
                host: proxy.host().to_string(),
                collect_roundtrips: shard.collect_roundtrips.load(Ordering::Relaxed),
                dispatches: shard.dispatches.load(Ordering::Relaxed),
                commit_roundtrips: shard.commit_roundtrips.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The coordinator's pool of planning contexts. Exposed so batched
    /// admission (and tests) can observe pool growth; most callers never
    /// touch it.
    pub fn plan_pool(&self) -> &PlanCtxPool {
        &self.plan_pool
    }

    /// Allocates the next session id.
    pub(crate) fn alloc_session_id(&self) -> SessionId {
        SessionId(self.next_session.fetch_add(1, Ordering::Relaxed))
    }

    /// Runs one phase-1 collect and stamps the resulting view with
    /// `epoch` — the shared snapshot a batched admission round plans
    /// against.
    pub fn epoch_snapshot(
        &self,
        epoch: u64,
        now: SimTime,
        observation: ObservationPolicy,
        rng: &mut impl Rng,
    ) -> EpochSnapshot {
        let view = self.collect(now, observation, rng, self.sink.enabled());
        EpochSnapshot::new(epoch, now.value(), view)
    }

    /// Admits one [`SessionRequest`] through the three-phase
    /// establishment protocol and classifies the result as a structured
    /// [`EstablishOutcome`].
    ///
    /// On [`EstablishOutcome::Committed`] (or
    /// [`EstablishOutcome::Degraded`], when retries settled for a lower
    /// rank than first planned) the session's resources are reserved at
    /// the brokers; on [`EstablishOutcome::Rejected`] nothing is left
    /// reserved — every attempt rolls its prepared hops back before the
    /// next attempt (or the rejection) is taken. Retries re-collect
    /// availability, so planning routes around hosts that crashed
    /// mid-flight; with [`RetryPolicy::tradeoff_fallback`] the
    /// α-tradeoff policy then degrades the session to a lower QoS level
    /// rather than failing it outright. The request's
    /// [`qos_min`](SessionRequest::qos_min) floor and
    /// [`deadline`](SessionRequest::deadline) are enforced before
    /// anything is reserved.
    pub fn establish_request(
        &self,
        request: &SessionRequest,
        now: SimTime,
        rng: &mut impl Rng,
    ) -> EstablishOutcome {
        // Request-scoped tracing costs one relaxed load here; only a
        // traced request under an enabled tracer builds a collector.
        let mut collector = match request.trace {
            Some(ctx) if self.tracer.enabled() => Some(SpanCollector::new(ctx)),
            _ => None,
        };
        let (result, first_planned, nearest_miss) = self.establish_core(
            &request.session,
            &request.options,
            request.qos_min,
            request.deadline,
            now,
            rng,
            collector.as_mut(),
        );
        let outcome = match result {
            Ok(est) => match first_planned {
                Some(from) if est.plan.rank < from => EstablishOutcome::Degraded {
                    from,
                    to: est.plan.rank,
                    session: est,
                },
                _ => EstablishOutcome::Committed(est),
            },
            Err(error) => EstablishOutcome::Rejected {
                error,
                nearest_miss,
            },
        };
        if let Some(collector) = collector {
            let trace = collector.finish(&outcome, request.session.service().name());
            self.tracer.record(trace, self.sink.as_ref(), now.value());
        }
        outcome
    }

    /// The establishment engine behind both [`Coordinator::establish_request`]
    /// and the batched admission queue's single-session fallbacks.
    /// Returns the result plus the rank the *first* attempt planned (for
    /// degraded-commit classification) and, on planning failure, the
    /// nearest-miss blocking resource.
    #[allow(clippy::too_many_arguments)]
    fn establish_core(
        &self,
        session: &SessionInstance,
        options: &EstablishOptions,
        qos_min: Option<u32>,
        deadline: Option<SimTime>,
        now: SimTime,
        rng: &mut impl Rng,
        mut collector: Option<&mut SpanCollector>,
    ) -> (
        Result<EstablishedSession, EstablishError>,
        Option<u32>,
        Option<NearestMiss>,
    ) {
        self.counters.record_establish_attempt();
        self.counters.record_plan_started();
        let traced = self.sink.enabled();
        let t = now.value();
        let service_name = session.service().name();
        if traced {
            self.sink
                .emit(&TraceEvent::new(t, EventKind::PlanStarted).with_service(service_name));
        }

        if let Some(due) = deadline {
            if t > due.value() {
                let err = EstablishError::DeadlineExpired {
                    deadline: due.value(),
                    now: t,
                };
                self.counters.record_plan_rejected();
                if traced {
                    self.sink.emit(
                        &TraceEvent::new(t, EventKind::PlanRejected)
                            .with_service(service_name)
                            .with_detail(err.to_string()),
                    );
                }
                return (Err(err), None, None);
            }
        }

        let mut first_planned_rank: Option<u32> = None;
        let mut attempt = 0u32;
        loop {
            match self.establish_attempt(
                session,
                options,
                qos_min,
                now,
                rng,
                attempt,
                &mut first_planned_rank,
                traced,
                collector.as_deref_mut(),
            ) {
                Ok(est) => {
                    if let Some(first) = first_planned_rank {
                        if est.plan.rank < first {
                            self.counters.record_degraded_commit();
                            if traced {
                                self.sink.emit(
                                    &TraceEvent::new(t, EventKind::DegradedEstablish)
                                        .with_session(est.id.0)
                                        .with_service(service_name)
                                        .with_level(est.plan.rank)
                                        .with_detail(format!("first attempt planned rank {first}")),
                                );
                            }
                        }
                    }
                    return (Ok(est), first_planned_rank, None);
                }
                Err((err, terminal_event, nearest_miss)) => {
                    // A QoS floor violated by the *best* feasible plan
                    // cannot be fixed by retrying (retries only keep or
                    // lower the rank), so it is terminal immediately.
                    let retryable = !matches!(err, EstablishError::QosBelowMin { .. });
                    if retryable && attempt < options.retry.max_retries {
                        attempt += 1;
                        self.counters.record_retry();
                        if let Some(c) = collector.as_deref_mut() {
                            c.retries += 1;
                        }
                        if traced {
                            self.sink.emit(
                                &TraceEvent::new(t, EventKind::EstablishRetry)
                                    .with_service(service_name)
                                    .with_detail(format!(
                                        "{err}; retry {attempt}/{} after backoff {}",
                                        options.retry.max_retries,
                                        options.retry.backoff_delay(attempt)
                                    )),
                            );
                        }
                        continue;
                    }
                    match &err {
                        EstablishError::Plan(_)
                        | EstablishError::QosBelowMin { .. }
                        | EstablishError::DeadlineExpired { .. } => {
                            self.counters.record_plan_rejected()
                        }
                        EstablishError::Reserve(_) => self.counters.record_reservation_rejected(),
                        EstablishError::Fault(_) => self.counters.record_fault_failure(),
                    }
                    if let Some(ev) = terminal_event {
                        self.sink.emit(&ev);
                    }
                    return (Err(err), first_planned_rank, nearest_miss);
                }
            }
        }
    }

    /// One attempt of the three-phase protocol. On failure, returns the
    /// error plus the terminal trace event to emit *if* this attempt
    /// turns out to be the last one (intermediate attempts emit
    /// [`EventKind::EstablishRetry`] instead, keeping the replayed
    /// rejection counts equal to the run metrics').
    #[allow(clippy::too_many_arguments)]
    fn establish_attempt(
        &self,
        session: &SessionInstance,
        options: &EstablishOptions,
        qos_min: Option<u32>,
        now: SimTime,
        rng: &mut impl Rng,
        attempt: u32,
        first_planned_rank: &mut Option<u32>,
        traced: bool,
        mut collector: Option<&mut SpanCollector>,
    ) -> Result<EstablishedSession, AttemptFailure> {
        let t = now.value();
        let service_name = session.service().name();

        // Phase 1: collect availability (one round trip per reachable
        // proxy; down hosts report nothing, so the planner never places
        // demand on them).
        let phase_start = collector.is_some().then(std::time::Instant::now);
        let view = self.collect(now, options.observation, rng, traced);
        if let (Some(c), Some(started)) = (collector.as_deref_mut(), phase_start) {
            let span = c.record(SpanKind::Collect, started);
            if attempt > 0 {
                span.attempt = Some(attempt);
            }
        }

        // Graceful degradation: from the first retry on, plan with the
        // α-tradeoff policy so resources trending down (α < 1 — typical
        // right after a crash re-shuffles load) are stepped around.
        let planner = if attempt > 0
            && options.retry.tradeoff_fallback
            && matches!(options.planner, Planner::Basic)
        {
            Planner::Tradeoff
        } else {
            options.planner
        };

        // Phase 2: local computation at the main QoSProxy, on a planning
        // context checked out of the pool (cached skeleton + scratch).
        // Events are gathered while the context is held and emitted
        // after.
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut hops: Vec<TraceEvent> = Vec::new();
        let mut reject_event: Option<Box<TraceEvent>> = None;
        let mut nearest: Option<NearestMiss> = None;
        let phase_start = collector.is_some().then(std::time::Instant::now);
        let plan_span = self.timers.span_traced(Phase::Plan, self.sink.as_ref(), t);
        let (result, downgrade) = {
            let mut ctx = self.plan_pool.checkout();
            let result = ctx.plan_session(session, &view, &options.qrg, planner, rng);
            if result.is_err() {
                nearest = ctx
                    .nearest_miss()
                    .map(|(resource, ratio)| NearestMiss { resource, ratio });
            }
            if traced {
                for c in ctx.candidates() {
                    let mut ev = TraceEvent::new(t, EventKind::CandidateEvaluated)
                        .with_pair(c.component, c.qin, c.qout)
                        .with_feasible(c.feasible)
                        .with_psi(c.psi);
                    if let Some(rid) = c.resource {
                        ev = ev.with_resource(u64::from(rid.0));
                    }
                    if let Some(alpha) = c.alpha {
                        ev = ev.with_alpha(alpha);
                    }
                    events.push(ev);
                }
                if result.is_err() {
                    let mut ev = TraceEvent::new(t, EventKind::PlanRejected)
                        .with_service(service_name)
                        .with_detail("no feasible end-to-end plan");
                    if let Some(miss) = nearest {
                        ev = ev
                            .with_resource(u64::from(miss.resource.0))
                            .with_psi(miss.ratio);
                    }
                    reject_event = Some(Box::new(ev));
                }
                if let Ok(plan) = &result {
                    for a in &plan.assignments {
                        let mut ev = TraceEvent::new(t, EventKind::HopSelected).with_pair(
                            a.component as u32,
                            a.qin as u32,
                            a.qout as u32,
                        );
                        if let Some(c) = ctx.candidate(a.component, a.qin, a.qout) {
                            ev = ev.with_psi(c.psi);
                            if let Some(rid) = c.resource {
                                ev = ev.with_resource(u64::from(rid.0));
                            }
                        }
                        hops.push(ev);
                    }
                }
            }
            (result, ctx.last_downgrade())
        };
        drop(plan_span);
        if let (Some(c), Some(started)) = (collector.as_deref_mut(), phase_start) {
            let span = c.record(SpanKind::Plan, started);
            span.planner = Some(planner_label(planner).to_string());
            if attempt > 0 {
                span.attempt = Some(attempt);
            }
            if let Ok(plan) = &result {
                span.psi = Some(plan.psi);
            }
        }
        if let Some((from, to)) = downgrade {
            self.counters.record_tradeoff_downgrade();
            if traced {
                events.push(
                    TraceEvent::new(t, EventKind::TradeoffDowngrade)
                        .with_service(service_name)
                        .with_level(to)
                        .with_detail(format!("stepped down from rank {from}")),
                );
            }
        }
        for ev in &events {
            self.sink.emit(ev);
        }
        let plan = match result {
            Ok(plan) => plan,
            Err(e) => return Err((e.into(), reject_event, nearest)),
        };
        // Enforce the request's QoS floor between planning and dispatch:
        // the best feasible plan either clears the floor or the request
        // is rejected with nothing reserved.
        if let Some(min) = qos_min {
            if plan.rank < min {
                let err = EstablishError::QosBelowMin {
                    achieved: plan.rank,
                    min,
                };
                let terminal = traced.then(|| {
                    Box::new(
                        TraceEvent::new(t, EventKind::PlanRejected)
                            .with_service(service_name)
                            .with_level(plan.rank)
                            .with_detail(err.to_string()),
                    )
                });
                return Err((err, terminal, None));
            }
        }
        if first_planned_rank.is_none() {
            *first_planned_rank = Some(plan.rank);
        }
        self.counters.record_plan_completed();
        if traced {
            let mut ev = TraceEvent::new(t, EventKind::PlanCompleted)
                .with_service(service_name)
                .with_level(plan.rank)
                .with_psi(plan.psi);
            if let Some(b) = &plan.bottleneck {
                ev = ev
                    .with_resource(u64::from(b.resource.0))
                    .with_alpha(b.alpha);
            }
            self.sink.emit(&ev);
            for ev in &hops {
                self.sink.emit(ev);
            }
        }

        // Phase 3: two-phase reserve/commit across the owning proxies,
        // all-or-nothing with exactly-once rollback.
        let id = self.alloc_session_id();
        let phase_start = collector.is_some().then(std::time::Instant::now);
        let dispatched = self.dispatch(id, &plan.total_demand(), now, traced, true);
        if let (Some(c), Some(started)) = (collector, phase_start) {
            let span = c.record(SpanKind::Commit, started);
            if attempt > 0 {
                span.attempt = Some(attempt);
            }
            if dispatched.is_err() {
                span.detail = Some("rolled back".to_string());
            }
        }
        if let Err(e) = dispatched {
            let terminal = if !traced {
                None
            } else {
                match &e {
                    EstablishError::Reserve(re) => Some(Box::new(
                        TraceEvent::new(t, EventKind::ReservationRejected)
                            .with_session(id.0)
                            .with_service(service_name)
                            .with_resource(u64::from(re.resource().0))
                            .with_detail(re.to_string()),
                    )),
                    EstablishError::Fault(fe) => Some(Box::new(
                        TraceEvent::new(t, EventKind::EstablishFaulted)
                            .with_session(id.0)
                            .with_service(service_name)
                            .with_name(fe.host())
                            .with_detail(fe.to_string()),
                    )),
                    _ => None,
                }
            };
            return Err((e, terminal, None));
        }

        self.counters.record_establishment();
        self.counters.record_commit(plan.psi);
        if traced {
            let mut ev = TraceEvent::new(t, EventKind::ReservationCommitted)
                .with_session(id.0)
                .with_service(service_name)
                .with_level(plan.rank)
                .with_psi(plan.psi);
            if let Some(b) = &plan.bottleneck {
                ev = ev
                    .with_resource(u64::from(b.resource.0))
                    .with_alpha(b.alpha);
            }
            self.sink.emit(&ev);
        }
        Ok(EstablishedSession { id, plan })
    }

    /// Phase 1 helper: collect availability from every reachable proxy.
    /// Down hosts are skipped (their resources stay unobserved, which the
    /// planner treats as zero availability); a dropped report message
    /// leaves that host's resources unobserved the same way.
    pub(crate) fn collect(
        &self,
        now: SimTime,
        observation: ObservationPolicy,
        rng: &mut impl Rng,
        traced: bool,
    ) -> AvailabilityView {
        let _span = self
            .timers
            .span_traced(Phase::Collect, self.sink.as_ref(), now.value());
        let mut view = AvailabilityView::new();
        let faults_active = self.faults.is_active();
        for (i, proxy) in self.proxies.iter().enumerate() {
            if faults_active {
                if self.faults.is_down(proxy.host()) {
                    continue;
                }
                self.shards[i]
                    .collect_roundtrips
                    .fetch_add(1, Ordering::Relaxed);
                if self.faults.drop_message() {
                    self.counters.record_fault_injected();
                    if traced {
                        self.sink.emit(
                            &TraceEvent::new(now.value(), EventKind::FaultInjected)
                                .with_name(proxy.host())
                                .with_detail("availability report lost"),
                        );
                    }
                    continue;
                }
            } else {
                self.shards[i]
                    .collect_roundtrips
                    .fetch_add(1, Ordering::Relaxed);
            }
            proxy.collect_into(&mut view, now, observation, rng);
        }
        view
    }

    /// Terminates an established session *after a host crash*: all its
    /// reservations (on up and down hosts alike — a recovering broker
    /// reclaims crashed-session state before re-admitting capacity) are
    /// released and the loss is recorded. Returns the total amount
    /// released.
    pub fn abort(&self, session: &EstablishedSession, now: SimTime) -> f64 {
        let released: f64 = self
            .proxies
            .iter()
            .map(|p| p.release_session(session.id, now))
            .sum();
        self.counters.record_session_lost();
        if self.sink.enabled() {
            self.sink.emit(
                &TraceEvent::new(now.value(), EventKind::SessionLost)
                    .with_session(session.id.0)
                    .with_detail(format!("released {released}")),
            );
        }
        released
    }

    /// Releases `id`'s holdings at exactly the brokers `demand` names —
    /// O(session resources) rather than O(environment resources). Valid
    /// whenever the session's reservations are known to sit where its
    /// plan put them (the normal terminate and renegotiate-swap paths);
    /// the fault paths ([`Coordinator::abort`], rollback) keep their
    /// full scans because crashes can leave holdings the plan no longer
    /// describes.
    fn release_planned(&self, id: SessionId, demand: &ResourceVector, now: SimTime) -> f64 {
        let mut released = 0.0;
        for (rid, _) in demand.iter() {
            if let Some(broker) = self.owner_of(rid).and_then(|p| p.brokers.get(rid)) {
                released += broker.release(id, now);
            }
        }
        released
    }

    /// Terminates an established session, releasing all its reservations.
    /// Returns the total amount released.
    pub fn terminate(&self, session: &EstablishedSession, now: SimTime) -> f64 {
        let released = self.release_planned(session.id, &session.plan.total_demand(), now);
        self.counters.record_release();
        if self.sink.enabled() {
            self.sink.emit(
                &TraceEvent::new(now.value(), EventKind::SessionReleased)
                    .with_session(session.id.0)
                    .with_detail(format!("released {released}")),
            );
        }
        released
    }

    /// Re-plans a *live* session against current availability **plus its
    /// own holdings** (a session may always keep what it already has),
    /// without touching any reservation. Returns the best plan currently
    /// achievable — compare it with the plan in force to decide whether
    /// to [`Coordinator::renegotiate`].
    pub fn replan(
        &self,
        current: &EstablishedSession,
        session: &SessionInstance,
        options: &EstablishOptions,
        now: SimTime,
        rng: &mut impl Rng,
    ) -> Result<ReservationPlan, EstablishError> {
        let mut view = self.collect(now, options.observation, rng, self.sink.enabled());
        // Add the session's own holdings back into the view. The plan's
        // demand vector names every broker the session reserved at, so
        // only those are asked.
        for (rid, _) in current.plan.total_demand().iter() {
            if let Some(broker) = self.owner_of(rid).and_then(|p| p.brokers.get(rid)) {
                let held = broker.reserved_for(current.id);
                if held > 0.0 {
                    view.set_with_alpha(rid, view.avail(rid) + held, view.alpha(rid));
                }
            }
        }
        let _span = self
            .timers
            .span_traced(Phase::Replan, self.sink.as_ref(), now.value());
        let mut ctx = self.plan_pool.checkout();
        Ok(ctx.plan_session(session, &view, &options.qrg, options.planner, rng)?)
    }

    /// Upgrades (or re-shapes) a live session: re-plans with the
    /// session's holdings added back and, if the candidate plan is
    /// *strictly better* — higher end-to-end rank, or the same rank with
    /// lower bottleneck Ψ — atomically swaps the reservations (release
    /// old, reserve new; the old reservations are restored if the swap
    /// fails midway). Returns the session handle now in force and
    /// whether a swap happened.
    ///
    /// This is the QoS-renegotiation capability the paper's framework
    /// family (EPIQ/Qualman) builds towards; the simulator's upgrade
    /// policy uses it to let *tradeoff* sessions recover QoS when load
    /// subsides.
    pub fn renegotiate(
        &self,
        current: EstablishedSession,
        session: &SessionInstance,
        options: &EstablishOptions,
        now: SimTime,
        rng: &mut impl Rng,
    ) -> Result<(EstablishedSession, bool), EstablishError> {
        let candidate = match self.replan(&current, session, options, now, rng) {
            Ok(plan) => plan,
            // A session that cannot even re-plan keeps what it has.
            Err(EstablishError::Plan(_)) => return Ok((current, false)),
            Err(e) => return Err(e),
        };
        let better = candidate.rank > current.plan.rank
            || (candidate.rank == current.plan.rank && candidate.psi < current.plan.psi - 1e-12);
        if !better {
            return Ok((current, false));
        }

        // Atomic swap: free the old holdings, then reserve the new plan
        // under the same session id; restore the old plan on failure.
        let traced = self.sink.enabled();
        let old_demand = current.plan.total_demand();
        self.release_planned(current.id, &old_demand, now);
        match self.dispatch(current.id, &candidate.total_demand(), now, traced, true) {
            Ok(()) => {
                self.counters.record_upgrade();
                if traced {
                    self.sink.emit(
                        &TraceEvent::new(now.value(), EventKind::SessionUpgraded)
                            .with_session(current.id.0)
                            .with_level(candidate.rank)
                            .with_psi(candidate.psi),
                    );
                }
                Ok((
                    EstablishedSession {
                        id: current.id,
                        plan: candidate,
                    },
                    true,
                ))
            }
            Err(e) => {
                // The restore never consults the injector: the capacity
                // was freed an instant ago on hosts the session already
                // held, so re-reserving it cannot fail.
                self.dispatch(current.id, &old_demand, now, traced, false)
                    .expect("restoring freshly freed reservations cannot fail");
                if matches!(e, EstablishError::Fault(_)) {
                    // A faulted upgrade aborts cleanly: the session keeps
                    // its (restored) plan.
                    return Ok((current, false));
                }
                Err(e)
            }
        }
    }

    /// Phase 3 helper: the two-phase reserve/commit of a demand vector
    /// across the owning proxies. Phase 3a (prepare) reserves every
    /// segment; phase 3b (commit) confirms each prepared segment. Any
    /// failure — broker rejection, down host, dropped message, injected
    /// commit failure — rolls back *all* prepared segments exactly once.
    /// `use_faults: false` bypasses the injector (the renegotiation
    /// restore path, which must not fail spuriously).
    pub(crate) fn dispatch(
        &self,
        id: SessionId,
        total: &ResourceVector,
        now: SimTime,
        traced: bool,
        use_faults: bool,
    ) -> Result<(), EstablishError> {
        let _span = self
            .timers
            .span_traced(Phase::Commit, self.sink.as_ref(), now.value());
        let mut segments: HashMap<usize, Vec<(ResourceId, f64)>> = HashMap::new();
        for (rid, amount) in total.iter() {
            let Some(&p) = self.owner.get(&rid) else {
                return Err(ReserveError::UnknownResource { resource: rid }.into());
            };
            segments.entry(p).or_default().push((rid, amount));
        }
        let mut order: Vec<usize> = segments.keys().copied().collect();
        order.sort_unstable();
        let faults_active = use_faults && self.faults.is_active();

        // Phase 3a (prepare): reserve each segment at its proxy.
        let mut prepared: Vec<usize> = Vec::with_capacity(order.len());
        for &p in &order {
            let host = self.proxies[p].host();
            if faults_active {
                if self.faults.is_down(host) {
                    self.rollback(id, &prepared, now, traced);
                    return Err(FaultError::HostDown {
                        host: host.to_string(),
                    }
                    .into());
                }
                if self.faults.drop_message() {
                    self.counters.record_fault_injected();
                    if traced {
                        self.sink.emit(
                            &TraceEvent::new(now.value(), EventKind::FaultInjected)
                                .with_session(id.0)
                                .with_name(host)
                                .with_detail("reserve request lost"),
                        );
                    }
                    self.rollback(id, &prepared, now, traced);
                    return Err(FaultError::MessageLost {
                        host: host.to_string(),
                    }
                    .into());
                }
            }
            let demand = ResourceVector::from_pairs(segments[&p].iter().copied())
                .expect("plan demands are valid");
            self.shards[p].dispatches.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = self.proxies[p].reserve_segment(id, &demand, now) {
                self.rollback(id, &prepared, now, traced);
                return Err(e.into());
            }
            prepared.push(p);
        }

        // Phase 3b (commit): confirm each prepared segment. A crash,
        // drop or injected failure here aborts the whole transaction —
        // the classic partial-commit case the rollback must cover.
        for &p in &order {
            let host = self.proxies[p].host();
            if faults_active {
                if self.faults.is_down(host) {
                    self.rollback(id, &prepared, now, traced);
                    return Err(FaultError::HostDown {
                        host: host.to_string(),
                    }
                    .into());
                }
                if self.faults.drop_message() {
                    self.counters.record_fault_injected();
                    if traced {
                        self.sink.emit(
                            &TraceEvent::new(now.value(), EventKind::FaultInjected)
                                .with_session(id.0)
                                .with_name(host)
                                .with_detail("commit request lost"),
                        );
                    }
                    self.rollback(id, &prepared, now, traced);
                    return Err(FaultError::MessageLost {
                        host: host.to_string(),
                    }
                    .into());
                }
                if self.faults.fail_commit(host) {
                    self.counters.record_fault_injected();
                    if traced {
                        self.sink.emit(
                            &TraceEvent::new(now.value(), EventKind::FaultInjected)
                                .with_session(id.0)
                                .with_name(host)
                                .with_detail("commit failure injected"),
                        );
                    }
                    self.rollback(id, &prepared, now, traced);
                    return Err(FaultError::CommitFailed {
                        host: host.to_string(),
                    }
                    .into());
                }
            }
            self.shards[p]
                .commit_roundtrips
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Releases every prepared segment of a failed two-phase dispatch,
    /// exactly once, and records the rollback (when any hop was held).
    fn rollback(&self, id: SessionId, prepared: &[usize], now: SimTime, traced: bool) {
        if prepared.is_empty() {
            return;
        }
        let _span = self
            .timers
            .span_traced(Phase::Rollback, self.sink.as_ref(), now.value());
        for &q in prepared {
            self.proxies[q].release_session(id, now);
        }
        self.counters.record_rollback();
        if traced {
            self.sink.emit(
                &TraceEvent::new(now.value(), EventKind::EstablishRollback)
                    .with_session(id.0)
                    .with_detail(format!("released {} prepared segment(s)", prepared.len())),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalBroker, LocalBrokerConfig};
    use qosr_model::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// A two-host setup running a two-component chain: component 0 uses
    /// host A's CPU, component 1 uses host B's CPU.
    struct Setup {
        coordinator: Coordinator,
        session: SessionInstance,
        cpu_a: ResourceId,
        cpu_b: ResourceId,
    }

    fn setup(capacity_a: f64, capacity_b: f64) -> Setup {
        let mut space = ResourceSpace::new();
        let cpu_a = space.register("A.cpu", ResourceKind::Compute);
        let cpu_b = space.register("B.cpu", ResourceKind::Compute);

        let mut reg_a = BrokerRegistry::new();
        reg_a.register(Arc::new(LocalBroker::new(
            cpu_a,
            capacity_a,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        )));
        let mut reg_b = BrokerRegistry::new();
        reg_b.register(Arc::new(LocalBroker::new(
            cpu_b,
            capacity_b,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        )));
        let coordinator = Coordinator::new(vec![
            Arc::new(QosProxy::new("A", reg_a)),
            Arc::new(QosProxy::new("B", reg_b)),
        ]);

        let schema = QosSchema::new("q", ["x"]);
        let v = |x: u32| QosVector::new(schema.clone(), [x]);
        let c0 = ComponentSpec::new(
            "c0",
            vec![v(9)],
            vec![v(1), v(2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [10.0])
                    .entry(0, 1, [40.0])
                    .build(),
            ),
        );
        let c1 = ComponentSpec::new(
            "c1",
            vec![v(1), v(2)],
            vec![v(1), v(2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(2, 2, 1)
                    .entry(0, 0, [10.0])
                    .entry(1, 1, [40.0])
                    .build(),
            ),
        );
        let service = Arc::new(ServiceSpec::chain("svc", vec![c0, c1], vec![1, 2]).unwrap());
        let session = SessionInstance::new(
            service,
            vec![
                ComponentBinding::new([cpu_a]),
                ComponentBinding::new([cpu_b]),
            ],
            1.0,
        )
        .unwrap();
        Setup {
            coordinator,
            session,
            cpu_a,
            cpu_b,
        }
    }

    #[test]
    fn establish_reserves_and_terminate_releases() {
        let s = setup(100.0, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let request = SessionRequest::new(s.session.clone());
        let outcome = s
            .coordinator
            .establish_request(&request, SimTime::new(1.0), &mut rng);
        assert!(matches!(outcome, EstablishOutcome::Committed(_)));
        let est = outcome.into_session().unwrap();
        assert_eq!(est.plan.sink_level, 1); // top level fits
        let broker_a = s
            .coordinator
            .owner_of(s.cpu_a)
            .unwrap()
            .brokers()
            .get(s.cpu_a)
            .unwrap()
            .clone();
        let broker_b = s
            .coordinator
            .owner_of(s.cpu_b)
            .unwrap()
            .brokers()
            .get(s.cpu_b)
            .unwrap()
            .clone();
        assert_eq!(broker_a.available(), 60.0);
        assert_eq!(broker_b.available(), 60.0);

        let stats = s.coordinator.stats();
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.established, 1);
        assert_eq!(stats.collect_roundtrips, 2);
        assert_eq!(stats.dispatches, 2);

        let released = s.coordinator.terminate(&est, SimTime::new(5.0));
        assert_eq!(released, 80.0);
        assert_eq!(broker_a.available(), 100.0);
    }

    #[test]
    fn establish_degrades_qos_under_scarcity() {
        let s = setup(100.0, 20.0); // host B can't host level 2 (needs 40)
        let mut rng = StdRng::seed_from_u64(1);
        let request = SessionRequest::new(s.session.clone());
        let est = s
            .coordinator
            .establish_request(&request, SimTime::new(1.0), &mut rng)
            .into_result()
            .unwrap();
        assert_eq!(est.plan.sink_level, 0);
    }

    #[test]
    fn establish_fails_cleanly_when_nothing_fits() {
        let s = setup(5.0, 5.0);
        let mut rng = StdRng::seed_from_u64(1);
        let request = SessionRequest::new(s.session.clone());
        let outcome = s
            .coordinator
            .establish_request(&request, SimTime::new(1.0), &mut rng);
        let EstablishOutcome::Rejected {
            error,
            nearest_miss,
        } = outcome
        else {
            panic!("nothing fits, the request must be rejected");
        };
        assert!(matches!(error, EstablishError::Plan(_)));
        // The rejection names the blocking resource: level-1 demand (10)
        // overshoots the 5 available.
        let miss = nearest_miss.expect("a blocking resource is identifiable");
        assert!((miss.ratio - 2.0).abs() < 1e-9, "ratio {}", miss.ratio);
        let stats = s.coordinator.stats();
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.established, 0);
    }

    #[test]
    fn qos_floor_rejects_below_min_without_reserving() {
        let s = setup(100.0, 20.0); // best achievable rank is 1
        let mut rng = StdRng::seed_from_u64(1);
        let request = SessionRequest::new(s.session.clone()).qos_min(2);
        let outcome = s
            .coordinator
            .establish_request(&request, SimTime::new(1.0), &mut rng);
        assert!(matches!(
            outcome.error(),
            Some(EstablishError::QosBelowMin {
                achieved: 1,
                min: 2
            })
        ));
        // Nothing was reserved.
        let broker_a = s.coordinator.proxies()[0].brokers().get(s.cpu_a).unwrap();
        assert_eq!(broker_a.available(), 100.0);
        // And the floor is satisfiable when capacity allows it.
        let s2 = setup(100.0, 100.0);
        let request = SessionRequest::new(s2.session.clone()).qos_min(2);
        let est = s2
            .coordinator
            .establish_request(&request, SimTime::new(1.0), &mut rng)
            .into_result()
            .unwrap();
        assert_eq!(est.plan.rank, 2);
    }

    #[test]
    fn expired_deadline_rejects_before_planning() {
        let s = setup(100.0, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let request = SessionRequest::new(s.session.clone()).deadline(SimTime::new(5.0));
        let outcome = s
            .coordinator
            .establish_request(&request, SimTime::new(6.0), &mut rng);
        assert!(matches!(
            outcome.error(),
            Some(EstablishError::DeadlineExpired { .. })
        ));
        // At or before the deadline the request admits normally.
        let outcome = s
            .coordinator
            .establish_request(&request, SimTime::new(5.0), &mut rng);
        assert!(outcome.is_admitted());
    }

    #[test]
    fn phase_timers_record_collect_plan_and_commit() {
        let s = setup(100.0, 100.0);
        let timers = Arc::clone(s.coordinator.phase_timers());
        timers.set_enabled(true);
        let mut rng = StdRng::seed_from_u64(9);
        let est = s
            .coordinator
            .establish_request(
                &SessionRequest::new(s.session.clone()),
                SimTime::new(1.0),
                &mut rng,
            )
            .into_result()
            .unwrap();
        assert_eq!(timers.histogram(Phase::Collect).count(), 1);
        assert_eq!(timers.histogram(Phase::Plan).count(), 1);
        assert_eq!(timers.histogram(Phase::Commit).count(), 1);
        assert_eq!(timers.histogram(Phase::Rollback).count(), 0);
        s.coordinator.terminate(&est, SimTime::new(2.0));
    }

    #[test]
    fn disabled_phase_timers_record_nothing() {
        let s = setup(100.0, 100.0);
        let mut rng = StdRng::seed_from_u64(9);
        s.coordinator
            .establish_request(
                &SessionRequest::new(s.session.clone()),
                SimTime::new(1.0),
                &mut rng,
            )
            .into_result()
            .unwrap();
        for phase in Phase::ALL {
            assert_eq!(s.coordinator.phase_timers().histogram(phase).count(), 0);
        }
    }

    #[test]
    fn host_stats_shard_traffic_by_proxy() {
        let s = setup(100.0, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let request = SessionRequest::new(s.session.clone());
        s.coordinator
            .establish_request(&request, SimTime::new(1.0), &mut rng)
            .into_result()
            .unwrap();
        let shards = s.coordinator.host_stats();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].host, "A");
        assert_eq!(shards[1].host, "B");
        // One collect + one reserve + one commit per host: the plan
        // places one component on each.
        for shard in &shards {
            assert_eq!(shard.collect_roundtrips, 1);
            assert_eq!(shard.dispatches, 1);
            assert_eq!(shard.commit_roundtrips, 1);
        }
        let totals = s.coordinator.stats();
        assert_eq!(totals.collect_roundtrips, 2);
        assert_eq!(totals.dispatches, 2);
        assert_eq!(totals.commit_roundtrips, 2);
    }

    #[test]
    fn stale_observation_can_fail_dispatch_with_rollback() {
        let s = setup(100.0, 100.0);
        let mut rng = StdRng::seed_from_u64(42);
        // Drain host B *after* t=10 so a stale observation (age > 0) can
        // still see the old availability.
        let broker_b = s.coordinator.proxies()[1]
            .brokers()
            .get(s.cpu_b)
            .unwrap()
            .clone();
        broker_b
            .reserve(SessionId(999), 90.0, SimTime::new(10.0))
            .unwrap();

        let opts = EstablishOptions {
            observation: ObservationPolicy::Stale { max_age: 20.0 },
            ..EstablishOptions::default()
        };
        // Try repeatedly: some establishments will observe the pre-drain
        // availability of B (100), plan level 2 (needs 40 > 10 actual)
        // and then fail at dispatch.
        let broker_a = s.coordinator.proxies()[0]
            .brokers()
            .get(s.cpu_a)
            .unwrap()
            .clone();
        let request = SessionRequest::new(s.session.clone()).options(opts);
        let mut saw_dispatch_failure = false;
        for i in 0..200 {
            let now = SimTime::new(10.5 + i as f64 * 0.01);
            match s
                .coordinator
                .establish_request(&request, now, &mut rng)
                .into_result()
            {
                Ok(est) => {
                    s.coordinator.terminate(&est, now);
                }
                Err(EstablishError::Reserve(e)) => {
                    saw_dispatch_failure = true;
                    assert_eq!(e.resource(), s.cpu_b);
                    // Rollback: host A must be fully available again.
                    assert_eq!(broker_a.available(), 100.0);
                    break;
                }
                Err(EstablishError::Plan(_)) => {}
                Err(e) => unreachable!("unexpected establishment error: {e}"),
            }
        }
        assert!(
            saw_dispatch_failure,
            "stale observations never caused a dispatch failure"
        );
    }
}

#[cfg(test)]
mod renegotiation_tests {
    use super::*;
    use crate::{BrokerRegistry, LocalBroker, LocalBrokerConfig};
    use qosr_model::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Single host, single CPU, a one-component service with levels 1/2.
    struct World {
        coordinator: Coordinator,
        session: SessionInstance,
        cpu: ResourceId,
    }

    fn world(capacity: f64) -> World {
        let mut space = ResourceSpace::new();
        let cpu = space.register("cpu", ResourceKind::Compute);
        let mut reg = BrokerRegistry::new();
        reg.register(Arc::new(LocalBroker::new(
            cpu,
            capacity,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        )));
        let coordinator = Coordinator::new(vec![Arc::new(QosProxy::new("H", reg))]);

        let schema = QosSchema::new("q", ["x"]);
        let v = |x: u32| QosVector::new(schema.clone(), [x]);
        let comp = ComponentSpec::new(
            "c",
            vec![v(0)],
            vec![v(1), v(2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [20.0])
                    .entry(0, 1, [60.0])
                    .build(),
            ),
        );
        let service = Arc::new(ServiceSpec::chain("svc", vec![comp], vec![1, 2]).unwrap());
        let session =
            SessionInstance::new(service, vec![ComponentBinding::new([cpu])], 1.0).unwrap();
        World {
            coordinator,
            session,
            cpu,
        }
    }

    #[test]
    fn upgrade_after_contention_clears() {
        let w = world(100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let opts = EstablishOptions::default();
        let request = SessionRequest::new(w.session.clone());
        // A background session grabs 60 units; ours only fits level 1.
        let blocker = w
            .coordinator
            .establish_request(&request, SimTime::new(1.0), &mut rng)
            .into_result()
            .unwrap();
        assert_eq!(blocker.plan.rank, 2);
        let ours = w
            .coordinator
            .establish_request(&request, SimTime::new(2.0), &mut rng)
            .into_result()
            .unwrap();
        assert_eq!(ours.plan.rank, 1);

        // While blocked: replan sees no improvement (20 held + 20 free).
        let candidate = w
            .coordinator
            .replan(&ours, &w.session, &opts, SimTime::new(3.0), &mut rng)
            .unwrap();
        assert_eq!(candidate.rank, 1);
        let (ours, swapped) = w
            .coordinator
            .renegotiate(ours, &w.session, &opts, SimTime::new(3.5), &mut rng)
            .unwrap();
        assert!(!swapped);
        assert_eq!(ours.plan.rank, 1);

        // Blocker leaves; renegotiation upgrades us to level 2.
        w.coordinator.terminate(&blocker, SimTime::new(4.0));
        let (ours, swapped) = w
            .coordinator
            .renegotiate(ours, &w.session, &opts, SimTime::new(5.0), &mut rng)
            .unwrap();
        assert!(swapped);
        assert_eq!(ours.plan.rank, 2);
        // Exactly the new demand is held.
        let broker = w
            .coordinator
            .owner_of(w.cpu)
            .unwrap()
            .brokers()
            .get(w.cpu)
            .unwrap();
        assert_eq!(broker.reserved_for(ours.id), 60.0);
        assert_eq!(broker.available(), 40.0);
        w.coordinator.terminate(&ours, SimTime::new(6.0));
        assert_eq!(broker.available(), 100.0);
    }

    #[test]
    fn replan_counts_own_holdings_as_available() {
        let w = world(60.0); // only ever fits one level-2 OR three level-1s
        let mut rng = StdRng::seed_from_u64(2);
        let opts = EstablishOptions::default();
        let est = w
            .coordinator
            .establish_request(
                &SessionRequest::new(w.session.clone()),
                SimTime::new(1.0),
                &mut rng,
            )
            .into_result()
            .unwrap();
        assert_eq!(est.plan.rank, 2); // takes all 60
                                      // Raw availability is 0, yet replanning the same session still
                                      // finds level 2 because its own 60 are added back.
        let plan = w
            .coordinator
            .replan(&est, &w.session, &opts, SimTime::new(2.0), &mut rng)
            .unwrap();
        assert_eq!(plan.rank, 2);
        // And renegotiate keeps (not degrades) the session.
        let (est, swapped) = w
            .coordinator
            .renegotiate(est, &w.session, &opts, SimTime::new(3.0), &mut rng)
            .unwrap();
        assert!(!swapped);
        assert_eq!(est.plan.rank, 2);
    }

    #[test]
    fn renegotiate_keeps_session_when_replan_infeasible() {
        let w = world(100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let opts = EstablishOptions::default();
        let est = w
            .coordinator
            .establish_request(
                &SessionRequest::new(w.session.clone()),
                SimTime::new(1.0),
                &mut rng,
            )
            .into_result()
            .unwrap();
        // An outside reservation grabs everything that's left directly at
        // the broker (not via the coordinator).
        let broker = w
            .coordinator
            .owner_of(w.cpu)
            .unwrap()
            .brokers()
            .get(w.cpu)
            .unwrap()
            .clone();
        broker
            .reserve(SessionId(777), broker.available(), SimTime::new(2.0))
            .unwrap();
        // The session keeps its plan: its own holdings still support it.
        let (est, swapped) = w
            .coordinator
            .renegotiate(est, &w.session, &opts, SimTime::new(3.0), &mut rng)
            .unwrap();
        assert!(!swapped);
        assert_eq!(broker.reserved_for(est.id), 60.0);
    }
}
