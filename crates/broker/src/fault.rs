//! Deterministic fault injection for the establishment protocol.
//!
//! A [`FaultInjector`] models the failure modes a multi-hop, multi-host
//! reservation protocol meets in production: whole hosts crashing (and
//! later recovering), protocol messages lost on the wire, and the
//! commit phase of the two-phase dispatch failing at a broker after its
//! reserve phase succeeded. The injector is *deterministic*: it owns
//! its own seeded RNG, entirely separate from the scenario's workload
//! stream, so the same seed replays the same faults and a disabled
//! injector never perturbs a run (the no-fault path costs one relaxed
//! atomic load per check).
//!
//! The [`Coordinator`](crate::Coordinator) consults its injector at
//! every message boundary of the protocol — collect, prepare (reserve)
//! and commit — and turns fired faults into
//! [`FaultError`](crate::FaultError)s, which the bounded
//! [`RetryPolicy`] then absorbs or surfaces.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

/// Bounded-retry parameters for
/// [`Coordinator::establish_request`](crate::Coordinator::establish_request).
/// The default policy takes **no**
/// retries, so establishment behaves exactly as the fault-free protocol
/// unless a retry budget is configured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// How many times a failed establishment attempt is retried before
    /// the error is surfaced. `0` (the default) disables retries.
    pub max_retries: u32,
    /// Base of the exponential backoff: retry `n` (1-based) waits
    /// `backoff_base * 2^(n-1)` time units before re-attempting. The
    /// delay is protocol-message-timescale bookkeeping (recorded in the
    /// trace), far below the simulator's session timescale; it does not
    /// advance simulated time.
    pub backoff_base: f64,
    /// When replanning after a failed attempt, fall back to the
    /// α-tradeoff policy if the caller asked for the basic planner —
    /// resources whose availability is trending down (α < 1, typical
    /// right after a crash re-shuffles load) are then stepped around,
    /// degrading QoS gracefully instead of failing hard.
    pub tradeoff_fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base: 0.25,
            tradeoff_fallback: true,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry `attempt` (1-based).
    pub fn backoff_delay(&self, attempt: u32) -> f64 {
        self.backoff_base * f64::from(2u32.saturating_pow(attempt.saturating_sub(1)))
    }
}

#[derive(Debug)]
struct FaultState {
    /// Hosts currently crashed. A down host answers no collect, prepare
    /// or commit message.
    down: HashSet<String>,
    /// Probability that any one protocol message is lost.
    drop_probability: f64,
    /// Probability that a commit message is acknowledged as failed even
    /// though the reserve phase succeeded.
    commit_failure_probability: f64,
    /// Scripted commit failures: host → remaining failure count. Used by
    /// tests to force a failure at an exact hop; decremented per fire.
    scripted_commit_failures: HashMap<String, u32>,
    /// The injector's own RNG stream, never shared with the workload.
    rng: StdRng,
}

/// Injects host crashes, message drops and commit failures into the
/// establishment protocol. Interior-mutable and cheap to consult when
/// disabled (one relaxed atomic load when no faults are armed).
#[derive(Debug)]
pub struct FaultInjector {
    /// Fast path: when `false`, every check short-circuits without
    /// taking the state lock.
    active: AtomicBool,
    state: Mutex<FaultState>,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::disabled()
    }
}

impl FaultInjector {
    /// An injector that never fires. This is what a
    /// [`Coordinator`](crate::Coordinator) starts with.
    pub fn disabled() -> Self {
        FaultInjector {
            active: AtomicBool::new(false),
            state: Mutex::new(FaultState {
                down: HashSet::new(),
                drop_probability: 0.0,
                commit_failure_probability: 0.0,
                scripted_commit_failures: HashMap::new(),
                rng: StdRng::seed_from_u64(0),
            }),
        }
    }

    /// (Re)configures the probabilistic faults and reseeds the
    /// injector's RNG, making subsequent draws a deterministic function
    /// of `seed`. Scripted failures and down hosts are cleared.
    ///
    /// # Panics
    /// Panics if either probability is outside `[0, 1]`.
    pub fn configure(&self, seed: u64, drop_probability: f64, commit_failure_probability: f64) {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability {drop_probability} outside [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&commit_failure_probability),
            "commit failure probability {commit_failure_probability} outside [0, 1]"
        );
        let mut state = self.state.lock();
        state.down.clear();
        state.scripted_commit_failures.clear();
        state.drop_probability = drop_probability;
        state.commit_failure_probability = commit_failure_probability;
        state.rng = StdRng::seed_from_u64(seed);
        self.refresh_active(&state);
    }

    fn refresh_active(&self, state: &FaultState) {
        let active = !state.down.is_empty()
            || state.drop_probability > 0.0
            || state.commit_failure_probability > 0.0
            || !state.scripted_commit_failures.is_empty();
        self.active.store(active, Ordering::Relaxed);
    }

    /// Whether any fault source is armed. The no-fault fast path.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Marks `host` crashed: it stops answering protocol messages.
    pub fn crash(&self, host: &str) {
        let mut state = self.state.lock();
        state.down.insert(host.to_string());
        self.refresh_active(&state);
    }

    /// Marks `host` recovered: it answers messages again and its brokers
    /// re-admit their capacity.
    pub fn recover(&self, host: &str) {
        let mut state = self.state.lock();
        state.down.remove(host);
        self.refresh_active(&state);
    }

    /// Whether `host` is currently down.
    pub fn is_down(&self, host: &str) -> bool {
        self.is_active() && self.state.lock().down.contains(host)
    }

    /// The currently down hosts, sorted.
    pub fn down_hosts(&self) -> Vec<String> {
        let mut hosts: Vec<String> = self.state.lock().down.iter().cloned().collect();
        hosts.sort_unstable();
        hosts
    }

    /// Scripts the next `count` commit messages to `host` to fail
    /// deterministically (no RNG draw). Used by rollback tests to force
    /// a failure at an exact hop.
    pub fn script_commit_failures(&self, host: &str, count: u32) {
        let mut state = self.state.lock();
        if count == 0 {
            state.scripted_commit_failures.remove(host);
        } else {
            state
                .scripted_commit_failures
                .insert(host.to_string(), count);
        }
        self.refresh_active(&state);
    }

    /// Draws whether one protocol message is lost. Consumes injector
    /// randomness only when a drop probability is configured.
    pub fn drop_message(&self) -> bool {
        if !self.is_active() {
            return false;
        }
        let mut state = self.state.lock();
        if state.drop_probability <= 0.0 {
            return false;
        }
        let p = state.drop_probability;
        state.rng.random::<f64>() < p
    }

    /// Draws whether the commit message to `host` fails. Scripted
    /// failures fire first (and deterministically); otherwise consumes
    /// injector randomness only when a commit-failure probability is
    /// configured.
    pub fn fail_commit(&self, host: &str) -> bool {
        if !self.is_active() {
            return false;
        }
        let mut state = self.state.lock();
        if let Some(remaining) = state.scripted_commit_failures.get_mut(host) {
            *remaining -= 1;
            if *remaining == 0 {
                state.scripted_commit_failures.remove(host);
            }
            self.refresh_active(&state);
            return true;
        }
        if state.commit_failure_probability <= 0.0 {
            return false;
        }
        let p = state.commit_failure_probability;
        state.rng.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_active());
        assert!(!inj.is_down("H1"));
        assert!(!inj.drop_message());
        assert!(!inj.fail_commit("H1"));
    }

    #[test]
    fn crash_and_recover_toggle_down_state() {
        let inj = FaultInjector::disabled();
        inj.crash("H2");
        assert!(inj.is_active());
        assert!(inj.is_down("H2"));
        assert!(!inj.is_down("H1"));
        assert_eq!(inj.down_hosts(), vec!["H2".to_string()]);
        inj.recover("H2");
        assert!(!inj.is_active());
        assert!(!inj.is_down("H2"));
    }

    #[test]
    fn scripted_commit_failures_fire_exactly_count_times() {
        let inj = FaultInjector::disabled();
        inj.script_commit_failures("H1", 2);
        assert!(inj.fail_commit("H1"));
        assert!(inj.fail_commit("H1"));
        assert!(!inj.fail_commit("H1"));
        assert!(!inj.is_active());
    }

    #[test]
    fn configured_draws_are_deterministic_per_seed() {
        let a = FaultInjector::disabled();
        let b = FaultInjector::disabled();
        a.configure(7, 0.5, 0.5);
        b.configure(7, 0.5, 0.5);
        let seq_a: Vec<bool> = (0..32)
            .map(|i| {
                if i % 2 == 0 {
                    a.drop_message()
                } else {
                    a.fail_commit("H1")
                }
            })
            .collect();
        let seq_b: Vec<bool> = (0..32)
            .map(|i| {
                if i % 2 == 0 {
                    b.drop_message()
                } else {
                    b.fail_commit("H1")
                }
            })
            .collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&x| x));
        assert!(seq_a.iter().any(|&x| !x));
    }

    #[test]
    fn zero_probabilities_never_consume_randomness() {
        let inj = FaultInjector::disabled();
        inj.configure(3, 0.0, 0.5);
        // drop_message with p=0 must not advance the stream: the commit
        // draws below must match a fresh injector that never called it.
        for _ in 0..4 {
            assert!(!inj.drop_message());
        }
        let seq: Vec<bool> = (0..16).map(|_| inj.fail_commit("H1")).collect();
        let fresh = FaultInjector::disabled();
        fresh.configure(3, 0.0, 0.5);
        let fresh_seq: Vec<bool> = (0..16).map(|_| fresh.fail_commit("H1")).collect();
        assert_eq!(seq, fresh_seq);
        assert!(seq.iter().any(|&x| x) && seq.iter().any(|&x| !x));
    }

    #[test]
    fn backoff_grows_exponentially() {
        let policy = RetryPolicy {
            max_retries: 3,
            backoff_base: 0.5,
            tradeoff_fallback: true,
        };
        assert_eq!(policy.backoff_delay(1), 0.5);
        assert_eq!(policy.backoff_delay(2), 1.0);
        assert_eq!(policy.backoff_delay(3), 2.0);
    }
}
