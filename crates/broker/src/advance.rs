//! Advance reservations — the paper's stated next step (§6: *"One of
//! our next steps is to extend our multi-resource reservation framework
//! to support advance reservations"*, following Foster et al.'s
//! GARA architecture).
//!
//! An advance reservation books `amount` units of a resource over a
//! future time window `[from, to)`. The broker keeps a
//! **piecewise-constant reservation timeline**; a window reservation is
//! admitted iff the *minimum* availability over the window covers the
//! amount. Planning for a future window then reuses the ordinary QRG
//! machinery: [`AdvanceRegistry::snapshot_window`] produces an
//! [`AvailabilityView`] of per-resource window minima, and any planner
//! from `qosr-core` runs on it unchanged.
//!
//! Two timeline representations coexist:
//!
//! * [`Timeline`] — the original linear delta map. Window queries scan
//!   every breakpoint; kept as the **differential-testing oracle** (see
//!   `tests/advance_properties.rs`) and for small registries.
//! * [`TimelineIndex`] — a balanced search tree (treap) over the same
//!   delta profile, augmented with subtree delta sums and maximum
//!   prefix sums, making point levels, window maxima, and range
//!   adds all O(log n) in the number of breakpoints. This is what
//!   [`TimelineBroker`] runs on; `benches/advance.rs` pins the speedup
//!   at a million bookings.
//!
//! Booking goes through the request/outcome API in
//! [`malleable`](crate::malleable): build an
//! [`AdvanceRequest`](crate::AdvanceRequest) (rigid window or malleable
//! bulk transfer) and hand it to [`AdvanceRegistry::book`], which
//! returns a structured [`AdvanceOutcome`](crate::AdvanceOutcome).

use crate::malleable::{
    book_malleable, AdvanceOutcome, AdvanceProfile, AdvanceRequest, AdvanceShape, MalleableSpec,
};
use crate::request::SpanCollector;
use crate::{ReserveError, SessionId, SimTime};
use parking_lot::Mutex;
use qosr_core::AvailabilityView;
use qosr_model::{ResourceId, ResourceVector};
use qosr_obs::{Counters, EventKind, NullSink, SpanKind, TraceEvent, TraceSink, Tracer};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Deltas at or below this magnitude are dropped: they separate two
/// segments at (numerically) the same level, so pruning them *is* the
/// merge of adjacent equal-valued segments. [`Timeline`] and
/// [`TimelineIndex`] share the threshold so their breakpoint sets stay
/// in lockstep under identical operation sequences.
const DELTA_EPS: f64 = 1e-12;

/// A piecewise-constant "reserved amount" profile over time.
///
/// Stored as a delta map: at each breakpoint time the reserved total
/// changes by the stored delta. The reserved amount before the first
/// breakpoint is zero (plus whatever [`Timeline::compact`] folded into
/// the base). Queries scan breakpoints linearly — O(n) per window —
/// which is why [`TimelineBroker`] runs on the logarithmic
/// [`TimelineIndex`] instead and keeps this type as its
/// differential-testing oracle.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Reserved amount before the first remaining breakpoint.
    base: f64,
    /// `time → delta` (summing deltas up to and including `t` plus
    /// `base` gives the reserved amount at `t`).
    deltas: BTreeMap<SimTime, f64>,
}

impl Timeline {
    /// An empty timeline (nothing reserved, ever).
    pub fn new() -> Self {
        Self::default()
    }

    /// The maximum reserved amount over `[from, to)`.
    pub fn max_reserved(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from <= to, "window must be ordered");
        // Reserved level just before `from`:
        let mut level = self.base;
        for (_, d) in self.deltas.range(..=from) {
            level += d;
        }
        let mut max = level;
        if from < to {
            for (_, d) in self.deltas.range((
                std::ops::Bound::Excluded(from),
                std::ops::Bound::Excluded(to),
            )) {
                level += d;
                max = max.max(level);
            }
        }
        max
    }

    /// Adds `amount` over `[from, to)`. Deltas that cancel to (near)
    /// zero are pruned immediately, so abutting equal-rate windows do
    /// not accumulate breakpoints between them.
    pub fn add(&mut self, from: SimTime, to: SimTime, amount: f64) {
        assert!(from < to, "window must be non-empty");
        for (key, signed) in [(from, amount), (to, -amount)] {
            let entry = self.deltas.entry(key).or_insert(0.0);
            *entry += signed;
            if entry.abs() <= DELTA_EPS {
                self.deltas.remove(&key);
            }
        }
    }

    /// Removes a previously added window (exact inverse of
    /// [`Timeline::add`]).
    pub fn remove(&mut self, from: SimTime, to: SimTime, amount: f64) {
        self.add(from, to, -amount);
    }

    /// Folds all breakpoints strictly before `now` into the base level
    /// and merges adjacent equal-valued segments (near-zero deltas left
    /// over from float cancellation), bounding memory for long-running
    /// brokers.
    pub fn compact(&mut self, now: SimTime) {
        let keep = self.deltas.split_off(&now);
        // `split_off(&now)` keeps keys >= now in `keep`; fold the rest.
        for (_, d) in std::mem::take(&mut self.deltas) {
            self.base += d;
        }
        self.deltas = keep;
        // A (near-)zero delta separates two segments at the same level:
        // dropping it merges them.
        self.deltas.retain(|_, d| d.abs() > DELTA_EPS);
    }

    /// Number of breakpoints currently stored.
    pub fn breakpoints(&self) -> usize {
        self.deltas.len()
    }
}

/// One node of the [`TimelineIndex`] treap: a breakpoint (`key`,
/// `delta`) plus cached subtree aggregates.
#[derive(Debug, Clone)]
struct IndexNode {
    key: SimTime,
    delta: f64,
    /// Heap priority — a deterministic hash of the key bits, so tree
    /// shape (and thus float association) is a pure function of the
    /// breakpoint set, independent of insertion order.
    priority: u64,
    /// Sum of deltas in this subtree.
    sum: f64,
    /// Maximum over the subtree's in-order delta prefix sums
    /// (`NEG_INFINITY` never appears on a live node).
    maxp: f64,
    /// Node count of this subtree.
    cnt: usize,
    left: Option<Box<IndexNode>>,
    right: Option<Box<IndexNode>>,
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `(sum, max-prefix-sum)` of a possibly-empty subtree. The empty
/// aggregate is `(0, -∞)`: it contributes nothing to sums and never
/// wins a max.
fn node_agg(node: &Option<Box<IndexNode>>) -> (f64, f64) {
    match node {
        None => (0.0, f64::NEG_INFINITY),
        Some(n) => (n.sum, n.maxp),
    }
}

fn node_cnt(node: &Option<Box<IndexNode>>) -> usize {
    node.as_ref().map_or(0, |n| n.cnt)
}

impl IndexNode {
    fn new(key: SimTime, delta: f64) -> Self {
        IndexNode {
            key,
            delta,
            priority: splitmix64(key.value().to_bits()),
            sum: delta,
            maxp: delta,
            cnt: 1,
            left: None,
            right: None,
        }
    }

    /// Recomputes this node's aggregates from its children.
    fn pull(&mut self) {
        let (ls, lm) = node_agg(&self.left);
        let (rs, rm) = node_agg(&self.right);
        let here = ls + self.delta;
        self.sum = here + rs;
        self.maxp = lm.max(here).max(here + rm);
        self.cnt = 1 + node_cnt(&self.left) + node_cnt(&self.right);
    }
}

/// An O(log n) reservation timeline: the same piecewise-constant delta
/// profile as [`Timeline`], held in a treap keyed by breakpoint time
/// and augmented with subtree delta sums and maximum prefix sums.
///
/// * [`TimelineIndex::add`]/[`TimelineIndex::remove`] — two point
///   upserts, O(log n) each.
/// * [`TimelineIndex::max_reserved`] — a prefix-sum query at the window
///   start plus one max-prefix aggregate over the open interval,
///   O(log n) total (the linear [`Timeline`] walks every breakpoint).
/// * [`TimelineIndex::compact`] — folds expired breakpoints into the
///   base using cached subtree sums.
///
/// Tree shape is deterministic in the breakpoint *set* (priorities are
/// hashed from key bits), so query results do not depend on the order
/// in which bookings arrived.
#[derive(Debug, Clone, Default)]
pub struct TimelineIndex {
    /// Reserved amount before the first remaining breakpoint.
    base: f64,
    root: Option<Box<IndexNode>>,
}

impl TimelineIndex {
    /// An empty index (nothing reserved, ever).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` over `[from, to)` — two O(log n) point-delta
    /// upserts. Deltas cancelling to (near) zero are pruned, mirroring
    /// [`Timeline::add`].
    pub fn add(&mut self, from: SimTime, to: SimTime, amount: f64) {
        assert!(from < to, "window must be non-empty");
        Self::upsert(&mut self.root, from, amount);
        Self::upsert(&mut self.root, to, -amount);
    }

    /// Removes a previously added window (exact inverse of
    /// [`TimelineIndex::add`]).
    pub fn remove(&mut self, from: SimTime, to: SimTime, amount: f64) {
        self.add(from, to, -amount);
    }

    /// The reserved level at time `at` (base plus all deltas with key
    /// `<= at`), in O(log n).
    pub fn level_at(&self, at: SimTime) -> f64 {
        self.base + Self::sum_upto(&self.root, at)
    }

    /// The maximum reserved amount over `[from, to)`, in O(log n) —
    /// same window semantics as [`Timeline::max_reserved`].
    pub fn max_reserved(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from <= to, "window must be ordered");
        let level = self.level_at(from);
        if from < to {
            let (_, maxp) = Self::agg_open(&self.root, Some(from), Some(to));
            // Empty interval → maxp = -∞ → `level` wins.
            level.max(level + maxp)
        } else {
            level
        }
    }

    /// Folds all breakpoints strictly before `now` into the base level.
    /// Each fully-expired subtree is folded in O(1) via its cached sum.
    pub fn compact(&mut self, now: SimTime) {
        let mut folded = 0.0;
        self.root = Self::compact_rec(self.root.take(), now, &mut folded);
        self.base += folded;
    }

    /// Number of breakpoints currently stored.
    pub fn breakpoints(&self) -> usize {
        node_cnt(&self.root)
    }

    /// Breakpoint times strictly after `from`, ascending — the instants
    /// where availability changes, used by the malleable planner to
    /// enumerate candidate start times.
    pub fn breakpoints_after(&self, from: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        Self::collect_after(&self.root, from, &mut out);
        out
    }

    fn upsert(slot: &mut Option<Box<IndexNode>>, key: SimTime, amount: f64) {
        let Some(mut node) = slot.take() else {
            if amount.abs() > DELTA_EPS {
                *slot = Some(Box::new(IndexNode::new(key, amount)));
            }
            return;
        };
        match key.cmp(&node.key) {
            Ordering::Equal => {
                node.delta += amount;
                if node.delta.abs() <= DELTA_EPS {
                    *slot = Self::merge(node.left.take(), node.right.take());
                } else {
                    node.pull();
                    *slot = Some(node);
                }
            }
            Ordering::Less => {
                Self::upsert(&mut node.left, key, amount);
                if node
                    .left
                    .as_ref()
                    .is_some_and(|l| l.priority > node.priority)
                {
                    let mut l = node.left.take().expect("left checked above");
                    node.left = l.right.take();
                    node.pull();
                    l.right = Some(node);
                    l.pull();
                    *slot = Some(l);
                } else {
                    node.pull();
                    *slot = Some(node);
                }
            }
            Ordering::Greater => {
                Self::upsert(&mut node.right, key, amount);
                if node
                    .right
                    .as_ref()
                    .is_some_and(|r| r.priority > node.priority)
                {
                    let mut r = node.right.take().expect("right checked above");
                    node.right = r.left.take();
                    node.pull();
                    r.left = Some(node);
                    r.pull();
                    *slot = Some(r);
                } else {
                    node.pull();
                    *slot = Some(node);
                }
            }
        }
    }

    fn merge(a: Option<Box<IndexNode>>, b: Option<Box<IndexNode>>) -> Option<Box<IndexNode>> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(mut a), Some(b)) if a.priority > b.priority => {
                a.right = Self::merge(a.right.take(), Some(b));
                a.pull();
                Some(a)
            }
            (Some(a), Some(mut b)) => {
                b.left = Self::merge(Some(a), b.left.take());
                b.pull();
                Some(b)
            }
        }
    }

    /// Sum of deltas with key `<= key`.
    fn sum_upto(node: &Option<Box<IndexNode>>, key: SimTime) -> f64 {
        match node {
            None => 0.0,
            Some(n) if n.key <= key => {
                node_agg(&n.left).0 + n.delta + Self::sum_upto(&n.right, key)
            }
            Some(n) => Self::sum_upto(&n.left, key),
        }
    }

    /// `(sum, max-prefix-sum)` over keys strictly inside `(lo, hi)`
    /// (`None` = unbounded). Once a side is unbounded the cached
    /// aggregates answer whole subtrees, keeping the walk O(log n).
    fn agg_open(
        node: &Option<Box<IndexNode>>,
        lo: Option<SimTime>,
        hi: Option<SimTime>,
    ) -> (f64, f64) {
        let Some(n) = node else {
            return (0.0, f64::NEG_INFINITY);
        };
        if lo.is_none() && hi.is_none() {
            return (n.sum, n.maxp);
        }
        if lo.is_some_and(|l| n.key <= l) {
            return Self::agg_open(&n.right, lo, hi);
        }
        if hi.is_some_and(|h| n.key >= h) {
            return Self::agg_open(&n.left, lo, hi);
        }
        let (ls, lm) = Self::agg_open(&n.left, lo, None);
        let (rs, rm) = Self::agg_open(&n.right, None, hi);
        let here = ls + n.delta;
        (here + rs, lm.max(here).max(here + rm))
    }

    fn compact_rec(
        node: Option<Box<IndexNode>>,
        now: SimTime,
        folded: &mut f64,
    ) -> Option<Box<IndexNode>> {
        let mut n = node?;
        if n.key < now {
            // This node and its whole left subtree expire: fold their
            // delta sum in one cached-aggregate read.
            *folded += node_agg(&n.left).0 + n.delta;
            Self::compact_rec(n.right.take(), now, folded)
        } else {
            n.left = Self::compact_rec(n.left.take(), now, folded);
            n.pull();
            Some(n)
        }
    }

    fn collect_after(node: &Option<Box<IndexNode>>, from: SimTime, out: &mut Vec<SimTime>) {
        let Some(n) = node else {
            return;
        };
        if n.key > from {
            Self::collect_after(&n.left, from, out);
            out.push(n.key);
            Self::collect_after(&n.right, from, out);
        } else {
            Self::collect_after(&n.right, from, out);
        }
    }
}

/// One booked window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Booking {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
    /// Booked amount.
    pub amount: f64,
}

impl Booking {
    /// The booking's volume: `amount × (to − from)`.
    pub fn volume(&self) -> f64 {
        self.amount * self.to.since(self.from)
    }
}

/// What a cancellation released: the structured result of
/// [`TimelineBroker::cancel`] and [`AdvanceRegistry::cancel_all`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CancelOutcome {
    /// Total volume released — Σ `amount × (to − from)` over the
    /// removed bookings.
    pub released_volume: f64,
    /// How many bookings were removed.
    pub bookings_removed: usize,
}

impl CancelOutcome {
    /// `true` when the session held no bookings.
    pub fn is_empty(&self) -> bool {
        self.bookings_removed == 0
    }

    /// Folds another outcome into this one (for aggregating across
    /// brokers).
    pub fn absorb(&mut self, other: CancelOutcome) {
        self.released_volume += other.released_volume;
        self.bookings_removed += other.bookings_removed;
    }
}

/// An advance-reservation broker for one resource: a capacity plus a
/// reservation [`TimelineIndex`] and a per-session booking ledger.
///
/// Booking goes through [`AdvanceRegistry::book`] with an
/// [`AdvanceRequest`](crate::AdvanceRequest):
///
/// ```
/// use qosr_broker::{AdvanceRegistry, AdvanceRequest, SessionId, SimTime, TimelineBroker};
/// use qosr_model::{ResourceId, ResourceVector};
/// use std::sync::Arc;
/// let mut reg = AdvanceRegistry::new();
/// reg.register(Arc::new(TimelineBroker::new(ResourceId(0), 100.0)));
/// let (t9, t12) = (SimTime::new(9.0), SimTime::new(12.0));
/// let demand = ResourceVector::from_pairs([(ResourceId(0), 60.0)]).unwrap();
/// let request = AdvanceRequest::rigid(SessionId(1), demand, t9, t12);
/// assert!(reg.book(&request, SimTime::ZERO).is_booked());
/// let broker = reg.get(ResourceId(0)).unwrap();
/// assert_eq!(broker.available_over(t9, t12), 40.0);
/// assert_eq!(broker.available_over(t12, SimTime::new(20.0)), 100.0);
/// ```
pub struct TimelineBroker {
    resource: ResourceId,
    capacity: f64,
    inner: Mutex<TimelineInner>,
}

#[derive(Debug, Default)]
struct TimelineInner {
    index: TimelineIndex,
    ledger: HashMap<SessionId, Vec<Booking>>,
}

impl TimelineBroker {
    /// Creates a broker with the given constant capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is not finite and positive.
    pub fn new(resource: ResourceId, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be finite and positive, got {capacity}"
        );
        TimelineBroker {
            resource,
            capacity,
            inner: Mutex::new(TimelineInner::default()),
        }
    }

    /// The resource this broker manages.
    pub fn resource(&self) -> ResourceId {
        self.resource
    }

    /// Total capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The guaranteed (minimum) availability over `[from, to)`.
    pub fn available_over(&self, from: SimTime, to: SimTime) -> f64 {
        self.capacity - self.inner.lock().index.max_reserved(from, to)
    }

    /// The availability profile from `from` onward: one `(time,
    /// available)` entry per level change, starting at `from` itself,
    /// ascending. The final entry's availability extends indefinitely.
    /// This is the piecewise-constant input the malleable planner
    /// sweeps.
    pub fn availability_after(&self, from: SimTime) -> Vec<(SimTime, f64)> {
        let inner = self.inner.lock();
        let mut out = vec![(from, self.capacity - inner.index.level_at(from))];
        for key in inner.index.breakpoints_after(from) {
            out.push((key, self.capacity - inner.index.level_at(key)));
        }
        out
    }

    /// Books `amount` over `[from, to)` for `session`; rejected if the
    /// window's minimum availability cannot cover it. The checked core
    /// behind both rigid and malleable booking.
    pub(crate) fn reserve_window(
        &self,
        session: SessionId,
        amount: f64,
        from: SimTime,
        to: SimTime,
    ) -> Result<(), ReserveError> {
        if !amount.is_finite() || amount <= 0.0 {
            return Err(ReserveError::InvalidAmount {
                resource: self.resource,
                amount,
            });
        }
        let mut inner = self.inner.lock();
        let available = self.capacity - inner.index.max_reserved(from, to);
        if amount > available {
            return Err(ReserveError::Insufficient {
                resource: self.resource,
                requested: amount,
                available,
            });
        }
        inner.index.add(from, to, amount);
        inner
            .ledger
            .entry(session)
            .or_default()
            .push(Booking { from, to, amount });
        Ok(())
    }

    /// Adds bookings without an admission check. Two callers rely on
    /// this: preempt-and-repack rollback (restoring state that was
    /// provably admitted before) and the water-fill planner (which
    /// validates every segment against one pre-booking snapshot, then
    /// commits the whole profile).
    pub(crate) fn restore(&self, session: SessionId, bookings: &[Booking]) {
        if bookings.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        for b in bookings {
            inner.index.add(b.from, b.to, b.amount);
        }
        inner
            .ledger
            .entry(session)
            .or_default()
            .extend_from_slice(bookings);
    }

    /// Cancels every booking of `session`, reporting the released
    /// volume and booking count (zeroes when none).
    pub fn cancel(&self, session: SessionId) -> CancelOutcome {
        let mut inner = self.inner.lock();
        let Some(bookings) = inner.ledger.remove(&session) else {
            return CancelOutcome::default();
        };
        let mut outcome = CancelOutcome::default();
        for b in bookings {
            inner.index.remove(b.from, b.to, b.amount);
            outcome.released_volume += b.volume();
            outcome.bookings_removed += 1;
        }
        outcome
    }

    /// The bookings `session` currently holds.
    pub fn bookings_of(&self, session: SessionId) -> Vec<Booking> {
        self.inner
            .lock()
            .ledger
            .get(&session)
            .cloned()
            .unwrap_or_default()
    }

    /// Number of breakpoints in the reservation index.
    pub fn breakpoints(&self) -> usize {
        self.inner.lock().index.breakpoints()
    }

    /// Folds expired breakpoints into the timeline base (call
    /// periodically with the current time). Past bookings stop being
    /// cancellable after compaction.
    pub fn compact(&self, now: SimTime) {
        let mut inner = self.inner.lock();
        inner.index.compact(now);
        for bookings in inner.ledger.values_mut() {
            bookings.retain(|b| b.to > now);
        }
        inner.ledger.retain(|_, b| !b.is_empty());
    }
}

/// One evicted session's bookings, grouped per resource, kept so a
/// failed repack can restore them exactly.
type SavedSession = (SessionId, Vec<(ResourceId, Vec<Booking>)>);

/// Directory of [`TimelineBroker`]s with window snapshots and atomic
/// multi-resource advance booking. [`AdvanceRegistry::book`] is the
/// entry point: rigid windows commit all-or-nothing across brokers
/// (optionally preempting and repacking malleable sessions), malleable
/// bulk transfers get a rate profile from the deadline-window planner.
pub struct AdvanceRegistry {
    brokers: HashMap<ResourceId, Arc<TimelineBroker>>,
    /// Specs of admitted malleable sessions — what preempt-and-repack
    /// replans when a rigid request needs their window.
    malleable: Mutex<HashMap<SessionId, MalleableSpec>>,
    /// Where booking outcomes are reported ([`NullSink`] by default).
    sink: Arc<dyn TraceSink>,
    /// Advance booking/repack/reject counters (private instance by
    /// default; share one via [`AdvanceRegistry::set_counters`]).
    counters: Arc<Counters>,
    /// Request tracer for span trees of traced advance requests
    /// (disabled private instance by default; share a coordinator's via
    /// [`AdvanceRegistry::set_tracer`]).
    tracer: Arc<Tracer>,
}

impl Default for AdvanceRegistry {
    fn default() -> Self {
        AdvanceRegistry {
            brokers: HashMap::new(),
            malleable: Mutex::new(HashMap::new()),
            sink: Arc::new(NullSink),
            counters: Arc::new(Counters::new()),
            tracer: Arc::new(Tracer::default()),
        }
    }
}

impl AdvanceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes advance trace events (bookings, repacks, rejections,
    /// rolled-back conflicts) to `sink`.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    /// Shares a counter set (e.g. a coordinator's) so advance outcomes
    /// land in the same snapshot as admission counters.
    pub fn set_counters(&mut self, counters: Arc<Counters>) {
        self.counters = counters;
    }

    /// Shares a request tracer (e.g. a coordinator's) so traced advance
    /// requests land in the same flight ring and span histograms as
    /// session admissions.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = tracer;
    }

    /// The registry's request tracer (a disabled private instance
    /// unless one was shared via [`AdvanceRegistry::set_tracer`]).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Registers a broker under its resource id.
    pub fn register(&mut self, broker: Arc<TimelineBroker>) {
        self.brokers.insert(broker.resource(), broker);
    }

    /// The broker for `id`, if registered — an O(1) hash lookup.
    pub fn get(&self, id: ResourceId) -> Option<&Arc<TimelineBroker>> {
        self.brokers.get(&id)
    }

    /// Number of registered brokers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// An [`AvailabilityView`] of the guaranteed availability of every
    /// resource over `[from, to)` — plug it into `Qrg::build` to plan an
    /// advance reservation with any planner.
    pub fn snapshot_window(&self, from: SimTime, to: SimTime) -> AvailabilityView {
        let mut view = AvailabilityView::new();
        for broker in self.brokers.values() {
            view.set(broker.resource(), broker.available_over(from, to));
        }
        view
    }

    /// Books an [`AdvanceRequest`], returning the structured
    /// [`AdvanceOutcome`].
    ///
    /// * Rigid requests commit their demand vector all-or-nothing over
    ///   the window. When the window is full and the request allows
    ///   preemption, malleable sessions overlapping it are evicted, the
    ///   rigid window is booked, and every victim is replanned around
    ///   it ([`AdvanceOutcome::Repacked`]); if any victim cannot be
    ///   replanned the whole repack rolls back.
    /// * Malleable requests get a `(start, duration, rate)` profile
    ///   from the deadline-window planner
    ///   (the `malleable` module); infeasible ones report the nearest
    ///   deadline that *would* have fit.
    ///
    /// `now` stamps trace events and floors malleable start times.
    pub fn book(&self, request: &AdvanceRequest, now: SimTime) -> AdvanceOutcome {
        let session = request.session();
        let mut collector = match request.trace {
            Some(ctx) if self.tracer.enabled() => Some(SpanCollector::new(ctx)),
            _ => None,
        };
        let outcome = match request.shape() {
            AdvanceShape::Rigid { demand, from, to } => {
                let (from, to) = (*from, *to);
                let plan_started = collector.is_some().then(std::time::Instant::now);
                let psi = self.rigid_psi(demand, from, to);
                if let (Some(c), Some(started)) = (collector.as_mut(), plan_started) {
                    c.record(SpanKind::Plan, started).psi = Some(psi);
                }
                let commit_started = collector.is_some().then(std::time::Instant::now);
                let outcome = match self.try_reserve_all(session, demand, from, to) {
                    Ok(()) => {
                        let profile = Self::rigid_profile(demand, from, to, psi);
                        self.emit_booked(now, session, &profile);
                        AdvanceOutcome::Booked { profile }
                    }
                    Err(error) if request.preempts() => {
                        self.repack(session, demand, from, to, now, error)
                    }
                    Err(error) => {
                        self.emit_rejected(now, session, &error, None);
                        AdvanceOutcome::Rejected {
                            error,
                            nearest_feasible_deadline: None,
                        }
                    }
                };
                if let (Some(c), Some(started)) = (collector.as_mut(), commit_started) {
                    let span = c.record(SpanKind::Commit, started);
                    match &outcome {
                        AdvanceOutcome::Repacked { moved, .. } => {
                            span.detail = Some(format!("repacked {} sessions", moved.len()));
                        }
                        AdvanceOutcome::Rejected { .. } => {
                            span.detail = Some("rolled back".to_string());
                        }
                        AdvanceOutcome::Booked { .. } => {}
                    }
                }
                outcome
            }
            AdvanceShape::Malleable { resource, .. } => 'malleable: {
                let Some(broker) = self.brokers.get(resource) else {
                    let error = ReserveError::UnknownResource {
                        resource: *resource,
                    };
                    self.emit_rejected(now, session, &error, None);
                    break 'malleable AdvanceOutcome::Rejected {
                        error,
                        nearest_feasible_deadline: None,
                    };
                };
                let spec = request.malleable_spec().expect("shape checked above");
                // The deadline-window planner both plans the rate
                // profile and commits it; one plan span covers it.
                let plan_started = collector.is_some().then(std::time::Instant::now);
                let outcome = match book_malleable(broker, session, &spec, now) {
                    Ok(profile) => {
                        self.malleable.lock().insert(session, spec);
                        self.emit_booked(now, session, &profile);
                        AdvanceOutcome::Booked { profile }
                    }
                    Err((error, nearest)) => {
                        self.emit_rejected(now, session, &error, nearest);
                        AdvanceOutcome::Rejected {
                            error,
                            nearest_feasible_deadline: nearest,
                        }
                    }
                };
                if let (Some(c), Some(started)) = (collector.as_mut(), plan_started) {
                    let span = c.record(SpanKind::Plan, started);
                    span.resource = Some(u64::from(resource.0));
                    if let AdvanceOutcome::Booked { profile } = &outcome {
                        span.psi = Some(profile.psi);
                    }
                }
                outcome
            }
        };
        if let Some(collector) = collector {
            let (label, psi) = match &outcome {
                AdvanceOutcome::Booked { profile } | AdvanceOutcome::Repacked { profile, .. } => {
                    (qosr_obs::trace::OUTCOME_COMMITTED, Some(profile.psi))
                }
                AdvanceOutcome::Rejected { .. } => (qosr_obs::trace::OUTCOME_REJECTED, None),
            };
            let trace = collector.finish_with(label, Some(session.0), None, psi, "advance");
            self.tracer.record(trace, self.sink.as_ref(), now.value());
        }
        outcome
    }

    /// Cancels all of `session`'s bookings across all brokers (and
    /// drops its malleable spec, if it had one).
    pub fn cancel_all(&self, session: SessionId) -> CancelOutcome {
        self.malleable.lock().remove(&session);
        let mut outcome = CancelOutcome::default();
        for b in self.brokers.values() {
            outcome.absorb(b.cancel(session));
        }
        outcome
    }

    fn try_reserve_all(
        &self,
        session: SessionId,
        demand: &ResourceVector,
        from: SimTime,
        to: SimTime,
    ) -> Result<(), ReserveError> {
        let mut done: Vec<&Arc<TimelineBroker>> = Vec::with_capacity(demand.len());
        for (id, amount) in demand.iter() {
            let Some(broker) = self.brokers.get(&id) else {
                for b in done {
                    b.cancel(session);
                }
                let e = ReserveError::UnknownResource { resource: id };
                self.emit_conflict(session, id, from, &e);
                return Err(e);
            };
            if let Err(e) = broker.reserve_window(session, amount, from, to) {
                for b in done {
                    b.cancel(session);
                }
                self.emit_conflict(session, id, from, &e);
                return Err(e);
            }
            done.push(broker);
        }
        Ok(())
    }

    /// A rigid request hit a full window and allows preemption: evict
    /// every malleable session overlapping the window on a demanded
    /// resource, book the rigid window, then replan each victim around
    /// it — all-or-nothing, restoring every original booking on any
    /// failure.
    fn repack(
        &self,
        session: SessionId,
        demand: &ResourceVector,
        from: SimTime,
        to: SimTime,
        now: SimTime,
        error: ReserveError,
    ) -> AdvanceOutcome {
        let victims: Vec<(SessionId, MalleableSpec)> = {
            let specs = self.malleable.lock();
            let mut v: Vec<(SessionId, MalleableSpec)> = specs
                .iter()
                .filter(|(sid, _)| {
                    demand.iter().any(|(id, _)| {
                        self.brokers.get(&id).is_some_and(|b| {
                            b.bookings_of(**sid)
                                .iter()
                                .any(|bk| bk.from < to && bk.to > from)
                        })
                    })
                })
                .map(|(sid, spec)| (*sid, spec.clone()))
                .collect();
            v.sort_by_key(|(sid, _)| *sid);
            v
        };
        if victims.is_empty() {
            self.emit_rejected(now, session, &error, None);
            return AdvanceOutcome::Rejected {
                error,
                nearest_feasible_deadline: None,
            };
        }
        // Evict: remember every victim's bookings, then cancel them.
        let mut saved: Vec<SavedSession> = Vec::new();
        for (sid, _) in &victims {
            let per: Vec<(ResourceId, Vec<Booking>)> = self
                .brokers
                .iter()
                .filter_map(|(rid, b)| {
                    let bs = b.bookings_of(*sid);
                    (!bs.is_empty()).then_some((*rid, bs))
                })
                .collect();
            for b in self.brokers.values() {
                b.cancel(*sid);
            }
            saved.push((*sid, per));
        }
        let psi = self.rigid_psi(demand, from, to);
        if self.try_reserve_all(session, demand, from, to).is_err() {
            self.restore_saved(&saved);
            self.emit_rejected(now, session, &error, None);
            return AdvanceOutcome::Rejected {
                error,
                nearest_feasible_deadline: None,
            };
        }
        let mut replanned: Vec<SessionId> = Vec::new();
        for (sid, spec) in &victims {
            let ok = self
                .brokers
                .get(&spec.resource)
                .is_some_and(|b| book_malleable(b, *sid, spec, now).is_ok());
            if ok {
                replanned.push(*sid);
            } else {
                // A victim no longer fits anywhere before its deadline:
                // unwind the whole repack.
                for done in &replanned {
                    for b in self.brokers.values() {
                        b.cancel(*done);
                    }
                }
                for b in self.brokers.values() {
                    b.cancel(session);
                }
                self.restore_saved(&saved);
                self.emit_rejected(now, session, &error, None);
                return AdvanceOutcome::Rejected {
                    error,
                    nearest_feasible_deadline: None,
                };
            }
        }
        let profile = Self::rigid_profile(demand, from, to, psi);
        self.emit_repacked(now, session, &profile, replanned.len());
        AdvanceOutcome::Repacked {
            profile,
            moved: replanned,
        }
    }

    fn restore_saved(&self, saved: &[SavedSession]) {
        for (sid, per) in saved {
            for (rid, bs) in per {
                if let Some(b) = self.brokers.get(rid) {
                    b.restore(*sid, bs);
                }
            }
        }
    }

    /// The most-stressed demanded resource's `demand/avail` over the
    /// window, *before* booking — ≤ 1 whenever the booking succeeds.
    fn rigid_psi(&self, demand: &ResourceVector, from: SimTime, to: SimTime) -> f64 {
        let mut psi = 0.0f64;
        for (id, amount) in demand.iter() {
            let Some(b) = self.brokers.get(&id) else {
                continue;
            };
            let avail = b.available_over(from, to);
            psi = if avail > 0.0 {
                psi.max(amount / avail)
            } else {
                f64::INFINITY
            };
        }
        psi
    }

    fn rigid_profile(
        demand: &ResourceVector,
        from: SimTime,
        to: SimTime,
        psi: f64,
    ) -> AdvanceProfile {
        let volume = demand.iter().map(|(_, a)| a * to.since(from)).sum();
        AdvanceProfile {
            resource: None,
            start: from,
            end: to,
            volume,
            psi,
            segments: Vec::new(),
        }
    }

    fn emit_booked(&self, now: SimTime, session: SessionId, profile: &AdvanceProfile) {
        self.counters.record_advance_booked();
        if !self.sink.enabled() {
            return;
        }
        let mut ev = TraceEvent::new(now.value(), EventKind::AdvanceBooked)
            .with_session(session.0)
            .with_value(profile.volume)
            .with_psi(profile.psi)
            .with_detail(format!(
                "[{}, {})",
                profile.start.value(),
                profile.end.value()
            ));
        if let Some(rid) = profile.resource {
            ev = ev.with_resource(u64::from(rid.0));
        }
        self.sink.emit(&ev);
    }

    fn emit_repacked(&self, now: SimTime, session: SessionId, profile: &AdvanceProfile, n: usize) {
        self.counters.record_advance_repacked();
        if !self.sink.enabled() {
            return;
        }
        self.sink.emit(
            &TraceEvent::new(now.value(), EventKind::AdvanceRepacked)
                .with_session(session.0)
                .with_value(profile.volume)
                .with_psi(profile.psi)
                .with_detail(format!("moved {n} malleable session(s)")),
        );
    }

    fn emit_rejected(
        &self,
        now: SimTime,
        session: SessionId,
        error: &ReserveError,
        nearest: Option<SimTime>,
    ) {
        self.counters.record_advance_rejected();
        if !self.sink.enabled() {
            return;
        }
        let mut ev = TraceEvent::new(now.value(), EventKind::AdvanceRejected)
            .with_session(session.0)
            .with_detail(error.to_string());
        if let Some(d) = nearest {
            ev = ev.with_value(d.value());
        }
        self.sink.emit(&ev);
    }

    fn emit_conflict(&self, session: SessionId, id: ResourceId, from: SimTime, e: &ReserveError) {
        if self.sink.enabled() {
            self.sink.emit(
                &TraceEvent::new(from.value(), EventKind::AdvanceConflict)
                    .with_session(session.0)
                    .with_resource(u64::from(id.0))
                    .with_detail(e.to_string()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn timeline_max_reserved() {
        let mut tl = Timeline::new();
        assert_eq!(tl.max_reserved(t(0.0), t(100.0)), 0.0);
        tl.add(t(10.0), t(20.0), 5.0);
        tl.add(t(15.0), t(30.0), 7.0);
        // [0,10): 0; [10,15): 5; [15,20): 12; [20,30): 7.
        assert_eq!(tl.max_reserved(t(0.0), t(10.0)), 0.0);
        assert_eq!(tl.max_reserved(t(0.0), t(12.0)), 5.0);
        assert_eq!(tl.max_reserved(t(12.0), t(40.0)), 12.0);
        assert_eq!(tl.max_reserved(t(20.0), t(40.0)), 7.0);
        assert_eq!(tl.max_reserved(t(30.0), t(40.0)), 0.0);
        // Point-in-time query at a boundary sees the level at that time.
        assert_eq!(tl.max_reserved(t(15.0), t(15.0)), 12.0);
        // Window ending exactly at a rise does not include it.
        assert_eq!(tl.max_reserved(t(0.0), t(15.0)), 5.0);
    }

    #[test]
    fn timeline_remove_and_compact() {
        let mut tl = Timeline::new();
        tl.add(t(10.0), t(20.0), 5.0);
        tl.add(t(30.0), t(40.0), 9.0);
        tl.remove(t(10.0), t(20.0), 5.0);
        assert_eq!(tl.max_reserved(t(0.0), t(25.0)), 0.0);
        assert_eq!(tl.breakpoints(), 2); // only the 30/40 pair remains
        tl.compact(t(35.0));
        // Base now carries the level at 30 (+9); breakpoint at 40 kept.
        assert_eq!(tl.max_reserved(t(35.0), t(39.0)), 9.0);
        assert_eq!(tl.max_reserved(t(41.0), t(50.0)), 0.0);
        assert_eq!(tl.breakpoints(), 1);
    }

    #[test]
    fn breakpoints_stay_bounded_under_add_remove_cycles() {
        let mut tl = Timeline::new();
        let mut ix = TimelineIndex::new();
        // Abutting equal-rate windows: interior deltas cancel, so the
        // profile stays two breakpoints no matter how many windows.
        for i in 0..1000 {
            let s = t(f64::from(i));
            tl.add(s, s + 1.0, 2.0);
            ix.add(s, s + 1.0, 2.0);
        }
        assert_eq!(tl.breakpoints(), 2);
        assert_eq!(ix.breakpoints(), 2);
        assert_eq!(tl.max_reserved(t(0.0), t(1000.0)), 2.0);
        assert_eq!(ix.max_reserved(t(0.0), t(1000.0)), 2.0);
        for i in 0..1000 {
            let s = t(f64::from(i));
            tl.remove(s, s + 1.0, 2.0);
            ix.remove(s, s + 1.0, 2.0);
        }
        assert_eq!(tl.breakpoints(), 0);
        assert_eq!(ix.breakpoints(), 0);
        // Churn at one window never accumulates breakpoints either.
        for _ in 0..100 {
            tl.add(t(5.0), t(6.0), 1.5);
            tl.remove(t(5.0), t(6.0), 1.5);
            ix.add(t(5.0), t(6.0), 1.5);
            ix.remove(t(5.0), t(6.0), 1.5);
        }
        assert_eq!(tl.breakpoints(), 0);
        assert_eq!(ix.breakpoints(), 0);
    }

    #[test]
    fn index_matches_timeline_oracle() {
        // Deterministic differential run with integer amounts (exact
        // f64 arithmetic, so tree association cannot diverge from the
        // linear scan): every query must be bit-identical.
        let mut tl = Timeline::new();
        let mut ix = TimelineIndex::new();
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut live: Vec<(SimTime, SimTime, f64)> = Vec::new();
        for step in 0..400 {
            if !live.is_empty() && next() % 4 == 0 {
                let (a, b, amt) = live.swap_remove((next() as usize) % live.len());
                tl.remove(a, b, amt);
                ix.remove(a, b, amt);
            } else {
                let from = t((next() % 200) as f64);
                let to = from + (1 + next() % 40) as f64;
                let amount = (1 + next() % 50) as f64;
                tl.add(from, to, amount);
                ix.add(from, to, amount);
                live.push((from, to, amount));
            }
            let a = t((next() % 220) as f64);
            let b = a + (next() % 60) as f64;
            assert_eq!(ix.max_reserved(a, b), tl.max_reserved(a, b), "step {step}");
            assert_eq!(ix.breakpoints(), tl.breakpoints(), "step {step}");
            if step % 97 == 0 {
                let now = t((next() % 100) as f64);
                tl.compact(now);
                ix.compact(now);
                live.retain(|(_, to, _)| *to >= now);
            }
        }
    }

    #[test]
    fn broker_admission_over_windows() {
        let b = TimelineBroker::new(ResourceId(0), 100.0);
        let s1 = SessionId(1);
        // Book 60 for [10, 20).
        b.reserve_window(s1, 60.0, t(10.0), t(20.0)).unwrap();
        assert_eq!(b.available_over(t(10.0), t(20.0)), 40.0);
        assert_eq!(b.available_over(t(20.0), t(30.0)), 100.0);
        // A 50-unit booking overlapping the window is rejected…
        let err = b
            .reserve_window(SessionId(2), 50.0, t(15.0), t(25.0))
            .unwrap_err();
        assert!(matches!(err, ReserveError::Insufficient { available, .. } if available == 40.0));
        // …but fits right after.
        b.reserve_window(SessionId(2), 50.0, t(20.0), t(25.0))
            .unwrap();
        // Cancel frees the window, reporting released volume.
        let out = b.cancel(s1);
        assert_eq!(out.released_volume, 600.0); // 60 × 10 TU
        assert_eq!(out.bookings_removed, 1);
        assert_eq!(b.available_over(t(10.0), t(20.0)), 100.0);
        assert!(b.cancel(s1).is_empty());
    }

    #[test]
    fn broker_rejects_bad_amounts_and_tracks_bookings() {
        let b = TimelineBroker::new(ResourceId(0), 10.0);
        for bad in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                b.reserve_window(SessionId(1), bad, t(0.0), t(1.0)),
                Err(ReserveError::InvalidAmount { .. })
            ));
        }
        b.reserve_window(SessionId(1), 4.0, t(5.0), t(9.0)).unwrap();
        let bookings = b.bookings_of(SessionId(1));
        assert_eq!(bookings.len(), 1);
        assert_eq!(bookings[0].amount, 4.0);
        assert_eq!(bookings[0].volume(), 16.0);
        b.compact(t(20.0));
        assert!(b.bookings_of(SessionId(1)).is_empty());
    }

    #[test]
    fn availability_after_lists_breakpoint_levels() {
        let b = TimelineBroker::new(ResourceId(0), 100.0);
        b.reserve_window(SessionId(1), 60.0, t(10.0), t(20.0))
            .unwrap();
        assert_eq!(
            b.availability_after(t(0.0)),
            vec![(t(0.0), 100.0), (t(10.0), 40.0), (t(20.0), 100.0)]
        );
        // A query origin inside a segment sees that segment's level.
        assert_eq!(
            b.availability_after(t(15.0)),
            vec![(t(15.0), 40.0), (t(20.0), 100.0)]
        );
        assert_eq!(b.breakpoints(), 2);
    }

    #[test]
    fn registry_atomic_booking() {
        let mut reg = AdvanceRegistry::new();
        reg.register(Arc::new(TimelineBroker::new(ResourceId(0), 100.0)));
        reg.register(Arc::new(TimelineBroker::new(ResourceId(1), 30.0)));
        let demand =
            ResourceVector::from_pairs([(ResourceId(0), 50.0), (ResourceId(1), 40.0)]).unwrap();
        // Resource 1 can never cover 40: all-or-nothing must roll back.
        let outcome = reg.book(
            &AdvanceRequest::rigid(SessionId(1), demand, t(0.0), t(10.0)),
            t(0.0),
        );
        assert!(!outcome.is_booked());
        assert_eq!(outcome.error().unwrap().resource(), ResourceId(1));
        assert_eq!(
            reg.get(ResourceId(0))
                .unwrap()
                .available_over(t(0.0), t(10.0)),
            100.0
        );

        let demand =
            ResourceVector::from_pairs([(ResourceId(0), 50.0), (ResourceId(1), 20.0)]).unwrap();
        let outcome = reg.book(
            &AdvanceRequest::rigid(SessionId(1), demand, t(0.0), t(10.0)),
            t(0.0),
        );
        assert!(outcome.is_booked());
        let profile = outcome.profile().unwrap();
        assert_eq!(profile.volume, 700.0); // (50 + 20) × 10 TU
        assert!(profile.psi <= 1.0);
        let view = reg.snapshot_window(t(0.0), t(10.0));
        assert_eq!(view.avail(ResourceId(0)), 50.0);
        assert_eq!(view.avail(ResourceId(1)), 10.0);
        // Outside the window everything is free.
        let view = reg.snapshot_window(t(10.0), t(20.0));
        assert_eq!(view.avail(ResourceId(0)), 100.0);
        let released = reg.cancel_all(SessionId(1));
        assert_eq!(released.released_volume, 700.0);
        assert_eq!(released.bookings_removed, 2);
    }

    #[test]
    fn rigid_windows_book_through_the_builder_api() {
        let b = TimelineBroker::new(ResourceId(0), 100.0);
        b.reserve_window(SessionId(1), 60.0, t(10.0), t(20.0))
            .unwrap();
        assert_eq!(b.available_over(t(10.0), t(20.0)), 40.0);

        let mut reg = AdvanceRegistry::new();
        reg.register(Arc::new(TimelineBroker::new(ResourceId(1), 50.0)));
        let demand = ResourceVector::from_pairs([(ResourceId(1), 20.0)]).unwrap();
        let request = AdvanceRequest::rigid(SessionId(2), demand, t(0.0), t(5.0));
        assert!(reg.book(&request, t(0.0)).is_booked());
        assert_eq!(reg.cancel_all(SessionId(2)).released_volume, 100.0);
    }

    #[test]
    fn traced_bookings_record_span_trees() {
        let mut reg = AdvanceRegistry::new();
        reg.register(Arc::new(TimelineBroker::new(ResourceId(0), 50.0)));
        reg.tracer().set_enabled(true);
        let demand = ResourceVector::from_pairs([(ResourceId(0), 20.0)]).unwrap();

        // A booked rigid window: plan (with ψ) + commit spans, exact
        // root-span accounting, committed outcome.
        let request = AdvanceRequest::rigid(SessionId(1), demand.clone(), t(0.0), t(5.0))
            .traced(qosr_obs::TraceId(7));
        assert_eq!(request.trace_id(), Some(qosr_obs::TraceId(7)));
        assert!(reg.book(&request, t(0.0)).is_booked());
        let traces = reg.tracer().flight().dump();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_eq!(trace.trace, 7);
        assert_eq!(trace.outcome, "committed");
        assert_eq!(trace.service.as_deref(), Some("advance"));
        assert_eq!(trace.session, Some(1));
        let measured: u64 = trace.spans.iter().map(|s| s.duration_ns).sum();
        assert_eq!(measured, trace.total_ns);
        assert_eq!(trace.spans[1].kind, SpanKind::Plan);
        assert!(trace.spans[1].psi.is_some());
        assert_eq!(trace.spans[2].kind, SpanKind::Commit);

        // A rejected window rolls back and records the rejection.
        let over = ResourceVector::from_pairs([(ResourceId(0), 45.0)]).unwrap();
        let request =
            AdvanceRequest::rigid(SessionId(2), over, t(0.0), t(5.0)).traced(qosr_obs::TraceId(8));
        assert!(!reg.book(&request, t(0.0)).is_booked());
        let traces = reg.tracer().flight().dump();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[1].outcome, "rejected");
        let commit = traces[1].spans.iter().find(|s| s.kind == SpanKind::Commit);
        assert_eq!(commit.unwrap().detail.as_deref(), Some("rolled back"));

        // A traced malleable transfer records the planner span with the
        // booked profile's ψ and resource.
        let request = AdvanceRequest::malleable(SessionId(3), ResourceId(0), 30.0, t(100.0))
            .traced(qosr_obs::TraceId(9));
        assert!(reg.book(&request, t(0.0)).is_booked());
        let traces = reg.tracer().flight().dump();
        assert_eq!(traces[2].outcome, "committed");
        assert!(traces[2].psi.is_some());
        let plan = traces[2].spans.iter().find(|s| s.kind == SpanKind::Plan);
        assert_eq!(plan.unwrap().resource, Some(0));

        // Untraced bookings never touch the tracer.
        let plain = AdvanceRequest::rigid(
            SessionId(4),
            ResourceVector::from_pairs([(ResourceId(0), 1.0)]).unwrap(),
            t(50.0),
            t(55.0),
        );
        assert!(reg.book(&plain, t(0.0)).is_booked());
        assert_eq!(reg.tracer().recorded(), 3);
    }

    #[test]
    fn planning_against_a_window_snapshot() {
        use qosr_core::{plan_basic, Qrg, QrgOptions};
        use qosr_model::*;
        use std::sync::Arc as StdArc;

        // One-component service over one resource.
        let schema = QosSchema::new("q", ["level"]);
        let v = |x: u32| QosVector::new(schema.clone(), [x]);
        let comp = ComponentSpec::new(
            "c",
            vec![v(0)],
            vec![v(1), v(2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            StdArc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [10.0])
                    .entry(0, 1, [60.0])
                    .build(),
            ),
        );
        let service = StdArc::new(ServiceSpec::chain("svc", vec![comp], vec![1, 2]).unwrap());
        let rid = {
            let mut sp = ResourceSpace::new();
            sp.register("cpu", ResourceKind::Compute)
        };
        let session =
            SessionInstance::new(service, vec![ComponentBinding::new([rid])], 1.0).unwrap();

        let mut reg = AdvanceRegistry::new();
        reg.register(Arc::new(TimelineBroker::new(rid, 100.0)));
        // Pre-book 70 units over [10, 20).
        reg.get(rid)
            .unwrap()
            .reserve_window(SessionId(99), 70.0, t(10.0), t(20.0))
            .unwrap();

        // Planning for [12, 18): only level 1 fits (60 > 30).
        let view = reg.snapshot_window(t(12.0), t(18.0));
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        assert_eq!(plan_basic(&qrg).unwrap().rank, 1);
        // Planning for [20, 30): level 2 fits.
        let view = reg.snapshot_window(t(20.0), t(30.0));
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        let plan = plan_basic(&qrg).unwrap();
        assert_eq!(plan.rank, 2);
        // Book it through the request API.
        let outcome = reg.book(
            &AdvanceRequest::rigid(SessionId(1), plan.total_demand(), t(20.0), t(30.0)),
            t(0.0),
        );
        assert!(outcome.is_booked());
        assert_eq!(reg.get(rid).unwrap().available_over(t(20.0), t(30.0)), 40.0);
    }
}
