//! Advance reservations — the paper's stated next step (§6: *"One of
//! our next steps is to extend our multi-resource reservation framework
//! to support advance reservations"*, following Foster et al.'s
//! GARA architecture).
//!
//! An advance reservation books `amount` units of a resource over a
//! future time window `[from, to)`. The broker keeps a
//! **piecewise-constant reservation timeline**; a window reservation is
//! admitted iff the *minimum* availability over the window covers the
//! amount. Planning for a future window then reuses the ordinary QRG
//! machinery: [`AdvanceRegistry::snapshot_window`] produces an
//! [`AvailabilityView`] of per-resource window minima, and any planner
//! from `qosr-core` runs on it unchanged.

use crate::{ReserveError, SessionId, SimTime};
use parking_lot::Mutex;
use qosr_core::AvailabilityView;
use qosr_model::{ResourceId, ResourceVector};
use qosr_obs::{EventKind, NullSink, TraceEvent, TraceSink};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A piecewise-constant "reserved amount" profile over time.
///
/// Stored as a delta map: at each breakpoint time the reserved total
/// changes by the stored delta. The reserved amount before the first
/// breakpoint is zero (plus whatever [`Timeline::compact`] folded into
/// the base).
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Reserved amount before the first remaining breakpoint.
    base: f64,
    /// `time → delta` (summing deltas up to and including `t` plus
    /// `base` gives the reserved amount at `t`).
    deltas: BTreeMap<SimTime, f64>,
}

impl Timeline {
    /// An empty timeline (nothing reserved, ever).
    pub fn new() -> Self {
        Self::default()
    }

    /// The maximum reserved amount over `[from, to)`.
    pub fn max_reserved(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from <= to, "window must be ordered");
        // Reserved level just before `from`:
        let mut level = self.base;
        for (_, d) in self.deltas.range(..=from) {
            level += d;
        }
        let mut max = level;
        if from < to {
            for (_, d) in self.deltas.range((
                std::ops::Bound::Excluded(from),
                std::ops::Bound::Excluded(to),
            )) {
                level += d;
                max = max.max(level);
            }
        }
        max
    }

    /// Adds `amount` over `[from, to)`.
    pub fn add(&mut self, from: SimTime, to: SimTime, amount: f64) {
        assert!(from < to, "window must be non-empty");
        *self.deltas.entry(from).or_insert(0.0) += amount;
        *self.deltas.entry(to).or_insert(0.0) -= amount;
    }

    /// Removes a previously added window (exact inverse of
    /// [`Timeline::add`]).
    pub fn remove(&mut self, from: SimTime, to: SimTime, amount: f64) {
        self.add(from, to, -amount);
        // Drop zero deltas to keep the map tight.
        self.deltas.retain(|_, d| d.abs() > 1e-12);
    }

    /// Folds all breakpoints at or before `now` into the base level,
    /// bounding memory for long-running brokers.
    pub fn compact(&mut self, now: SimTime) {
        let keep = self.deltas.split_off(&now);
        // `split_off(&now)` keeps keys >= now in `keep`; fold the rest.
        for (_, d) in std::mem::take(&mut self.deltas) {
            self.base += d;
        }
        self.deltas = keep;
    }

    /// Number of breakpoints currently stored.
    pub fn breakpoints(&self) -> usize {
        self.deltas.len()
    }
}

/// One booked window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Booking {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
    /// Booked amount.
    pub amount: f64,
}

/// An advance-reservation broker for one resource: a capacity plus a
/// reservation [`Timeline`] and a per-session booking ledger.
///
/// ```
/// use qosr_broker::{SessionId, SimTime, TimelineBroker};
/// use qosr_model::ResourceId;
/// let b = TimelineBroker::new(ResourceId(0), 100.0);
/// let (t9, t12) = (SimTime::new(9.0), SimTime::new(12.0));
/// b.reserve_over(SessionId(1), 60.0, t9, t12).unwrap();
/// assert_eq!(b.available_over(t9, t12), 40.0);
/// assert_eq!(b.available_over(t12, SimTime::new(20.0)), 100.0);
/// ```
pub struct TimelineBroker {
    resource: ResourceId,
    capacity: f64,
    inner: Mutex<TimelineInner>,
}

#[derive(Debug, Default)]
struct TimelineInner {
    timeline: Timeline,
    ledger: HashMap<SessionId, Vec<Booking>>,
}

impl TimelineBroker {
    /// Creates a broker with the given constant capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is not finite and positive.
    pub fn new(resource: ResourceId, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be finite and positive, got {capacity}"
        );
        TimelineBroker {
            resource,
            capacity,
            inner: Mutex::new(TimelineInner::default()),
        }
    }

    /// The resource this broker manages.
    pub fn resource(&self) -> ResourceId {
        self.resource
    }

    /// Total capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The guaranteed (minimum) availability over `[from, to)`.
    pub fn available_over(&self, from: SimTime, to: SimTime) -> f64 {
        self.capacity - self.inner.lock().timeline.max_reserved(from, to)
    }

    /// Books `amount` over `[from, to)` for `session`; rejected if the
    /// window's minimum availability cannot cover it.
    pub fn reserve_over(
        &self,
        session: SessionId,
        amount: f64,
        from: SimTime,
        to: SimTime,
    ) -> Result<(), ReserveError> {
        if !amount.is_finite() || amount <= 0.0 {
            return Err(ReserveError::InvalidAmount {
                resource: self.resource,
                amount,
            });
        }
        let mut inner = self.inner.lock();
        let available = self.capacity - inner.timeline.max_reserved(from, to);
        if amount > available {
            return Err(ReserveError::Insufficient {
                resource: self.resource,
                requested: amount,
                available,
            });
        }
        inner.timeline.add(from, to, amount);
        inner
            .ledger
            .entry(session)
            .or_default()
            .push(Booking { from, to, amount });
        Ok(())
    }

    /// Cancels every booking of `session`, returning the total amount ×
    /// windows released (0 when none).
    pub fn cancel(&self, session: SessionId) -> f64 {
        let mut inner = self.inner.lock();
        let Some(bookings) = inner.ledger.remove(&session) else {
            return 0.0;
        };
        let mut total = 0.0;
        for b in bookings {
            inner.timeline.remove(b.from, b.to, b.amount);
            total += b.amount;
        }
        total
    }

    /// The bookings `session` currently holds.
    pub fn bookings_of(&self, session: SessionId) -> Vec<Booking> {
        self.inner
            .lock()
            .ledger
            .get(&session)
            .cloned()
            .unwrap_or_default()
    }

    /// Folds expired breakpoints into the timeline base (call
    /// periodically with the current time). Past bookings stop being
    /// cancellable after compaction.
    pub fn compact(&self, now: SimTime) {
        let mut inner = self.inner.lock();
        inner.timeline.compact(now);
        for bookings in inner.ledger.values_mut() {
            bookings.retain(|b| b.to > now);
        }
        inner.ledger.retain(|_, b| !b.is_empty());
    }
}

/// Directory of [`TimelineBroker`]s with window snapshots and atomic
/// multi-resource advance booking.
pub struct AdvanceRegistry {
    brokers: HashMap<ResourceId, Arc<TimelineBroker>>,
    /// Where booking conflicts are reported ([`NullSink`] by default).
    sink: Arc<dyn TraceSink>,
}

impl Default for AdvanceRegistry {
    fn default() -> Self {
        AdvanceRegistry {
            brokers: HashMap::new(),
            sink: Arc::new(NullSink),
        }
    }
}

impl AdvanceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes `AdvanceConflict` trace events (rolled-back window
    /// bookings) to `sink`.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    /// Registers a broker under its resource id.
    pub fn register(&mut self, broker: Arc<TimelineBroker>) {
        self.brokers.insert(broker.resource(), broker);
    }

    /// The broker for `id`, if registered.
    pub fn get(&self, id: ResourceId) -> Option<&Arc<TimelineBroker>> {
        self.brokers.get(&id)
    }

    /// Number of registered brokers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// An [`AvailabilityView`] of the guaranteed availability of every
    /// resource over `[from, to)` — plug it into `Qrg::build` to plan an
    /// advance reservation with any planner.
    pub fn snapshot_window(&self, from: SimTime, to: SimTime) -> AvailabilityView {
        let mut view = AvailabilityView::new();
        for broker in self.brokers.values() {
            view.set(broker.resource(), broker.available_over(from, to));
        }
        view
    }

    /// Books the whole `demand` vector over `[from, to)` for `session`,
    /// all-or-nothing with rollback.
    pub fn reserve_all_over(
        &self,
        session: SessionId,
        demand: &ResourceVector,
        from: SimTime,
        to: SimTime,
    ) -> Result<(), ReserveError> {
        let mut done: Vec<&Arc<TimelineBroker>> = Vec::with_capacity(demand.len());
        for (id, amount) in demand.iter() {
            let Some(broker) = self.brokers.get(&id) else {
                for b in done {
                    b.cancel(session);
                }
                let e = ReserveError::UnknownResource { resource: id };
                self.emit_conflict(session, id, from, &e);
                return Err(e);
            };
            if let Err(e) = broker.reserve_over(session, amount, from, to) {
                for b in done {
                    b.cancel(session);
                }
                self.emit_conflict(session, id, from, &e);
                return Err(e);
            }
            done.push(broker);
        }
        Ok(())
    }

    /// Cancels all of `session`'s bookings across all brokers.
    pub fn cancel_all(&self, session: SessionId) -> f64 {
        self.brokers.values().map(|b| b.cancel(session)).sum()
    }

    fn emit_conflict(&self, session: SessionId, id: ResourceId, from: SimTime, e: &ReserveError) {
        if self.sink.enabled() {
            self.sink.emit(
                &TraceEvent::new(from.value(), EventKind::AdvanceConflict)
                    .with_session(session.0)
                    .with_resource(u64::from(id.0))
                    .with_detail(e.to_string()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn timeline_max_reserved() {
        let mut tl = Timeline::new();
        assert_eq!(tl.max_reserved(t(0.0), t(100.0)), 0.0);
        tl.add(t(10.0), t(20.0), 5.0);
        tl.add(t(15.0), t(30.0), 7.0);
        // [0,10): 0; [10,15): 5; [15,20): 12; [20,30): 7.
        assert_eq!(tl.max_reserved(t(0.0), t(10.0)), 0.0);
        assert_eq!(tl.max_reserved(t(0.0), t(12.0)), 5.0);
        assert_eq!(tl.max_reserved(t(12.0), t(40.0)), 12.0);
        assert_eq!(tl.max_reserved(t(20.0), t(40.0)), 7.0);
        assert_eq!(tl.max_reserved(t(30.0), t(40.0)), 0.0);
        // Point-in-time query at a boundary sees the level at that time.
        assert_eq!(tl.max_reserved(t(15.0), t(15.0)), 12.0);
        // Window ending exactly at a rise does not include it.
        assert_eq!(tl.max_reserved(t(0.0), t(15.0)), 5.0);
    }

    #[test]
    fn timeline_remove_and_compact() {
        let mut tl = Timeline::new();
        tl.add(t(10.0), t(20.0), 5.0);
        tl.add(t(30.0), t(40.0), 9.0);
        tl.remove(t(10.0), t(20.0), 5.0);
        assert_eq!(tl.max_reserved(t(0.0), t(25.0)), 0.0);
        assert_eq!(tl.breakpoints(), 2); // only the 30/40 pair remains
        tl.compact(t(35.0));
        // Base now carries the level at 30 (+9); breakpoint at 40 kept.
        assert_eq!(tl.max_reserved(t(35.0), t(39.0)), 9.0);
        assert_eq!(tl.max_reserved(t(41.0), t(50.0)), 0.0);
        assert_eq!(tl.breakpoints(), 1);
    }

    #[test]
    fn broker_admission_over_windows() {
        let b = TimelineBroker::new(ResourceId(0), 100.0);
        let s1 = SessionId(1);
        // Book 60 for [10, 20).
        b.reserve_over(s1, 60.0, t(10.0), t(20.0)).unwrap();
        assert_eq!(b.available_over(t(10.0), t(20.0)), 40.0);
        assert_eq!(b.available_over(t(20.0), t(30.0)), 100.0);
        // A 50-unit booking overlapping the window is rejected…
        let err = b
            .reserve_over(SessionId(2), 50.0, t(15.0), t(25.0))
            .unwrap_err();
        assert!(matches!(err, ReserveError::Insufficient { available, .. } if available == 40.0));
        // …but fits right after.
        b.reserve_over(SessionId(2), 50.0, t(20.0), t(25.0))
            .unwrap();
        // Cancel frees the window.
        assert_eq!(b.cancel(s1), 60.0);
        assert_eq!(b.available_over(t(10.0), t(20.0)), 100.0);
        assert_eq!(b.cancel(s1), 0.0);
    }

    #[test]
    fn broker_rejects_bad_amounts_and_tracks_bookings() {
        let b = TimelineBroker::new(ResourceId(0), 10.0);
        for bad in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                b.reserve_over(SessionId(1), bad, t(0.0), t(1.0)),
                Err(ReserveError::InvalidAmount { .. })
            ));
        }
        b.reserve_over(SessionId(1), 4.0, t(5.0), t(9.0)).unwrap();
        let bookings = b.bookings_of(SessionId(1));
        assert_eq!(bookings.len(), 1);
        assert_eq!(bookings[0].amount, 4.0);
        b.compact(t(20.0));
        assert!(b.bookings_of(SessionId(1)).is_empty());
    }

    #[test]
    fn registry_atomic_booking() {
        let mut reg = AdvanceRegistry::new();
        reg.register(Arc::new(TimelineBroker::new(ResourceId(0), 100.0)));
        reg.register(Arc::new(TimelineBroker::new(ResourceId(1), 30.0)));
        let demand =
            ResourceVector::from_pairs([(ResourceId(0), 50.0), (ResourceId(1), 40.0)]).unwrap();
        // Resource 1 can never cover 40: all-or-nothing must roll back.
        let err = reg
            .reserve_all_over(SessionId(1), &demand, t(0.0), t(10.0))
            .unwrap_err();
        assert_eq!(err.resource(), ResourceId(1));
        assert_eq!(
            reg.get(ResourceId(0))
                .unwrap()
                .available_over(t(0.0), t(10.0)),
            100.0
        );

        let demand =
            ResourceVector::from_pairs([(ResourceId(0), 50.0), (ResourceId(1), 20.0)]).unwrap();
        reg.reserve_all_over(SessionId(1), &demand, t(0.0), t(10.0))
            .unwrap();
        let view = reg.snapshot_window(t(0.0), t(10.0));
        assert_eq!(view.avail(ResourceId(0)), 50.0);
        assert_eq!(view.avail(ResourceId(1)), 10.0);
        // Outside the window everything is free.
        let view = reg.snapshot_window(t(10.0), t(20.0));
        assert_eq!(view.avail(ResourceId(0)), 100.0);
        assert_eq!(reg.cancel_all(SessionId(1)), 70.0);
    }

    #[test]
    fn planning_against_a_window_snapshot() {
        use qosr_core::{plan_basic, Qrg, QrgOptions};
        use qosr_model::*;
        use std::sync::Arc as StdArc;

        // One-component service over one resource.
        let schema = QosSchema::new("q", ["level"]);
        let v = |x: u32| QosVector::new(schema.clone(), [x]);
        let comp = ComponentSpec::new(
            "c",
            vec![v(0)],
            vec![v(1), v(2)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            StdArc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [10.0])
                    .entry(0, 1, [60.0])
                    .build(),
            ),
        );
        let service = StdArc::new(ServiceSpec::chain("svc", vec![comp], vec![1, 2]).unwrap());
        let rid = {
            let mut sp = ResourceSpace::new();
            sp.register("cpu", ResourceKind::Compute)
        };
        let session =
            SessionInstance::new(service, vec![ComponentBinding::new([rid])], 1.0).unwrap();

        let mut reg = AdvanceRegistry::new();
        reg.register(Arc::new(TimelineBroker::new(rid, 100.0)));
        // Pre-book 70 units over [10, 20).
        reg.get(rid)
            .unwrap()
            .reserve_over(SessionId(99), 70.0, t(10.0), t(20.0))
            .unwrap();

        // Planning for [12, 18): only level 1 fits (60 > 30).
        let view = reg.snapshot_window(t(12.0), t(18.0));
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        assert_eq!(plan_basic(&qrg).unwrap().rank, 1);
        // Planning for [20, 30): level 2 fits.
        let view = reg.snapshot_window(t(20.0), t(30.0));
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        let plan = plan_basic(&qrg).unwrap();
        assert_eq!(plan.rank, 2);
        // Book it.
        reg.reserve_all_over(SessionId(1), &plan.total_demand(), t(20.0), t(30.0))
            .unwrap();
        assert_eq!(reg.get(rid).unwrap().available_over(t(20.0), t(30.0)), 40.0);
    }
}
