//! The broker directory: snapshots and atomic multi-resource
//! reservation.

use crate::{Broker, ReserveError, SessionId, SimTime};
use qosr_core::AvailabilityView;
use qosr_model::{ResourceId, ResourceVector};
use rand::{Rng, RngExt};
use std::collections::HashMap;
use std::sync::Arc;

/// Directory of every Resource Broker in the environment, keyed by
/// [`ResourceId`].
///
/// Provides the two operations the QoSProxies need:
///
/// * **snapshots** — fresh ([`BrokerRegistry::snapshot`]) or deliberately
///   stale ([`BrokerRegistry::snapshot_stale`], §5.2.4) availability
///   views to plan against;
/// * **atomic multi-resource reservation**
///   ([`BrokerRegistry::reserve_all`]) — reserve a whole
///   [`ResourceVector`] all-or-nothing, rolling back on the first
///   rejection (the paper: "the failure to reserve one resource leads to
///   the reservation failure for the whole distributed service
///   session").
#[derive(Default)]
pub struct BrokerRegistry {
    brokers: HashMap<ResourceId, Arc<dyn Broker>>,
}

impl BrokerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a broker under its resource id, replacing any previous
    /// broker for that resource.
    pub fn register(&mut self, broker: Arc<dyn Broker>) {
        self.brokers.insert(broker.resource(), broker);
    }

    /// The broker for `id`, if registered.
    pub fn get(&self, id: ResourceId) -> Option<&Arc<dyn Broker>> {
        self.brokers.get(&id)
    }

    /// Number of registered brokers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// `true` when no brokers are registered.
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// Iterates over all brokers in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Broker>> {
        self.brokers.values()
    }

    /// An accurate availability snapshot of every registered resource at
    /// `now` (each broker's report also feeds its α window).
    pub fn snapshot(&self, now: SimTime) -> AvailabilityView {
        let mut view = AvailabilityView::new();
        for broker in self.brokers.values() {
            let r = broker.report(now);
            view.set_with_alpha(broker.resource(), r.avail, r.alpha);
        }
        view
    }

    /// An *inaccurate* snapshot (§5.2.4): each resource is observed with
    /// an independent age drawn uniformly from `[0, max_age]` time units,
    /// reading the availability that was true at that moment.
    pub fn snapshot_stale(
        &self,
        now: SimTime,
        max_age: f64,
        rng: &mut impl Rng,
    ) -> AvailabilityView {
        assert!(max_age >= 0.0, "max_age must be non-negative");
        let mut view = AvailabilityView::new();
        // Deterministic iteration for reproducibility under a fixed seed.
        let mut ids: Vec<ResourceId> = self.brokers.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let broker = &self.brokers[&id];
            let age = if max_age > 0.0 {
                rng.random_range(0.0..=max_age)
            } else {
                0.0
            };
            let r = broker.report_observed(now, now - age);
            view.set_with_alpha(id, r.avail, r.alpha);
        }
        view
    }

    /// Reserves the whole `demand` vector for `session`, all-or-nothing:
    /// on the first rejection every already-reserved resource is rolled
    /// back and the error is returned.
    pub fn reserve_all(
        &self,
        session: SessionId,
        demand: &ResourceVector,
        now: SimTime,
    ) -> Result<(), ReserveError> {
        let mut done: Vec<&Arc<dyn Broker>> = Vec::with_capacity(demand.len());
        for (id, amount) in demand.iter() {
            let Some(broker) = self.brokers.get(&id) else {
                for b in done {
                    b.release(session, now);
                }
                return Err(ReserveError::UnknownResource { resource: id });
            };
            if let Err(e) = broker.reserve(session, amount, now) {
                for b in done {
                    b.release(session, now);
                }
                return Err(e);
            }
            done.push(broker);
        }
        Ok(())
    }

    /// Releases everything `session` holds across all brokers, returning
    /// the total released amount.
    pub fn release_all(&self, session: SessionId, now: SimTime) -> f64 {
        self.brokers.values().map(|b| b.release(session, now)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalBroker, LocalBrokerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn registry(capacities: &[f64]) -> BrokerRegistry {
        let mut reg = BrokerRegistry::new();
        for (i, &c) in capacities.iter().enumerate() {
            reg.register(Arc::new(LocalBroker::new(
                ResourceId(i as u32),
                c,
                SimTime::ZERO,
                LocalBrokerConfig::default(),
            )));
        }
        reg
    }

    fn demand(pairs: &[(u32, f64)]) -> ResourceVector {
        ResourceVector::from_pairs(pairs.iter().map(|&(i, a)| (ResourceId(i), a))).unwrap()
    }

    #[test]
    fn snapshot_reports_all() {
        let reg = registry(&[100.0, 50.0]);
        let view = reg.snapshot(SimTime::new(1.0));
        assert_eq!(view.avail(ResourceId(0)), 100.0);
        assert_eq!(view.avail(ResourceId(1)), 50.0);
        assert_eq!(view.len(), 2);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn reserve_all_success_and_release() {
        let reg = registry(&[100.0, 50.0]);
        let s = SessionId(1);
        reg.reserve_all(s, &demand(&[(0, 60.0), (1, 20.0)]), SimTime::new(1.0))
            .unwrap();
        assert_eq!(reg.get(ResourceId(0)).unwrap().available(), 40.0);
        assert_eq!(reg.get(ResourceId(1)).unwrap().available(), 30.0);
        assert_eq!(reg.release_all(s, SimTime::new(2.0)), 80.0);
        assert_eq!(reg.get(ResourceId(0)).unwrap().available(), 100.0);
    }

    #[test]
    fn reserve_all_rolls_back_on_failure() {
        let reg = registry(&[100.0, 50.0]);
        let s = SessionId(1);
        // Second resource over-demands; first must be rolled back.
        let err = reg
            .reserve_all(s, &demand(&[(0, 60.0), (1, 70.0)]), SimTime::new(1.0))
            .unwrap_err();
        assert_eq!(err.resource(), ResourceId(1));
        assert_eq!(reg.get(ResourceId(0)).unwrap().available(), 100.0);
        assert_eq!(reg.get(ResourceId(1)).unwrap().available(), 50.0);
    }

    #[test]
    fn reserve_all_unknown_resource_rolls_back() {
        let reg = registry(&[100.0]);
        let err = reg
            .reserve_all(SessionId(1), &demand(&[(0, 10.0), (9, 1.0)]), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, ReserveError::UnknownResource { .. }));
        assert_eq!(reg.get(ResourceId(0)).unwrap().available(), 100.0);
    }

    #[test]
    fn stale_snapshot_sees_the_past() {
        let reg = registry(&[100.0]);
        reg.reserve_all(SessionId(1), &demand(&[(0, 80.0)]), SimTime::new(10.0))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // max_age 0 behaves like an accurate snapshot.
        let fresh = reg.snapshot_stale(SimTime::new(10.5), 0.0, &mut rng);
        assert_eq!(fresh.avail(ResourceId(0)), 20.0);
        // With a large max age, some draws land before the reservation.
        let mut saw_past = false;
        for _ in 0..64 {
            let v = reg.snapshot_stale(SimTime::new(11.0), 8.0, &mut rng);
            if v.avail(ResourceId(0)) == 100.0 {
                saw_past = true;
                break;
            }
        }
        assert!(saw_past, "stale snapshots never observed the past");
    }
}
