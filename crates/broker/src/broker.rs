//! The Resource Broker abstraction (§3).

use crate::{ReserveError, SessionId, SimTime};
use qosr_model::ResourceId;

/// One availability report, as returned to a querying QoSProxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerReport {
    /// Currently available (unreserved) amount `r^avail` — or, for stale
    /// observations, the amount that was available at the observation
    /// time.
    pub avail: f64,
    /// The *Availability Change Index* `α = r^avail / r^avail_avg`
    /// (eq. 5): the reported availability relative to the average of the
    /// reports over the broker's sliding window `T`. `α ≥ 1` means the
    /// trend is up or flat; `α < 1` means down. `1.0` when the broker has
    /// no report history yet.
    pub alpha: f64,
}

/// A Resource Broker: makes, enforces, and cancels reservations for one
/// resource, and reports its availability (§3).
///
/// The trait's operations mirror the paper's list — *"(1) reporting
/// current availability of the corresponding resource, (2) making and
/// enforcing reservations for this resource, and (3) terminating or
/// canceling reservations"* — plus the time-travel query
/// [`Broker::available_at`] needed by the observation-inaccuracy
/// experiment (§5.2.4).
pub trait Broker: Send + Sync {
    /// The resource this broker manages.
    fn resource(&self) -> ResourceId;

    /// The resource's total (reservable) capacity.
    fn capacity(&self) -> f64;

    /// Currently available (unreserved) amount.
    fn available(&self) -> f64;

    /// The amount that was available at time `t`, reconstructed from the
    /// broker's availability change log. Falls back to the oldest logged
    /// value for times before the log horizon.
    fn available_at(&self, t: SimTime) -> f64;

    /// Reports availability as observed at `observed_at` (≤ `now`),
    /// updating the α window with the reported value. Pass
    /// `observed_at == now` for an accurate, current observation; earlier
    /// times model observation inaccuracy (§5.2.4).
    fn report_observed(&self, now: SimTime, observed_at: SimTime) -> BrokerReport;

    /// Reports current availability (an accurate observation at `now`).
    fn report(&self, now: SimTime) -> BrokerReport {
        self.report_observed(now, now)
    }

    /// Reserves `amount` for `session`, enforcing `amount ≤ available()`.
    /// Reserving again for the same session accumulates.
    fn reserve(&self, session: SessionId, amount: f64, now: SimTime) -> Result<(), ReserveError>;

    /// Releases everything held by `session`, returning the released
    /// amount (0 when the session held nothing).
    fn release(&self, session: SessionId, now: SimTime) -> f64;

    /// Releases up to `amount` of `session`'s holding (partial
    /// cancellation), returning the amount actually released. Needed by
    /// composite brokers (e.g. end-to-end network paths) whose rollback
    /// must not disturb the session's other reservations on a shared
    /// underlying resource.
    fn release_amount(&self, session: SessionId, amount: f64, now: SimTime) -> f64;

    /// Amount currently reserved for `session`.
    fn reserved_for(&self, session: SessionId) -> f64;
}
