//! Rollback correctness of the two-phase reserve/commit dispatch.
//!
//! Every test drives the public `Coordinator` API against real brokers
//! and checks the exactly-once rollback guarantee: a failure at any hop
//! — injected commit failure, broker rejection mid-prepare, crashed
//! host — releases precisely the prepared segments, precisely once,
//! leaving every broker at full availability and any *other* holdings of
//! the same session untouched.

use qosr_broker::{
    Broker, BrokerRegistry, BrokerReport, Coordinator, EstablishError, EstablishOptions,
    FaultError, LocalBroker, LocalBrokerConfig, QosProxy, ReserveError, RetryPolicy, SessionId,
    SessionRequest, SimTime,
};
use qosr_model::{
    ComponentBinding, ComponentSpec, QosSchema, QosVector, ResourceId, ResourceKind, ResourceSpace,
    ResourceVector, ServiceSpec, SessionInstance, SlotSpec, TableTranslation,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A broker that counts `release`/`release_amount` calls, to prove the
/// rollback touches each prepared hop exactly once.
struct CountingBroker {
    inner: LocalBroker,
    releases: AtomicU64,
}

impl CountingBroker {
    fn new(resource: ResourceId, capacity: f64) -> Self {
        CountingBroker {
            inner: LocalBroker::new(
                resource,
                capacity,
                SimTime::ZERO,
                LocalBrokerConfig::default(),
            ),
            releases: AtomicU64::new(0),
        }
    }

    fn releases(&self) -> u64 {
        self.releases.load(Ordering::SeqCst)
    }
}

impl Broker for CountingBroker {
    fn resource(&self) -> ResourceId {
        self.inner.resource()
    }
    fn capacity(&self) -> f64 {
        self.inner.capacity()
    }
    fn available(&self) -> f64 {
        self.inner.available()
    }
    fn available_at(&self, t: SimTime) -> f64 {
        self.inner.available_at(t)
    }
    fn report_observed(&self, now: SimTime, observed_at: SimTime) -> BrokerReport {
        self.inner.report_observed(now, observed_at)
    }
    fn reserve(&self, session: SessionId, amount: f64, now: SimTime) -> Result<(), ReserveError> {
        self.inner.reserve(session, amount, now)
    }
    fn release(&self, session: SessionId, now: SimTime) -> f64 {
        self.releases.fetch_add(1, Ordering::SeqCst);
        self.inner.release(session, now)
    }
    fn release_amount(&self, session: SessionId, amount: f64, now: SimTime) -> f64 {
        self.releases.fetch_add(1, Ordering::SeqCst);
        self.inner.release_amount(session, amount, now)
    }
    fn reserved_for(&self, session: SessionId) -> f64 {
        self.inner.reserved_for(session)
    }
}

/// A broker that over-reports its availability for the first `lies`
/// reports, then tells the truth. Reservations always run against the
/// true state, so a plan built on the lie fails at prepare — the
/// deterministic stand-in for a mid-flight availability change.
struct LyingBroker {
    inner: LocalBroker,
    reported: f64,
    lies: AtomicU64,
}

impl LyingBroker {
    fn new(resource: ResourceId, capacity: f64, reported: f64, lies: u64) -> Self {
        LyingBroker {
            inner: LocalBroker::new(
                resource,
                capacity,
                SimTime::ZERO,
                LocalBrokerConfig::default(),
            ),
            reported,
            lies: AtomicU64::new(lies),
        }
    }
}

impl Broker for LyingBroker {
    fn resource(&self) -> ResourceId {
        self.inner.resource()
    }
    fn capacity(&self) -> f64 {
        self.inner.capacity()
    }
    fn available(&self) -> f64 {
        self.inner.available()
    }
    fn available_at(&self, t: SimTime) -> f64 {
        self.inner.available_at(t)
    }
    fn report_observed(&self, now: SimTime, observed_at: SimTime) -> BrokerReport {
        let truth = self.inner.report_observed(now, observed_at);
        if self
            .lies
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            BrokerReport {
                avail: self.reported,
                alpha: truth.alpha,
            }
        } else {
            truth
        }
    }
    fn reserve(&self, session: SessionId, amount: f64, now: SimTime) -> Result<(), ReserveError> {
        self.inner.reserve(session, amount, now)
    }
    fn release(&self, session: SessionId, now: SimTime) -> f64 {
        self.inner.release(session, now)
    }
    fn release_amount(&self, session: SessionId, amount: f64, now: SimTime) -> f64 {
        self.inner.release_amount(session, amount, now)
    }
    fn reserved_for(&self, session: SessionId) -> f64 {
        self.inner.reserved_for(session)
    }
}

/// Three hosts A/B/C, one CPU each, a three-component chain with one QoS
/// level demanding 10 CPU units per component.
struct ThreeHosts {
    coordinator: Coordinator,
    session: SessionInstance,
    cpus: Vec<Arc<CountingBroker>>,
}

fn three_hosts() -> ThreeHosts {
    let mut space = ResourceSpace::new();
    let schema = QosSchema::new("q", ["x"]);
    let v = |x: u32| QosVector::new(schema.clone(), [x]);

    let mut proxies = Vec::new();
    let mut cpus = Vec::new();
    let mut bindings = Vec::new();
    let mut components = Vec::new();
    for (i, host) in ["A", "B", "C"].iter().enumerate() {
        let cpu = space.register(format!("{host}.cpu"), ResourceKind::Compute);
        let broker = Arc::new(CountingBroker::new(cpu, 100.0));
        let mut reg = BrokerRegistry::new();
        reg.register(broker.clone());
        proxies.push(Arc::new(QosProxy::new(*host, reg)));
        cpus.push(broker);
        bindings.push(ComponentBinding::new([cpu]));
        let input = if i == 0 { v(0) } else { v(1) };
        components.push(ComponentSpec::new(
            format!("c{i}"),
            vec![input],
            vec![v(1)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 1, 1)
                    .entry(0, 0, [10.0])
                    .build(),
            ),
        ));
    }
    let service = Arc::new(ServiceSpec::chain("svc", components, vec![1]).unwrap());
    let session = SessionInstance::new(service, bindings, 1.0).unwrap();
    ThreeHosts {
        coordinator: Coordinator::new(proxies),
        session,
        cpus,
    }
}

#[test]
fn commit_failure_rolls_back_every_prepared_hop_exactly_once() {
    // All three hops prepare; the commit to B (hop 1) fails. The
    // transaction must abort with all three prepared segments released
    // exactly once each.
    for victim in ["A", "B", "C"] {
        let w = three_hosts();
        let mut rng = StdRng::seed_from_u64(1);
        w.coordinator.faults().script_commit_failures(victim, 1);
        let err = w
            .coordinator
            .establish_request(
                &SessionRequest::new(w.session.clone()),
                SimTime::new(1.0),
                &mut rng,
            )
            .into_result()
            .unwrap_err();
        match err {
            EstablishError::Fault(FaultError::CommitFailed { host }) => assert_eq!(host, victim),
            other => panic!("expected CommitFailed on {victim}, got {other}"),
        }
        for cpu in &w.cpus {
            assert_eq!(cpu.releases(), 1, "victim {victim}: not exactly once");
            assert_eq!(cpu.available(), cpu.capacity(), "victim {victim}: leaked");
        }
        let snap = w.coordinator.counters().snapshot();
        assert_eq!(snap.rollbacks, 1);
        assert_eq!(snap.faults_injected, 1);
        assert_eq!(snap.fault_failures, 1);
        assert_eq!(w.coordinator.stats().established, 0);
    }
}

#[test]
fn prepare_failure_releases_only_the_prepared_prefix() {
    // B over-reports availability once: planning places demand it cannot
    // hold, so prepare fails at hop 1 — only hop 0 (A) was prepared and
    // only it may be released.
    let mut space = ResourceSpace::new();
    let schema = QosSchema::new("q", ["x"]);
    let v = |x: u32| QosVector::new(schema.clone(), [x]);
    let cpu_a = space.register("A.cpu", ResourceKind::Compute);
    let cpu_b = space.register("B.cpu", ResourceKind::Compute);
    let cpu_c = space.register("C.cpu", ResourceKind::Compute);

    let a = Arc::new(CountingBroker::new(cpu_a, 100.0));
    let b = Arc::new(LyingBroker::new(cpu_b, 5.0, 100.0, u64::MAX));
    let c = Arc::new(CountingBroker::new(cpu_c, 100.0));
    let mut reg_a = BrokerRegistry::new();
    reg_a.register(a.clone());
    let mut reg_b = BrokerRegistry::new();
    reg_b.register(b.clone());
    let mut reg_c = BrokerRegistry::new();
    reg_c.register(c.clone());
    let coordinator = Coordinator::new(vec![
        Arc::new(QosProxy::new("A", reg_a)),
        Arc::new(QosProxy::new("B", reg_b)),
        Arc::new(QosProxy::new("C", reg_c)),
    ]);

    let comp = |i: usize, input: QosVector| {
        ComponentSpec::new(
            format!("c{i}"),
            vec![input],
            vec![v(1)],
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(
                TableTranslation::builder(1, 1, 1)
                    .entry(0, 0, [10.0])
                    .build(),
            ),
        )
    };
    let service = Arc::new(
        ServiceSpec::chain(
            "svc",
            vec![comp(0, v(0)), comp(1, v(1)), comp(2, v(1))],
            vec![1],
        )
        .unwrap(),
    );
    let session = SessionInstance::new(
        service,
        vec![
            ComponentBinding::new([cpu_a]),
            ComponentBinding::new([cpu_b]),
            ComponentBinding::new([cpu_c]),
        ],
        1.0,
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(2);
    let err = coordinator
        .establish_request(
            &SessionRequest::new(session.clone()),
            SimTime::new(1.0),
            &mut rng,
        )
        .into_result()
        .unwrap_err();
    match err {
        EstablishError::Reserve(e) => assert_eq!(e.resource(), cpu_b),
        other => panic!("expected a reserve rejection, got {other}"),
    }
    // Hop 0 was prepared and rolled back exactly once; hop 2 was never
    // reached, so its broker saw no release at all.
    assert_eq!(a.releases(), 1);
    assert_eq!(c.releases(), 0);
    assert_eq!(a.available(), 100.0);
    assert_eq!(b.available(), 5.0);
    let snap = coordinator.counters().snapshot();
    assert_eq!(snap.rollbacks, 1);
    assert_eq!(snap.reservations_rejected, 1);
}

#[test]
fn retry_absorbs_a_transient_commit_failure() {
    let w = three_hosts();
    let mut rng = StdRng::seed_from_u64(3);
    w.coordinator.faults().script_commit_failures("B", 1);
    let options = EstablishOptions {
        retry: RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        },
        ..EstablishOptions::default()
    };
    let est = w
        .coordinator
        .establish_request(
            &SessionRequest::new(w.session.clone()).options(options.clone()),
            SimTime::new(1.0),
            &mut rng,
        )
        .into_result()
        .unwrap();
    for cpu in &w.cpus {
        assert_eq!(cpu.reserved_for(est.id), 10.0);
        // The failed first attempt rolled back exactly once.
        assert_eq!(cpu.releases(), 1);
    }
    let snap = w.coordinator.counters().snapshot();
    assert_eq!(snap.retries, 1);
    assert_eq!(snap.rollbacks, 1);
    assert_eq!(snap.faults_injected, 1);
    assert_eq!(snap.fault_failures, 0);
    assert_eq!(w.coordinator.stats().established, 1);
    w.coordinator.terminate(&est, SimTime::new(2.0));
    for cpu in &w.cpus {
        assert_eq!(cpu.available(), cpu.capacity());
    }
}

#[test]
fn retry_after_prepare_failure_degrades_gracefully() {
    // Two hosts, a two-level chain (level 2 needs 40, level 1 needs 10).
    // B reports 100 available exactly once but truly holds 20: the first
    // attempt plans rank 2 and dies at prepare; the retry re-collects,
    // sees the truth, and commits rank 1 — a degraded establishment.
    let mut space = ResourceSpace::new();
    let schema = QosSchema::new("q", ["x"]);
    let v = |x: u32| QosVector::new(schema.clone(), [x]);
    let cpu_a = space.register("A.cpu", ResourceKind::Compute);
    let cpu_b = space.register("B.cpu", ResourceKind::Compute);
    let a = Arc::new(CountingBroker::new(cpu_a, 100.0));
    let b = Arc::new(LyingBroker::new(cpu_b, 20.0, 100.0, 1));
    let mut reg_a = BrokerRegistry::new();
    reg_a.register(a.clone());
    let mut reg_b = BrokerRegistry::new();
    reg_b.register(b.clone());
    let coordinator = Coordinator::new(vec![
        Arc::new(QosProxy::new("A", reg_a)),
        Arc::new(QosProxy::new("B", reg_b)),
    ]);

    let c0 = ComponentSpec::new(
        "c0",
        vec![v(0)],
        vec![v(1), v(2)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(1, 2, 1)
                .entry(0, 0, [10.0])
                .entry(0, 1, [40.0])
                .build(),
        ),
    );
    let c1 = ComponentSpec::new(
        "c1",
        vec![v(1), v(2)],
        vec![v(1), v(2)],
        vec![SlotSpec::new("cpu", ResourceKind::Compute)],
        Arc::new(
            TableTranslation::builder(2, 2, 1)
                .entry(0, 0, [10.0])
                .entry(1, 1, [40.0])
                .build(),
        ),
    );
    let service = Arc::new(ServiceSpec::chain("svc", vec![c0, c1], vec![1, 2]).unwrap());
    let session = SessionInstance::new(
        service,
        vec![
            ComponentBinding::new([cpu_a]),
            ComponentBinding::new([cpu_b]),
        ],
        1.0,
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(4);
    let options = EstablishOptions {
        retry: RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        },
        ..EstablishOptions::default()
    };
    let est = coordinator
        .establish_request(
            &SessionRequest::new(session.clone()).options(options.clone()),
            SimTime::new(1.0),
            &mut rng,
        )
        .into_result()
        .unwrap();
    assert_eq!(est.plan.rank, 1, "should have degraded to rank 1");
    let snap = coordinator.counters().snapshot();
    assert_eq!(snap.degraded_commits, 1);
    assert_eq!(snap.retries, 1);
    assert_eq!(snap.rollbacks, 1);
    assert_eq!(b.reserved_for(est.id), 10.0);
    assert_eq!(a.reserved_for(est.id), 10.0);
}

#[test]
fn down_host_is_unplannable_until_recovery() {
    let w = three_hosts();
    let mut rng = StdRng::seed_from_u64(5);
    w.coordinator.crash_host("B", SimTime::new(1.0));
    // B's resources go unobserved, so no feasible plan exists (the chain
    // has no alternative binding) — the failure is a *plan* rejection,
    // not a reservation leak.
    let err = w
        .coordinator
        .establish_request(
            &SessionRequest::new(w.session.clone()),
            SimTime::new(2.0),
            &mut rng,
        )
        .into_result()
        .unwrap_err();
    assert!(matches!(err, EstablishError::Plan(_)));
    for cpu in &w.cpus {
        assert_eq!(cpu.available(), cpu.capacity());
        assert_eq!(cpu.releases(), 0);
    }
    // Recovery re-admits the capacity.
    w.coordinator.recover_host("B", SimTime::new(3.0));
    let est = w
        .coordinator
        .establish_request(
            &SessionRequest::new(w.session.clone()),
            SimTime::new(4.0),
            &mut rng,
        )
        .into_result()
        .unwrap();
    assert_eq!(est.plan.rank, 1);
}

#[test]
fn network_path_rollback_spares_shared_link_holdings() {
    // The qosr-net partial-release case: the session already holds path
    // P2 across a shared link; a failed multi-resource reservation that
    // prepared path P1 (also over the shared link) must roll P1 back
    // without disturbing P2's hold.
    use qosr_net::{LinkBroker, LinkId, NetworkBroker};

    let link = |i: u32, capacity: f64| {
        Arc::new(LinkBroker::new(
            LinkId(i as usize),
            ResourceId(i),
            capacity,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        ))
    };
    let l0 = link(0, 100.0);
    let shared = link(1, 100.0);
    let l2 = link(2, 100.0);
    let p1 = Arc::new(NetworkBroker::new(
        ResourceId(10),
        vec![l0.clone(), shared.clone()],
        3.0,
    ));
    let p2 = Arc::new(NetworkBroker::new(
        ResourceId(11),
        vec![shared.clone(), l2.clone()],
        3.0,
    ));
    let cpu = Arc::new(LocalBroker::new(
        ResourceId(200),
        10.0,
        SimTime::ZERO,
        LocalBrokerConfig::default(),
    ));
    let mut reg = BrokerRegistry::new();
    reg.register(p1.clone());
    reg.register(p2.clone());
    reg.register(cpu.clone());

    let s = SessionId(1);
    p2.reserve(s, 20.0, SimTime::new(1.0)).unwrap();
    assert_eq!(shared.available(), 80.0);

    // Demand iterates in id order: P1 (10) prepares first, then the CPU
    // (200) over-demands and forces the rollback.
    let demand =
        ResourceVector::from_pairs([(ResourceId(10), 30.0), (ResourceId(200), 50.0)]).unwrap();
    let err = reg.reserve_all(s, &demand, SimTime::new(2.0)).unwrap_err();
    assert_eq!(err.resource(), ResourceId(200));

    // P1 fully rolled back; P2's 20 on the shared link untouched.
    assert_eq!(p1.reserved_for(s), 0.0);
    assert_eq!(l0.available(), 100.0);
    assert_eq!(shared.available(), 80.0);
    assert_eq!(shared.reserved_for(s), 20.0);
    assert_eq!(p2.reserved_for(s), 20.0);
}
