//! Component-local resource slots.
//!
//! A service component's translation function (§2.2) produces resource
//! demands for *abstract* resources — "the CPU of whatever host I run
//! on", "the network path from my upstream component's host to mine".
//! We call these abstract positions **slots**. A [`SlotVector`] holds the
//! demand per slot; at session-establishment time a
//! [`crate::ComponentBinding`] maps each slot to a concrete
//! [`crate::ResourceId`], turning slot demands into a
//! [`crate::ResourceVector`].

use crate::ModelError;
use std::fmt;

/// Demand per component-local slot, aligned with the component's
/// [`crate::SlotSpec`] list (`amounts[i]` is the demand on slot `i`).
///
/// Unlike [`crate::ResourceVector`], zero amounts are kept (the vector is
/// dense over the component's slots) — a zero entry simply binds to no
/// demand after instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotVector {
    amounts: Box<[f64]>,
}

impl SlotVector {
    /// Creates a slot vector, validating the amounts.
    pub fn new(amounts: impl Into<Vec<f64>>) -> Result<Self, ModelError> {
        let amounts: Vec<f64> = amounts.into();
        for &a in &amounts {
            if !a.is_finite() || a < 0.0 {
                return Err(ModelError::InvalidAmount { value: a });
            }
        }
        Ok(SlotVector {
            amounts: amounts.into_boxed_slice(),
        })
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.amounts.len()
    }

    /// `true` when the component has no slots.
    pub fn is_empty(&self) -> bool {
        self.amounts.is_empty()
    }

    /// Demand of slot `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.amounts[i]
    }

    /// The raw amounts.
    pub fn amounts(&self) -> &[f64] {
        &self.amounts
    }

    /// Iterator over `(slot index, amount)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.amounts.iter().copied().enumerate()
    }

    /// Returns a copy with every amount multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> Result<Self, ModelError> {
        SlotVector::new(
            self.amounts
                .iter()
                .map(|a| a * factor)
                .collect::<Vec<f64>>(),
        )
    }
}

impl fmt::Display for SlotVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.amounts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = SlotVector::new([1.0, 0.0, 2.5]).unwrap();
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.get(0), 1.0);
        assert_eq!(v.get(1), 0.0); // zeros are kept (dense over slots)
        assert_eq!(v.amounts(), &[1.0, 0.0, 2.5]);
        assert_eq!(
            v.iter().collect::<Vec<_>>(),
            vec![(0, 1.0), (1, 0.0), (2, 2.5)]
        );
    }

    #[test]
    fn rejects_invalid() {
        assert!(SlotVector::new([-1.0]).is_err());
        assert!(SlotVector::new([f64::NAN]).is_err());
        assert!(SlotVector::new([f64::INFINITY]).is_err());
        assert!(SlotVector::new([]).unwrap().is_empty());
    }

    #[test]
    fn scaled() {
        let v = SlotVector::new([2.0, 4.0]).unwrap();
        let s = v.scaled(2.5).unwrap();
        assert_eq!(s.amounts(), &[5.0, 10.0]);
        // Scaling that overflows to infinity is rejected.
        assert!(SlotVector::new([f64::MAX]).unwrap().scaled(2.0).is_err());
    }

    #[test]
    fn display() {
        let v = SlotVector::new([1.0, 2.0]).unwrap();
        assert_eq!(v.to_string(), "[1, 2]");
    }
}
