//! Error type for model construction and validation.

use std::fmt;

/// Errors raised while constructing or validating model objects.
///
/// All constructors in this crate validate their inputs eagerly so that a
/// [`crate::ServiceSpec`] that exists is always internally consistent; the
/// runtime algorithm in `qosr-core` relies on this.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Two QoS vectors with different schemas were combined or compared.
    SchemaMismatch {
        /// Schema name of the left operand.
        left: String,
        /// Schema name of the right operand.
        right: String,
    },
    /// A QoS vector was created with the wrong number of parameter values.
    ArityMismatch {
        /// Schema the vector was typed with.
        schema: String,
        /// Number of parameters the schema declares.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// The dependency graph contains a cycle.
    CyclicDependency,
    /// The dependency graph is not weakly connected.
    DisconnectedGraph,
    /// The dependency graph has `count` source nodes (components without
    /// predecessors); exactly one is required.
    SourceCount {
        /// Number of sources found.
        count: usize,
    },
    /// The dependency graph has `count` sink nodes (components without
    /// successors); exactly one is required.
    SinkCount {
        /// Number of sinks found.
        count: usize,
    },
    /// An edge referenced a component index out of range.
    ComponentIndex {
        /// The offending index.
        index: usize,
        /// Number of components in the service.
        len: usize,
    },
    /// The number of components does not match the dependency graph size.
    GraphSizeMismatch {
        /// Components supplied.
        components: usize,
        /// Nodes in the dependency graph.
        graph: usize,
    },
    /// The source component must have exactly one input QoS level (the
    /// original quality of the source data, the QRG source node).
    SourceInputLevels {
        /// Component name.
        component: String,
        /// Number of input levels found.
        count: usize,
    },
    /// A component declares no input or output QoS levels.
    EmptyLevels {
        /// Component name.
        component: String,
    },
    /// An input QoS level of a downstream component cannot be expressed as
    /// the concatenation of one output level from each predecessor.
    Undecomposable {
        /// Component whose input level could not be decomposed.
        component: String,
        /// Index of the offending input level.
        level: usize,
    },
    /// An input QoS level decomposes ambiguously (two predecessor output
    /// levels are identical), so the equivalence edges of the QRG would be
    /// ill-defined.
    AmbiguousDecomposition {
        /// Component whose input level decomposes ambiguously.
        component: String,
        /// Index of the offending input level.
        level: usize,
    },
    /// The sink ranking does not cover the sink component's output levels
    /// exactly once each, or contains duplicate ranks.
    InvalidRanking {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A translation table entry was set with the wrong slot count, or an
    /// index was out of range.
    TranslationShape {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A session binding does not match the service's components/slots.
    BindingShape {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A resource amount was negative or not finite.
    InvalidAmount {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::SchemaMismatch { left, right } => {
                write!(f, "QoS schema mismatch: {left:?} vs {right:?}")
            }
            ModelError::ArityMismatch {
                schema,
                expected,
                got,
            } => write!(
                f,
                "QoS vector for schema {schema:?} needs {expected} values, got {got}"
            ),
            ModelError::CyclicDependency => write!(f, "dependency graph contains a cycle"),
            ModelError::DisconnectedGraph => write!(f, "dependency graph is not connected"),
            ModelError::SourceCount { count } => {
                write!(
                    f,
                    "dependency graph must have exactly 1 source, found {count}"
                )
            }
            ModelError::SinkCount { count } => {
                write!(
                    f,
                    "dependency graph must have exactly 1 sink, found {count}"
                )
            }
            ModelError::ComponentIndex { index, len } => {
                write!(f, "component index {index} out of range (len {len})")
            }
            ModelError::GraphSizeMismatch { components, graph } => write!(
                f,
                "{components} components supplied but dependency graph has {graph} nodes"
            ),
            ModelError::SourceInputLevels { component, count } => write!(
                f,
                "source component {component:?} must have exactly 1 input level, found {count}"
            ),
            ModelError::EmptyLevels { component } => {
                write!(f, "component {component:?} declares no QoS levels")
            }
            ModelError::Undecomposable { component, level } => write!(
                f,
                "input level {level} of component {component:?} is not a concatenation \
                 of predecessor output levels"
            ),
            ModelError::AmbiguousDecomposition { component, level } => write!(
                f,
                "input level {level} of component {component:?} decomposes ambiguously"
            ),
            ModelError::InvalidRanking { reason } => write!(f, "invalid sink ranking: {reason}"),
            ModelError::TranslationShape { reason } => {
                write!(f, "invalid translation table: {reason}")
            }
            ModelError::BindingShape { reason } => write!(f, "invalid session binding: {reason}"),
            ModelError::InvalidAmount { value } => {
                write!(f, "resource amount must be finite and >= 0, got {value}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::SchemaMismatch {
            left: "a".into(),
            right: "b".into(),
        };
        let s = e.to_string();
        assert!(s.contains("\"a\"") && s.contains("\"b\""), "{s}");

        let e = ModelError::SourceInputLevels {
            component: "sender".into(),
            count: 3,
        };
        assert!(e.to_string().contains("sender"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::CyclicDependency);
    }
}
