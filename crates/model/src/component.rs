//! Service components (§2.1–2.2).

use crate::{QosVector, ResourceKind, SlotVector, Translation};
use std::fmt;
use std::sync::Arc;

/// Declares one abstract resource position of a component — e.g. "CPU of
/// the host I run on" or "bandwidth of the path from my upstream
/// component". Bound to a concrete [`crate::ResourceId`] per session by a
/// [`crate::ComponentBinding`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSpec {
    /// Slot name, unique within the component.
    pub name: String,
    /// Expected resource kind; bindings are checked against it.
    pub kind: ResourceKind,
}

impl SlotSpec {
    /// Creates a slot spec.
    pub fn new(name: impl Into<String>, kind: ResourceKind) -> Self {
        SlotSpec {
            name: name.into(),
            kind,
        }
    }
}

/// A service component: a functional unit participating in service
/// delivery, with discrete input/output QoS level sets and a translation
/// function mapping `(Q^in, Q^out)` pairs to resource demands.
#[derive(Clone)]
pub struct ComponentSpec {
    name: String,
    input_levels: Vec<QosVector>,
    output_levels: Vec<QosVector>,
    slots: Vec<SlotSpec>,
    translation: Arc<dyn Translation>,
}

impl ComponentSpec {
    /// Creates a component spec. Validation of levels against the rest of
    /// the service happens in [`crate::ServiceSpec::new`].
    pub fn new(
        name: impl Into<String>,
        input_levels: Vec<QosVector>,
        output_levels: Vec<QosVector>,
        slots: Vec<SlotSpec>,
        translation: Arc<dyn Translation>,
    ) -> Self {
        ComponentSpec {
            name: name.into(),
            input_levels,
            output_levels,
            slots,
            translation,
        }
    }

    /// Component name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component's possible input QoS levels (`Q^in`).
    pub fn input_levels(&self) -> &[QosVector] {
        &self.input_levels
    }

    /// The component's possible output QoS levels (`Q^out`).
    pub fn output_levels(&self) -> &[QosVector] {
        &self.output_levels
    }

    /// The component's abstract resource slots.
    pub fn slots(&self) -> &[SlotSpec] {
        &self.slots
    }

    /// The translation function.
    pub fn translation(&self) -> &Arc<dyn Translation> {
        &self.translation
    }

    /// Shorthand for `self.translation().translate(qin, qout)`.
    pub fn translate(&self, qin: usize, qout: usize) -> Option<SlotVector> {
        self.translation.translate(qin, qout)
    }
}

impl fmt::Debug for ComponentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentSpec")
            .field("name", &self.name)
            .field("input_levels", &self.input_levels.len())
            .field("output_levels", &self.output_levels.len())
            .field("slots", &self.slots)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QosSchema, TableTranslation};

    #[test]
    fn component_accessors() {
        let schema = QosSchema::new("q", ["level"]);
        let levels = vec![
            QosVector::new(schema.clone(), [1]),
            QosVector::new(schema.clone(), [2]),
        ];
        let t = TableTranslation::builder(2, 2, 1)
            .entry(0, 0, [1.0])
            .entry(1, 1, [2.0])
            .build();
        let c = ComponentSpec::new(
            "proxy",
            levels.clone(),
            levels.clone(),
            vec![SlotSpec::new("cpu", ResourceKind::Compute)],
            Arc::new(t),
        );
        assert_eq!(c.name(), "proxy");
        assert_eq!(c.input_levels().len(), 2);
        assert_eq!(c.output_levels().len(), 2);
        assert_eq!(c.slots()[0].name, "cpu");
        assert_eq!(c.translate(0, 0).unwrap().amounts(), &[1.0]);
        assert!(c.translate(0, 1).is_none());
        assert!(format!("{c:?}").contains("proxy"));
    }
}
