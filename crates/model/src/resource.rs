//! Reservable resources and resource-requirement vectors (§2.2).

use crate::ModelError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The kind of a reservable resource, mirroring the resource types the
/// paper's runtime architecture brokers (§3): host-local resources (CPU,
/// memory, disk I/O bandwidth), single network links (managed by
/// RSVP-style per-link bandwidth brokers), and end-to-end network paths
/// (the higher level of the paper's two-level network reservation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU capacity of a host.
    Compute,
    /// Memory of a host.
    Memory,
    /// Disk I/O bandwidth of a host.
    DiskIo,
    /// Bandwidth of a single network link.
    NetworkLink,
    /// End-to-end network bandwidth between two hosts (min over the links
    /// of the route; reserved all-or-nothing across them).
    NetworkPath,
    /// Anything else a deployment wants to broker.
    Other,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Compute => "compute",
            ResourceKind::Memory => "memory",
            ResourceKind::DiskIo => "disk-io",
            ResourceKind::NetworkLink => "link",
            ResourceKind::NetworkPath => "path",
            ResourceKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Opaque identifier of one reservable resource within a
/// [`ResourceSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Metadata registered for one resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceInfo {
    /// Unique human-readable name, e.g. `"H1.cpu"` or `"L3"`.
    pub name: String,
    /// What kind of resource this is.
    pub kind: ResourceKind,
}

/// Registry of all reservable resources in an environment.
///
/// A `ResourceSpace` assigns dense [`ResourceId`]s, which every other
/// layer (brokers, QRG construction, simulation metrics) uses as the
/// resource key.
#[derive(Debug, Default, Clone)]
pub struct ResourceSpace {
    entries: Vec<ResourceInfo>,
    by_name: HashMap<String, ResourceId>,
}

impl ResourceSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource, returning its id. Registering a name twice
    /// returns the existing id (the kind must match).
    ///
    /// # Panics
    /// Panics if the name was previously registered with a different kind.
    pub fn register(&mut self, name: impl Into<String>, kind: ResourceKind) -> ResourceId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            assert_eq!(
                self.entries[id.index()].kind,
                kind,
                "resource {name:?} re-registered with a different kind"
            );
            return id;
        }
        let id = ResourceId(u32::try_from(self.entries.len()).expect("too many resources"));
        self.entries.push(ResourceInfo {
            name: name.clone(),
            kind,
        });
        self.by_name.insert(name, id);
        id
    }

    /// Looks up a resource by name.
    pub fn id(&self, name: &str) -> Option<ResourceId> {
        self.by_name.get(name).copied()
    }

    /// Metadata of a resource.
    pub fn info(&self, id: ResourceId) -> &ResourceInfo {
        &self.entries[id.index()]
    }

    /// Convenience accessor for a resource's name.
    pub fn name(&self, id: ResourceId) -> &str {
        &self.entries[id.index()].name
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no resources have been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over all ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ResourceId> + '_ {
        (0..self.entries.len() as u32).map(ResourceId)
    }

    /// Iterator over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &ResourceInfo)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, info)| (ResourceId(i as u32), info))
    }
}

/// A resource-requirement (or availability) vector `R = [r_1 … r_M]`.
///
/// Entries are kept sorted by [`ResourceId`] with no duplicates; amounts
/// are finite and strictly positive (zero demands are dropped on
/// construction, since requiring zero of a resource is the same as not
/// requiring it). The comparison semantics follow the paper: `Ra <= Rb`
/// iff every resource amount of `Ra` is `<=` the corresponding amount in
/// `Rb` (resources absent from a vector count as zero demand).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVector {
    entries: Vec<(ResourceId, f64)>,
}

impl ResourceVector {
    /// The empty vector (no demand).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a vector from `(resource, amount)` pairs; duplicate
    /// resources are summed, zero amounts dropped.
    pub fn from_pairs(
        pairs: impl IntoIterator<Item = (ResourceId, f64)>,
    ) -> Result<Self, ModelError> {
        let mut entries: Vec<(ResourceId, f64)> = Vec::new();
        for (id, amount) in pairs {
            if !amount.is_finite() || amount < 0.0 {
                return Err(ModelError::InvalidAmount { value: amount });
            }
            entries.push((id, amount));
        }
        entries.sort_by_key(|&(id, _)| id);
        let mut merged: Vec<(ResourceId, f64)> = Vec::with_capacity(entries.len());
        for (id, amount) in entries {
            match merged.last_mut() {
                Some((last_id, last_amount)) if *last_id == id => *last_amount += amount,
                _ => merged.push((id, amount)),
            }
        }
        merged.retain(|&(_, a)| a > 0.0);
        Ok(ResourceVector { entries: merged })
    }

    /// Demand for one resource (zero if absent).
    pub fn get(&self, id: ResourceId) -> f64 {
        match self.entries.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Number of resources with non-zero demand.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the vector demands nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over `(resource, amount)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// `true` iff every demand in `self` is `<=` the matching amount in
    /// `other` (the paper's `R_a <= R_b`).
    pub fn fits_within(&self, other: &ResourceVector) -> bool {
        self.entries.iter().all(|&(id, a)| a <= other.get(id))
    }

    /// Returns `self` scaled by `factor` (used for "fat" sessions whose
    /// demand is N× the base requirement).
    ///
    /// # Panics
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> ResourceVector {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and >= 0, got {factor}"
        );
        let mut entries = self.entries.clone();
        entries.retain_mut(|(_, a)| {
            *a *= factor;
            *a > 0.0
        });
        ResourceVector { entries }
    }

    /// Element-wise sum of two vectors.
    pub fn add(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector::from_pairs(self.iter().chain(other.iter()))
            .expect("summing valid vectors cannot fail")
    }

    /// The largest ratio `demand / availability(resource)` over the
    /// demanded resources, together with the resource attaining it — the
    /// building block of the paper's contention index ψ (eq. 2) and edge
    /// weight Ψ (eq. 3). Returns `None` for an empty vector. A zero or
    /// negative availability yields `f64::INFINITY` for that resource.
    pub fn max_ratio_over<F: Fn(ResourceId) -> f64>(
        &self,
        availability: F,
    ) -> Option<(ResourceId, f64)> {
        let mut best: Option<(ResourceId, f64)> = None;
        for &(id, demand) in &self.entries {
            let avail = availability(id);
            let ratio = if avail > 0.0 {
                demand / avail
            } else {
                f64::INFINITY
            };
            match best {
                Some((_, b)) if b >= ratio => {}
                _ => best = Some((id, ratio)),
            }
        }
        best
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (id, amount)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}: {amount}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> ResourceId {
        ResourceId(i)
    }

    #[test]
    fn space_registration() {
        let mut space = ResourceSpace::new();
        let cpu = space.register("H1.cpu", ResourceKind::Compute);
        let link = space.register("L1", ResourceKind::NetworkLink);
        assert_ne!(cpu, link);
        assert_eq!(space.id("H1.cpu"), Some(cpu));
        assert_eq!(space.name(link), "L1");
        assert_eq!(space.info(cpu).kind, ResourceKind::Compute);
        assert_eq!(space.len(), 2);
        // Re-registration returns the same id.
        assert_eq!(space.register("H1.cpu", ResourceKind::Compute), cpu);
        assert_eq!(space.len(), 2);
        assert_eq!(space.ids().count(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn space_kind_conflict_panics() {
        let mut space = ResourceSpace::new();
        space.register("x", ResourceKind::Compute);
        space.register("x", ResourceKind::Memory);
    }

    #[test]
    fn vector_merges_and_sorts() {
        let v = ResourceVector::from_pairs([(rid(3), 1.0), (rid(1), 2.0), (rid(3), 4.0)]).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(rid(1)), 2.0);
        assert_eq!(v.get(rid(3)), 5.0);
        assert_eq!(v.get(rid(0)), 0.0);
        let ids: Vec<_> = v.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![rid(1), rid(3)]);
    }

    #[test]
    fn vector_drops_zero_and_rejects_bad() {
        let v = ResourceVector::from_pairs([(rid(0), 0.0), (rid(1), 1.0)]).unwrap();
        assert_eq!(v.len(), 1);
        assert!(ResourceVector::from_pairs([(rid(0), -1.0)]).is_err());
        assert!(ResourceVector::from_pairs([(rid(0), f64::NAN)]).is_err());
        assert!(ResourceVector::from_pairs([(rid(0), f64::INFINITY)]).is_err());
    }

    #[test]
    fn fits_within_semantics() {
        let req = ResourceVector::from_pairs([(rid(0), 5.0), (rid(2), 3.0)]).unwrap();
        let avail_ok = ResourceVector::from_pairs([(rid(0), 5.0), (rid(2), 10.0)]).unwrap();
        let avail_bad = ResourceVector::from_pairs([(rid(0), 4.9), (rid(2), 10.0)]).unwrap();
        let avail_missing = ResourceVector::from_pairs([(rid(0), 9.0)]).unwrap();
        assert!(req.fits_within(&avail_ok));
        assert!(!req.fits_within(&avail_bad));
        assert!(!req.fits_within(&avail_missing));
        assert!(ResourceVector::empty().fits_within(&ResourceVector::empty()));
    }

    #[test]
    fn scaled_and_add() {
        let v = ResourceVector::from_pairs([(rid(0), 2.0), (rid(1), 3.0)]).unwrap();
        let s = v.scaled(10.0);
        assert_eq!(s.get(rid(0)), 20.0);
        assert_eq!(s.get(rid(1)), 30.0);
        assert!(v.scaled(0.0).is_empty());

        let w = ResourceVector::from_pairs([(rid(1), 1.0), (rid(2), 7.0)]).unwrap();
        let sum = v.add(&w);
        assert_eq!(sum.get(rid(0)), 2.0);
        assert_eq!(sum.get(rid(1)), 4.0);
        assert_eq!(sum.get(rid(2)), 7.0);
    }

    #[test]
    fn max_ratio() {
        let v = ResourceVector::from_pairs([(rid(0), 5.0), (rid(1), 10.0)]).unwrap();
        // avail: r0 -> 50 (ratio .1), r1 -> 20 (ratio .5)
        let (id, psi) = v
            .max_ratio_over(|id| if id == rid(0) { 50.0 } else { 20.0 })
            .unwrap();
        assert_eq!(id, rid(1));
        assert!((psi - 0.5).abs() < 1e-12);
        // Zero availability -> infinite contention.
        let (_, psi) = v.max_ratio_over(|_| 0.0).unwrap();
        assert!(psi.is_infinite());
        assert!(ResourceVector::empty().max_ratio_over(|_| 1.0).is_none());
    }

    #[test]
    fn display() {
        let v = ResourceVector::from_pairs([(rid(0), 2.0)]).unwrap();
        assert_eq!(v.to_string(), "{r0: 2}");
    }
}
