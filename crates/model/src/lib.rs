//! # qosr-model — the component-based QoS-Resource Model
//!
//! This crate implements the model of section 2 of *"QoS and
//! Contention-Aware Multi-Resource Reservation"* (Xu, Nahrstedt,
//! Wichadakul; HPDC 2000):
//!
//! * **QoS vectors** ([`QosVector`]) — multi-dimensional, discrete-valued,
//!   partially ordered application-level quality descriptions, typed by a
//!   shared [`QosSchema`].
//! * **Resource vectors** ([`ResourceVector`]) — per-resource amounts over
//!   a [`ResourceSpace`] of reservable resources (CPU, memory, disk I/O
//!   bandwidth, network links, end-to-end network paths).
//! * **Translation functions** ([`Translation`]) — the per-component
//!   "plug-in" functions `T_c : Q^in × Q^out → R` (eq. 1 of the paper)
//!   mapping a (input QoS, output QoS) pair to the resource demand needed
//!   to produce that output from that input. Demands are expressed per
//!   component-local **slot** ([`SlotVector`]) so that one service
//!   definition can be instantiated on any concrete placement.
//! * **Service components** ([`ComponentSpec`]) and **dependency graphs**
//!   ([`DependencyGraph`]) — chains or general DAGs with fan-out
//!   (output shared by several successors) and fan-in (input is the
//!   concatenation of all predecessors' outputs, §4.3.2).
//! * **Service specifications** ([`ServiceSpec`]) — validated bundles of
//!   components + dependency graph + a linear ranking of end-to-end QoS
//!   levels, and **session instances** ([`SessionInstance`]) that bind the
//!   abstract slots to concrete resources and apply per-session demand
//!   scaling ("fat" sessions in the paper's evaluation).
//!
//! The runtime algorithm that consumes this model lives in `qosr-core`.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use qosr_model::*;
//!
//! // A one-parameter QoS space: frame rate.
//! let schema = QosSchema::new("video", ["frame_rate"]);
//! let lo = QosVector::new(schema.clone(), [10]);
//! let hi = QosVector::new(schema.clone(), [30]);
//! assert!(lo.dominated_by(&hi).unwrap());
//!
//! // A single component producing either level from a fixed source.
//! let src = QosVector::new(schema.clone(), [30]);
//! let translation = TableTranslation::builder(1, 2, 1)
//!     .entry(0, 0, [4.0])   // produce `lo`: 4 units of slot 0
//!     .entry(0, 1, [9.0])   // produce `hi`: 9 units of slot 0
//!     .build();
//! let sender = ComponentSpec::new(
//!     "sender",
//!     vec![src],
//!     vec![lo, hi],
//!     vec![SlotSpec::new("cpu", ResourceKind::Compute)],
//!     Arc::new(translation),
//! );
//! let service = ServiceSpec::chain("clip", vec![sender], vec![1, 2]).unwrap();
//! assert_eq!(service.sink_rank_order(), vec![1, 0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod error;
mod graph;
mod qos;
mod resource;
mod service;
mod session;
mod slots;
mod translation;

pub use component::{ComponentSpec, SlotSpec};
pub use error::ModelError;
pub use graph::DependencyGraph;
pub use qos::{QosSchema, QosVector};
pub use resource::{ResourceId, ResourceInfo, ResourceKind, ResourceSpace, ResourceVector};
pub use service::{LevelLink, ServiceSpec};
pub use session::{ComponentBinding, SessionInstance};
pub use slots::SlotVector;
pub use translation::{FnTranslation, TableTranslation, TableTranslationBuilder, Translation};
