//! Validated service specifications.

use crate::{ComponentSpec, DependencyGraph, ModelError, QosVector};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic source of [`ServiceSpec::uid`] values.
static NEXT_SERVICE_UID: AtomicU64 = AtomicU64::new(1);

/// For one input QoS level of a component: which output level of each
/// predecessor (in [`DependencyGraph::preds`] order) it is the
/// concatenation of.
///
/// For a single-predecessor component this is a 1-element list — the
/// paper's plain equivalence of `Q^out` and `Q^in` across an edge. For a
/// fan-in component it records the decomposition of the concatenated
/// input (§4.3.2).
pub type LevelLink = Vec<usize>;

/// A complete, validated distributed-service definition: components, the
/// dependency graph connecting them, and a linear ranking of the
/// end-to-end QoS levels (the sink component's output levels).
///
/// Construction validates all the structural invariants the runtime
/// algorithm (in `qosr-core`) relies on, so a `ServiceSpec` that exists
/// is always safe to plan against:
///
/// * graph size matches the component list, exactly one source and sink;
/// * the source component has exactly one input level (the original
///   quality of the source data — the QRG source node);
/// * every input level of every downstream component decomposes uniquely
///   into one output level per predecessor;
/// * the sink ranking is a strict linear order over the sink's output
///   levels (the paper assumes end-to-end QoS levels "can be ranked in a
///   linear order, based on a user's preference").
pub struct ServiceSpec {
    /// Process-unique identity of this spec value (see [`ServiceSpec::uid`]).
    uid: u64,
    name: String,
    components: Vec<ComponentSpec>,
    graph: DependencyGraph,
    sink_ranking: Vec<u32>,
    /// `links[v][i]` = decomposition of input level `i` of component `v`
    /// over `graph.preds(v)`; empty list of levels for the source.
    links: Vec<Vec<LevelLink>>,
}

impl ServiceSpec {
    /// Builds and validates a service.
    ///
    /// `sink_ranking[l]` is the rank of the sink component's output level
    /// `l`; **higher rank = better QoS**, and all ranks must be distinct.
    pub fn new(
        name: impl Into<String>,
        components: Vec<ComponentSpec>,
        graph: DependencyGraph,
        sink_ranking: Vec<u32>,
    ) -> Result<Self, ModelError> {
        if components.len() != graph.len() {
            return Err(ModelError::GraphSizeMismatch {
                components: components.len(),
                graph: graph.len(),
            });
        }
        for c in &components {
            if c.input_levels().is_empty() || c.output_levels().is_empty() {
                return Err(ModelError::EmptyLevels {
                    component: c.name().to_owned(),
                });
            }
        }
        let source = graph.source();
        if components[source].input_levels().len() != 1 {
            return Err(ModelError::SourceInputLevels {
                component: components[source].name().to_owned(),
                count: components[source].input_levels().len(),
            });
        }

        // Decompose every downstream input level over its predecessors.
        let mut links: Vec<Vec<LevelLink>> = Vec::with_capacity(components.len());
        for (v, comp) in components.iter().enumerate() {
            let preds = graph.preds(v);
            if preds.is_empty() {
                links.push(Vec::new());
                continue;
            }
            // Single-predecessor components must share the predecessor's
            // output schema exactly; fan-in components are checked by
            // total arity (their schema is a concatenation).
            if preds.len() == 1 {
                let u = preds[0];
                let up_schema = components[u].output_levels()[0].schema();
                for lvl in comp.input_levels() {
                    if lvl.schema() != up_schema {
                        return Err(ModelError::SchemaMismatch {
                            left: up_schema.name().to_owned(),
                            right: lvl.schema().name().to_owned(),
                        });
                    }
                }
            }
            let arities: Vec<usize> = preds
                .iter()
                .map(|&u| components[u].output_levels()[0].schema().arity())
                .collect();

            let mut comp_links = Vec::with_capacity(comp.input_levels().len());
            for (i, lvl) in comp.input_levels().iter().enumerate() {
                let segments =
                    lvl.split_values(&arities)
                        .ok_or_else(|| ModelError::Undecomposable {
                            component: comp.name().to_owned(),
                            level: i,
                        })?;
                let mut link = Vec::with_capacity(preds.len());
                for (&u, seg) in preds.iter().zip(segments) {
                    let matches: Vec<usize> = components[u]
                        .output_levels()
                        .iter()
                        .enumerate()
                        .filter(|(_, out)| out.values() == seg)
                        .map(|(j, _)| j)
                        .collect();
                    match matches.as_slice() {
                        [] => {
                            return Err(ModelError::Undecomposable {
                                component: comp.name().to_owned(),
                                level: i,
                            })
                        }
                        [j] => link.push(*j),
                        _ => {
                            return Err(ModelError::AmbiguousDecomposition {
                                component: comp.name().to_owned(),
                                level: i,
                            })
                        }
                    }
                }
                comp_links.push(link);
            }
            links.push(comp_links);
        }

        let sink_levels = components[graph.sink()].output_levels().len();
        if sink_ranking.len() != sink_levels {
            return Err(ModelError::InvalidRanking {
                reason: format!(
                    "ranking has {} entries, sink has {} output levels",
                    sink_ranking.len(),
                    sink_levels
                ),
            });
        }
        let mut seen = sink_ranking.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(ModelError::InvalidRanking {
                reason: "duplicate ranks (the order must be strict)".to_owned(),
            });
        }

        Ok(ServiceSpec {
            uid: NEXT_SERVICE_UID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            components,
            graph,
            sink_ranking,
            links,
        })
    }

    /// A process-unique identity for this spec value, assigned at
    /// construction. Because a `ServiceSpec` is immutable once built,
    /// the uid is a sound memoization key for structures derived purely
    /// from the spec (e.g. cached QRG skeletons in `qosr-core`).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Convenience constructor for chain services (the basic-algorithm
    /// case): components are linked `0 → 1 → …` in list order.
    pub fn chain(
        name: impl Into<String>,
        components: Vec<ComponentSpec>,
        sink_ranking: Vec<u32>,
    ) -> Result<Self, ModelError> {
        let graph = DependencyGraph::chain(components.len())?;
        ServiceSpec::new(name, components, graph, sink_ranking)
    }

    /// Service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The participating components.
    pub fn components(&self) -> &[ComponentSpec] {
        &self.components
    }

    /// One component by index.
    pub fn component(&self, i: usize) -> &ComponentSpec {
        &self.components[i]
    }

    /// The dependency graph.
    pub fn graph(&self) -> &DependencyGraph {
        &self.graph
    }

    /// Rank of each sink output level (higher = better).
    pub fn sink_ranking(&self) -> &[u32] {
        &self.sink_ranking
    }

    /// Sink output level indices ordered best-first.
    pub fn sink_rank_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.sink_ranking.len()).collect();
        order.sort_by_key(|&l| std::cmp::Reverse(self.sink_ranking[l]));
        order
    }

    /// The end-to-end QoS levels (the sink component's output levels).
    pub fn end_to_end_levels(&self) -> &[QosVector] {
        self.components[self.graph.sink()].output_levels()
    }

    /// The decomposition of input level `i` of component `v` over
    /// `graph().preds(v)`: `link(v, i)[k]` is the output-level index of
    /// predecessor `preds(v)[k]` that feeds this input. Empty for the
    /// source component.
    pub fn link(&self, v: usize, i: usize) -> &[usize] {
        &self.links[v][i]
    }

    /// Input levels of component `v` fed by output level `j` of
    /// predecessor `u` — the equivalence edges of the QRG (§4.1.1).
    pub fn inputs_fed_by(&self, u: usize, j: usize, v: usize) -> Vec<usize> {
        let Some(pos) = self.graph.preds(v).iter().position(|&p| p == u) else {
            return Vec::new();
        };
        self.links[v]
            .iter()
            .enumerate()
            .filter(|(_, link)| link[pos] == j)
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Debug for ServiceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceSpec")
            .field("name", &self.name)
            .field("components", &self.components)
            .field("graph", &self.graph)
            .field("sink_ranking", &self.sink_ranking)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QosSchema, ResourceKind, SlotSpec, TableTranslation};
    use std::sync::Arc;

    fn comp(
        name: &str,
        input: Vec<QosVector>,
        output: Vec<QosVector>,
        n_slots: usize,
    ) -> ComponentSpec {
        let n_in = input.len();
        let n_out = output.len();
        let mut b = TableTranslation::builder(n_in, n_out, n_slots);
        for i in 0..n_in {
            for o in 0..n_out {
                b = b.entry(i, o, vec![1.0; n_slots]);
            }
        }
        let slots = (0..n_slots)
            .map(|s| SlotSpec::new(format!("s{s}"), ResourceKind::Compute))
            .collect();
        ComponentSpec::new(name, input, output, slots, Arc::new(b.build()))
    }

    fn lv(schema: &Arc<QosSchema>, v: u32) -> QosVector {
        QosVector::new(schema.clone(), [v])
    }

    #[test]
    fn valid_chain() {
        let s = QosSchema::new("q", ["x"]);
        let sender = comp("sender", vec![lv(&s, 9)], vec![lv(&s, 1), lv(&s, 2)], 1);
        let player = comp(
            "player",
            vec![lv(&s, 1), lv(&s, 2)],
            vec![lv(&s, 1), lv(&s, 2), lv(&s, 3)],
            1,
        );
        let svc = ServiceSpec::chain("svc", vec![sender, player], vec![10, 20, 30]).unwrap();
        assert_eq!(svc.name(), "svc");
        assert_eq!(svc.sink_rank_order(), vec![2, 1, 0]);
        assert_eq!(svc.end_to_end_levels().len(), 3);
        // Equivalence: player's input level 0 (value 1) comes from
        // sender's output level 0 (value 1).
        assert_eq!(svc.link(1, 0), &[0]);
        assert_eq!(svc.link(1, 1), &[1]);
        assert_eq!(svc.inputs_fed_by(0, 0, 1), vec![0]);
        assert_eq!(svc.inputs_fed_by(0, 1, 1), vec![1]);
        // Non-adjacent query yields nothing.
        assert!(svc.inputs_fed_by(1, 0, 0).is_empty());
    }

    #[test]
    fn fan_in_decomposition() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3 with component 3 fan-in.
        let s = QosSchema::new("q", ["x"]);
        let c0 = comp("src", vec![lv(&s, 9)], vec![lv(&s, 1)], 1);
        let c1 = comp("a", vec![lv(&s, 1)], vec![lv(&s, 10), lv(&s, 11)], 1);
        let c2 = comp("b", vec![lv(&s, 1)], vec![lv(&s, 20)], 1);
        // Fan-in inputs: concat of (c1 out, c2 out).
        let fanin_inputs = vec![
            QosVector::concat([&lv(&s, 10), &lv(&s, 20)]),
            QosVector::concat([&lv(&s, 11), &lv(&s, 20)]),
        ];
        let c3 = comp("merge", fanin_inputs, vec![lv(&s, 5)], 1);
        let graph = DependencyGraph::new(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let svc = ServiceSpec::new("dag", vec![c0, c1, c2, c3], graph, vec![0]).unwrap();
        // preds(3) == [1, 2]; input 0 = (c1 out 0, c2 out 0).
        assert_eq!(svc.link(3, 0), &[0, 0]);
        assert_eq!(svc.link(3, 1), &[1, 0]);
        assert_eq!(svc.inputs_fed_by(1, 1, 3), vec![1]);
        assert_eq!(svc.inputs_fed_by(2, 0, 3), vec![0, 1]);
    }

    #[test]
    fn rejects_source_with_many_inputs() {
        let s = QosSchema::new("q", ["x"]);
        let sender = comp("sender", vec![lv(&s, 1), lv(&s, 2)], vec![lv(&s, 1)], 1);
        let player = comp("player", vec![lv(&s, 1)], vec![lv(&s, 1)], 1);
        let err = ServiceSpec::chain("svc", vec![sender, player], vec![0]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::SourceInputLevels { count: 2, .. }
        ));
    }

    #[test]
    fn rejects_undecomposable_input() {
        let s = QosSchema::new("q", ["x"]);
        let sender = comp("sender", vec![lv(&s, 9)], vec![lv(&s, 1)], 1);
        // Player accepts value 7, which sender never outputs.
        let player = comp("player", vec![lv(&s, 7)], vec![lv(&s, 1)], 1);
        let err = ServiceSpec::chain("svc", vec![sender, player], vec![0]).unwrap_err();
        assert!(matches!(err, ModelError::Undecomposable { level: 0, .. }));
    }

    #[test]
    fn rejects_ambiguous_decomposition() {
        let s = QosSchema::new("q", ["x"]);
        // Sender has two identical output levels.
        let sender = comp("sender", vec![lv(&s, 9)], vec![lv(&s, 1), lv(&s, 1)], 1);
        let player = comp("player", vec![lv(&s, 1)], vec![lv(&s, 1)], 1);
        let err = ServiceSpec::chain("svc", vec![sender, player], vec![0]).unwrap_err();
        assert!(matches!(err, ModelError::AmbiguousDecomposition { .. }));
    }

    #[test]
    fn rejects_schema_mismatch_on_edge() {
        let s1 = QosSchema::new("a", ["x"]);
        let s2 = QosSchema::new("b", ["x"]);
        let sender = comp("sender", vec![lv(&s1, 9)], vec![lv(&s1, 1)], 1);
        let player = comp("player", vec![lv(&s2, 1)], vec![lv(&s2, 1)], 1);
        let err = ServiceSpec::chain("svc", vec![sender, player], vec![0]).unwrap_err();
        assert!(matches!(err, ModelError::SchemaMismatch { .. }));
    }

    #[test]
    fn rejects_bad_rankings() {
        let s = QosSchema::new("q", ["x"]);
        let sender = comp("sender", vec![lv(&s, 9)], vec![lv(&s, 1)], 1);
        let player = comp("player", vec![lv(&s, 1)], vec![lv(&s, 1), lv(&s, 2)], 1);
        // Wrong length.
        assert!(matches!(
            ServiceSpec::chain("svc", vec![sender.clone(), player.clone()], vec![0]),
            Err(ModelError::InvalidRanking { .. })
        ));
        // Duplicate ranks.
        assert!(matches!(
            ServiceSpec::chain("svc", vec![sender, player], vec![3, 3]),
            Err(ModelError::InvalidRanking { .. })
        ));
    }

    #[test]
    fn rejects_size_mismatch_and_empty_levels() {
        let s = QosSchema::new("q", ["x"]);
        let sender = comp("sender", vec![lv(&s, 9)], vec![lv(&s, 1)], 1);
        let graph = DependencyGraph::chain(2).unwrap();
        assert!(matches!(
            ServiceSpec::new("svc", vec![sender.clone()], graph, vec![0]),
            Err(ModelError::GraphSizeMismatch { .. })
        ));

        let empty = ComponentSpec::new(
            "empty",
            vec![],
            vec![],
            vec![],
            Arc::new(TableTranslation::builder(0, 0, 0).build()),
        );
        assert!(matches!(
            ServiceSpec::chain("svc", vec![empty], vec![]),
            Err(ModelError::EmptyLevels { .. })
        ));
    }
}
