//! Translation functions `T_c : Q^in × Q^out → R` (§2.2, eq. 1).
//!
//! A translation function answers: *given an input QoS, in order to
//! achieve an output QoS, what is the component's resource requirement?*
//! Returning [`None`] means the component cannot produce that output from
//! that input at all — no QRG edge is created for the pair (§4.1.1).
//!
//! Translation functions are supplied by the service-component developer
//! as "plug-ins"; this module offers the two common forms:
//! [`TableTranslation`] (an explicit table over level indices — the form
//! used throughout the paper's evaluation) and [`FnTranslation`]
//! (an arbitrary closure).

use crate::{ModelError, SlotVector};
use std::fmt;

/// A per-component translation function over *level indices*.
///
/// Levels are identified by their index into the component's
/// `input_levels` / `output_levels` lists; implementations that need the
/// actual [`crate::QosVector`]s can capture them at construction time.
pub trait Translation: Send + Sync + fmt::Debug {
    /// Resource demand (per component slot) to produce output level
    /// `qout` from input level `qin`, or `None` when the pair is
    /// infeasible for this component.
    fn translate(&self, qin: usize, qout: usize) -> Option<SlotVector>;
}

/// Table-driven translation over `(input level, output level)` pairs.
///
/// This is the natural encoding for the discrete QoS level sets of the
/// paper (figure 10): a dense `n_in × n_out` table of optional slot
/// demands.
#[derive(Debug, Clone, PartialEq)]
pub struct TableTranslation {
    n_in: usize,
    n_out: usize,
    n_slots: usize,
    cells: Vec<Option<SlotVector>>,
}

impl TableTranslation {
    /// Starts building a table for `n_in` input levels, `n_out` output
    /// levels, and `n_slots` resource slots.
    pub fn builder(n_in: usize, n_out: usize, n_slots: usize) -> TableTranslationBuilder {
        TableTranslationBuilder {
            table: TableTranslation {
                n_in,
                n_out,
                n_slots,
                cells: vec![None; n_in * n_out],
            },
            error: None,
        }
    }

    /// Number of input levels.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of output levels.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Number of resource slots.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Iterator over the populated `(qin, qout, demand)` cells, in
    /// row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, &SlotVector)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter_map(move |(i, cell)| cell.as_ref().map(|v| (i / self.n_out, i % self.n_out, v)))
    }

    /// Rebuilds the table with every populated cell's demand transformed
    /// by `f(qin, qout, slot, amount) -> amount`. Used e.g. by the
    /// requirement-diversity experiments (§5.2.5) to compress the spread
    /// of requirement values while preserving their mean.
    pub fn map_amounts(
        &self,
        mut f: impl FnMut(usize, usize, usize, f64) -> f64,
    ) -> Result<TableTranslation, ModelError> {
        let mut out = self.clone();
        for (i, cell) in out.cells.iter_mut().enumerate() {
            if let Some(v) = cell {
                let (qin, qout) = (i / self.n_out, i % self.n_out);
                let amounts: Vec<f64> = v.iter().map(|(slot, a)| f(qin, qout, slot, a)).collect();
                *v = SlotVector::new(amounts)?;
            }
        }
        Ok(out)
    }

    fn cell_index(&self, qin: usize, qout: usize) -> Option<usize> {
        (qin < self.n_in && qout < self.n_out).then_some(qin * self.n_out + qout)
    }
}

impl Translation for TableTranslation {
    fn translate(&self, qin: usize, qout: usize) -> Option<SlotVector> {
        self.cell_index(qin, qout)
            .and_then(|i| self.cells[i].clone())
    }
}

/// Builder for [`TableTranslation`]; errors are deferred to
/// [`TableTranslationBuilder::try_build`] so entries can be chained.
#[derive(Debug)]
pub struct TableTranslationBuilder {
    table: TableTranslation,
    error: Option<ModelError>,
}

impl TableTranslationBuilder {
    /// Declares that output level `qout` is producible from input level
    /// `qin` at the given per-slot demand.
    pub fn entry(mut self, qin: usize, qout: usize, demand: impl Into<Vec<f64>>) -> Self {
        if self.error.is_some() {
            return self;
        }
        let demand: Vec<f64> = demand.into();
        if demand.len() != self.table.n_slots {
            self.error = Some(ModelError::TranslationShape {
                reason: format!(
                    "entry ({qin}, {qout}) has {} slot amounts, table declares {}",
                    demand.len(),
                    self.table.n_slots
                ),
            });
            return self;
        }
        let Some(i) = self.table.cell_index(qin, qout) else {
            self.error = Some(ModelError::TranslationShape {
                reason: format!(
                    "entry ({qin}, {qout}) out of range for {}x{} table",
                    self.table.n_in, self.table.n_out
                ),
            });
            return self;
        };
        match SlotVector::new(demand) {
            Ok(v) => self.table.cells[i] = Some(v),
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Finishes the table, returning any deferred error.
    pub fn try_build(self) -> Result<TableTranslation, ModelError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.table),
        }
    }

    /// Finishes the table.
    ///
    /// # Panics
    /// Panics if any chained [`TableTranslationBuilder::entry`] call was
    /// malformed; use [`TableTranslationBuilder::try_build`] to handle the
    /// error instead.
    pub fn build(self) -> TableTranslation {
        self.try_build().expect("malformed translation table")
    }
}

/// Closure-backed translation function, for components whose resource
/// demand is computed rather than tabulated.
pub struct FnTranslation {
    name: &'static str,
    f: Box<dyn Fn(usize, usize) -> Option<SlotVector> + Send + Sync>,
}

impl FnTranslation {
    /// Wraps a closure; `name` is used for `Debug` output.
    pub fn new(
        name: &'static str,
        f: impl Fn(usize, usize) -> Option<SlotVector> + Send + Sync + 'static,
    ) -> Self {
        FnTranslation {
            name,
            f: Box::new(f),
        }
    }
}

impl fmt::Debug for FnTranslation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnTranslation({})", self.name)
    }
}

impl Translation for FnTranslation {
    fn translate(&self, qin: usize, qout: usize) -> Option<SlotVector> {
        (self.f)(qin, qout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_basics() {
        let t = TableTranslation::builder(2, 3, 2)
            .entry(0, 0, [1.0, 2.0])
            .entry(1, 2, [3.0, 4.0])
            .build();
        assert_eq!(t.n_in(), 2);
        assert_eq!(t.n_out(), 3);
        assert_eq!(t.n_slots(), 2);
        assert_eq!(t.translate(0, 0).unwrap().amounts(), &[1.0, 2.0]);
        assert_eq!(t.translate(1, 2).unwrap().amounts(), &[3.0, 4.0]);
        assert!(t.translate(0, 1).is_none());
        assert!(t.translate(5, 0).is_none()); // out of range -> infeasible
        let entries: Vec<_> = t.entries().map(|(i, o, _)| (i, o)).collect();
        assert_eq!(entries, vec![(0, 0), (1, 2)]);
    }

    #[test]
    fn builder_rejects_bad_shapes() {
        assert!(TableTranslation::builder(1, 1, 2)
            .entry(0, 0, [1.0])
            .try_build()
            .is_err());
        assert!(TableTranslation::builder(1, 1, 1)
            .entry(0, 1, [1.0])
            .try_build()
            .is_err());
        assert!(TableTranslation::builder(1, 1, 1)
            .entry(0, 0, [-2.0])
            .try_build()
            .is_err());
        // First error wins, later valid entries don't clear it.
        assert!(TableTranslation::builder(1, 1, 1)
            .entry(0, 9, [1.0])
            .entry(0, 0, [1.0])
            .try_build()
            .is_err());
    }

    #[test]
    fn map_amounts() {
        let t = TableTranslation::builder(1, 2, 1)
            .entry(0, 0, [2.0])
            .entry(0, 1, [4.0])
            .build();
        let doubled = t.map_amounts(|_, _, _, a| a * 2.0).unwrap();
        assert_eq!(doubled.translate(0, 0).unwrap().amounts(), &[4.0]);
        assert_eq!(doubled.translate(0, 1).unwrap().amounts(), &[8.0]);
        // Producing an invalid amount is an error.
        assert!(t.map_amounts(|_, _, _, _| -1.0).is_err());
    }

    #[test]
    fn fn_translation() {
        let t = FnTranslation::new("diag", |i, o| {
            (i == o).then(|| SlotVector::new([i as f64 + 1.0]).unwrap())
        });
        assert_eq!(t.translate(1, 1).unwrap().amounts(), &[2.0]);
        assert!(t.translate(0, 1).is_none());
        assert_eq!(format!("{t:?}"), "FnTranslation(diag)");
    }
}
