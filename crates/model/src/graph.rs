//! Dependency graphs of service components (§2.2, extended to DAGs in
//! §4.3.2).
//!
//! Nodes are component indices; an edge `u → v` states that the output of
//! `u` is (part of) the input of `v`, and that `u`'s `Q^out` levels feed
//! `v`'s `Q^in` levels. The graph must be a weakly connected DAG with
//! exactly one source (the component consuming the original source data)
//! and one sink (the component whose `Q^out` is the end-to-end QoS).

use crate::ModelError;

/// A validated dependency DAG over `n` service components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    topo: Vec<usize>,
    source: usize,
    sink: usize,
}

impl DependencyGraph {
    /// Builds and validates a dependency graph.
    ///
    /// Requirements: every edge in range, no self-loops or duplicate
    /// edges, acyclic, weakly connected, exactly one source and one sink.
    /// A single-component service (`n == 1`, no edges) is allowed.
    pub fn new(n: usize, edges: impl Into<Vec<(usize, usize)>>) -> Result<Self, ModelError> {
        let mut edges: Vec<(usize, usize)> = edges.into();
        if n == 0 {
            return Err(ModelError::SourceCount { count: 0 });
        }
        for &(u, v) in &edges {
            let bad = if u >= n {
                Some(u)
            } else if v >= n {
                Some(v)
            } else {
                None
            };
            if let Some(index) = bad {
                return Err(ModelError::ComponentIndex { index, len: n });
            }
            if u == v {
                return Err(ModelError::CyclicDependency);
            }
        }
        edges.sort_unstable();
        edges.dedup();

        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for &(u, v) in &edges {
            succs[u].push(v);
            preds[v].push(u);
        }
        // Predecessor order matters: it defines the concatenation order of
        // a fan-in component's input. Keep it sorted for determinism.
        for p in &mut preds {
            p.sort_unstable();
        }
        for s in &mut succs {
            s.sort_unstable();
        }

        // Kahn's algorithm: topological order + cycle detection.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(u);
            for &v in &succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if topo.len() != n {
            return Err(ModelError::CyclicDependency);
        }

        // Weak connectivity via union-find.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(u, v) in &edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
            }
        }
        let root = find(&mut parent, 0);
        if (0..n).any(|v| find(&mut parent, v) != root) {
            return Err(ModelError::DisconnectedGraph);
        }

        let sources: Vec<usize> = (0..n).filter(|&v| preds[v].is_empty()).collect();
        let sinks: Vec<usize> = (0..n).filter(|&v| succs[v].is_empty()).collect();
        if sources.len() != 1 {
            return Err(ModelError::SourceCount {
                count: sources.len(),
            });
        }
        if sinks.len() != 1 {
            return Err(ModelError::SinkCount { count: sinks.len() });
        }

        Ok(DependencyGraph {
            n,
            edges,
            preds,
            succs,
            topo,
            source: sources[0],
            sink: sinks[0],
        })
    }

    /// A chain `0 → 1 → … → n-1`, the implicit shape assumed by the basic
    /// algorithm (§4.1).
    pub fn chain(n: usize) -> Result<Self, ModelError> {
        DependencyGraph::new(n, (1..n).map(|i| (i - 1, i)).collect::<Vec<_>>())
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for a (degenerate) empty graph — never constructible, kept
    /// for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The deduplicated, sorted edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Predecessors of `v`, sorted ascending. The order defines the
    /// concatenation order of a fan-in component's input QoS.
    pub fn preds(&self, v: usize) -> &[usize] {
        &self.preds[v]
    }

    /// Successors of `u`, sorted ascending.
    pub fn succs(&self, u: usize) -> &[usize] {
        &self.succs[u]
    }

    /// A topological order of the components.
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// The unique source component.
    pub fn source(&self) -> usize {
        self.source
    }

    /// The unique sink component (its `Q^out` is the end-to-end QoS).
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// `true` when `v` has more than one predecessor (a *fan-in*
    /// component, §4.3.2: its `Q^in` is the concatenation of its
    /// predecessors' `Q^out`).
    pub fn is_fan_in(&self, v: usize) -> bool {
        self.preds[v].len() > 1
    }

    /// `true` when `u` has more than one successor (a *fan-out*
    /// component, §4.3.2: its `Q^out` feeds several components).
    pub fn is_fan_out(&self, u: usize) -> bool {
        self.succs[u].len() > 1
    }

    /// `true` when the graph is a simple chain (every component has at
    /// most one predecessor and successor) — the case the basic algorithm
    /// handles exactly; DAGs require the two-pass heuristic.
    pub fn is_chain(&self) -> bool {
        (0..self.n).all(|v| self.preds[v].len() <= 1 && self.succs[v].len() <= 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = DependencyGraph::chain(3).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.source(), 0);
        assert_eq!(g.sink(), 2);
        assert!(g.is_chain());
        assert!(!g.is_fan_in(1));
        assert!(!g.is_fan_out(1));
        assert_eq!(g.topo_order(), &[0, 1, 2]);
        assert_eq!(g.preds(1), &[0]);
        assert_eq!(g.succs(1), &[2]);
    }

    #[test]
    fn single_component() {
        let g = DependencyGraph::chain(1).unwrap();
        assert_eq!(g.source(), 0);
        assert_eq!(g.sink(), 0);
        assert!(g.is_chain());
    }

    #[test]
    fn diamond_dag() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3 : fan-out at 0, fan-in at 3.
        let g = DependencyGraph::new(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert!(!g.is_chain());
        assert!(g.is_fan_out(0));
        assert!(g.is_fan_in(3));
        assert_eq!(g.source(), 0);
        assert_eq!(g.sink(), 3);
        assert_eq!(g.preds(3), &[1, 2]);
        // Topological order is valid.
        let pos: Vec<usize> = {
            let mut pos = vec![0; 4];
            for (i, &v) in g.topo_order().iter().enumerate() {
                pos[v] = i;
            }
            pos
        };
        for &(u, v) in g.edges() {
            assert!(pos[u] < pos[v]);
        }
    }

    #[test]
    fn rejects_cycles() {
        assert_eq!(
            DependencyGraph::new(2, vec![(0, 1), (1, 0)]),
            Err(ModelError::CyclicDependency)
        );
        assert_eq!(
            DependencyGraph::new(1, vec![(0, 0)]),
            Err(ModelError::CyclicDependency)
        );
    }

    #[test]
    fn rejects_disconnected() {
        // Two separate chains: 0->1, 2->3.
        assert_eq!(
            DependencyGraph::new(4, vec![(0, 1), (2, 3)]),
            Err(ModelError::DisconnectedGraph)
        );
    }

    #[test]
    fn rejects_multi_source_or_sink() {
        // 0 -> 2 <- 1 : two sources (but connected).
        assert_eq!(
            DependencyGraph::new(3, vec![(0, 2), (1, 2)]),
            Err(ModelError::SourceCount { count: 2 })
        );
        // 1 <- 0 -> 2 : two sinks.
        assert_eq!(
            DependencyGraph::new(3, vec![(0, 1), (0, 2)]),
            Err(ModelError::SinkCount { count: 2 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            DependencyGraph::new(2, vec![(0, 5)]),
            Err(ModelError::ComponentIndex { index: 5, len: 2 })
        );
    }

    #[test]
    fn duplicate_edges_deduped() {
        let g = DependencyGraph::new(2, vec![(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.edges(), &[(0, 1)]);
        assert_eq!(g.preds(1), &[0]);
    }

    #[test]
    fn zero_components_rejected() {
        assert!(DependencyGraph::new(0, vec![]).is_err());
    }
}
