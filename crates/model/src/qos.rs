//! QoS schemas and partially ordered, discrete-valued QoS vectors (§2.2).

use crate::ModelError;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Names the application-level QoS parameters of one QoS space.
///
/// In the paper, the `Q^in`/`Q^out` of a service component are *QoS
/// vectors of multiple application-level QoS parameters* — e.g.
/// `[Frame_Rate, Image_Size]` for a video sender. Two vectors may only be
/// compared (or treated as equivalent across a dependency edge) when they
/// have the same set of parameters; the schema captures that set.
///
/// Schemas are immutable and shared via [`Arc`]; equality is structural
/// (name + parameter list) so independently constructed but identical
/// schemas are interchangeable.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct QosSchema {
    name: String,
    params: Vec<String>,
}

impl QosSchema {
    /// Creates a schema with the given name and parameter names.
    pub fn new<N, I, P>(name: N, params: I) -> Arc<Self>
    where
        N: Into<String>,
        I: IntoIterator<Item = P>,
        P: Into<String>,
    {
        Arc::new(QosSchema {
            name: name.into(),
            params: params.into_iter().map(Into::into).collect(),
        })
    }

    /// Schema name (used in error messages and display output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered parameter names.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Number of parameters (the arity of vectors of this schema).
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Builds the schema of the concatenation of the given schemas, used
    /// for the `Q^in` of fan-in service components (§4.3.2): parameter
    /// names are prefixed by their source schema's name.
    pub fn concat<'a>(parts: impl IntoIterator<Item = &'a Arc<QosSchema>>) -> Arc<Self> {
        let mut name = String::new();
        let mut params = Vec::new();
        for part in parts {
            if !name.is_empty() {
                name.push('+');
            }
            name.push_str(&part.name);
            for p in &part.params {
                params.push(format!("{}.{}", part.name, p));
            }
        }
        Arc::new(QosSchema { name, params })
    }
}

/// A discrete, multi-dimensional application-level QoS level.
///
/// Vectors are immutable. The dominance relation ([`QosVector::compare`])
/// is the component-wise partial order of the paper: `Qa <= Qb` iff every
/// parameter of `Qa` is `<=` the corresponding parameter of `Qb`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct QosVector {
    schema: Arc<QosSchema>,
    values: Box<[u32]>,
}

impl QosVector {
    /// Creates a vector of the given schema.
    ///
    /// # Panics
    /// Panics if the number of values does not match the schema arity; use
    /// [`QosVector::try_new`] for a fallible variant.
    pub fn new(schema: Arc<QosSchema>, values: impl Into<Vec<u32>>) -> Self {
        Self::try_new(schema, values).expect("QoS vector arity mismatch")
    }

    /// Creates a vector of the given schema, checking the arity.
    pub fn try_new(
        schema: Arc<QosSchema>,
        values: impl Into<Vec<u32>>,
    ) -> Result<Self, ModelError> {
        let values: Vec<u32> = values.into();
        if values.len() != schema.arity() {
            return Err(ModelError::ArityMismatch {
                schema: schema.name().to_owned(),
                expected: schema.arity(),
                got: values.len(),
            });
        }
        Ok(QosVector {
            schema,
            values: values.into_boxed_slice(),
        })
    }

    /// The schema this vector is typed with.
    pub fn schema(&self) -> &Arc<QosSchema> {
        &self.schema
    }

    /// The raw parameter values, in schema order.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Value of the named parameter, if the schema declares it.
    pub fn get(&self, param: &str) -> Option<u32> {
        self.schema
            .params()
            .iter()
            .position(|p| p == param)
            .map(|i| self.values[i])
    }

    /// Component-wise partial-order comparison.
    ///
    /// Returns `Ok(None)` when the vectors are incomparable (some
    /// parameters larger, some smaller), and an error when the schemas
    /// differ — schema mismatches are modelling bugs, not mere
    /// incomparability.
    pub fn compare(&self, other: &QosVector) -> Result<Option<Ordering>, ModelError> {
        if self.schema != other.schema {
            return Err(ModelError::SchemaMismatch {
                left: self.schema.name().to_owned(),
                right: other.schema.name().to_owned(),
            });
        }
        let mut seen_lt = false;
        let mut seen_gt = false;
        for (a, b) in self.values.iter().zip(other.values.iter()) {
            match a.cmp(b) {
                Ordering::Less => seen_lt = true,
                Ordering::Greater => seen_gt = true,
                Ordering::Equal => {}
            }
        }
        Ok(match (seen_lt, seen_gt) {
            (false, false) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (true, true) => None,
        })
    }

    /// `true` iff `self <= other` in the component-wise partial order.
    pub fn dominated_by(&self, other: &QosVector) -> Result<bool, ModelError> {
        Ok(matches!(
            self.compare(other)?,
            Some(Ordering::Less) | Some(Ordering::Equal)
        ))
    }

    /// Concatenates vectors into one vector over the concatenated schema,
    /// used to form the `Q^in` of a fan-in component from its
    /// predecessors' `Q^out` (§4.3.2).
    pub fn concat<'a>(parts: impl IntoIterator<Item = &'a QosVector> + Clone) -> QosVector {
        let schema = QosSchema::concat(parts.clone().into_iter().map(|v| &v.schema));
        let values: Vec<u32> = parts
            .into_iter()
            .flat_map(|v| v.values.iter().copied())
            .collect();
        QosVector {
            schema,
            values: values.into_boxed_slice(),
        }
    }

    /// Splits this vector's values into chunks matching the given schema
    /// arities, returning `None` if the total arity does not match. Used
    /// to decompose a fan-in input level back into per-predecessor parts.
    pub fn split_values(&self, arities: &[usize]) -> Option<Vec<&[u32]>> {
        let total: usize = arities.iter().sum();
        if total != self.values.len() {
            return None;
        }
        let mut out = Vec::with_capacity(arities.len());
        let mut start = 0;
        for &a in arities {
            out.push(&self.values[start..start + a]);
            start += a;
        }
        Some(out)
    }
}

impl fmt::Debug for QosVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.schema.name())?;
        for (i, (p, v)) in self
            .schema
            .params()
            .iter()
            .zip(self.values.iter())
            .enumerate()
        {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}={v}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for QosVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2() -> Arc<QosSchema> {
        QosSchema::new("video", ["frame_rate", "image_size"])
    }

    #[test]
    fn arity_checked() {
        let s = schema2();
        assert!(QosVector::try_new(s.clone(), vec![1]).is_err());
        assert!(QosVector::try_new(s, vec![1, 2]).is_ok());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn new_panics_on_arity() {
        QosVector::new(schema2(), vec![1, 2, 3]);
    }

    #[test]
    fn partial_order() {
        let s = schema2();
        let lo = QosVector::new(s.clone(), [10, 240]);
        let hi = QosVector::new(s.clone(), [30, 480]);
        let mixed = QosVector::new(s.clone(), [40, 240]);

        assert_eq!(lo.compare(&hi).unwrap(), Some(Ordering::Less));
        assert_eq!(hi.compare(&lo).unwrap(), Some(Ordering::Greater));
        assert_eq!(lo.compare(&lo).unwrap(), Some(Ordering::Equal));
        assert_eq!(mixed.compare(&lo).unwrap(), Some(Ordering::Greater));
        // 40>30 but 240<480: incomparable.
        assert_eq!(mixed.compare(&hi).unwrap(), None);
        assert!(lo.dominated_by(&hi).unwrap());
        assert!(lo.dominated_by(&lo).unwrap());
        assert!(!hi.dominated_by(&lo).unwrap());
        assert!(!mixed.dominated_by(&hi).unwrap());
    }

    #[test]
    fn schema_mismatch_is_error() {
        let a = QosVector::new(schema2(), [1, 2]);
        let b = QosVector::new(QosSchema::new("audio", ["bitrate"]), [128]);
        assert!(matches!(
            a.compare(&b),
            Err(ModelError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn structural_schema_equality() {
        // Independently constructed identical schemas compare fine.
        let a = QosVector::new(QosSchema::new("v", ["x"]), [3]);
        let b = QosVector::new(QosSchema::new("v", ["x"]), [5]);
        assert_eq!(a.compare(&b).unwrap(), Some(Ordering::Less));
    }

    #[test]
    fn get_by_name() {
        let v = QosVector::new(schema2(), [25, 352]);
        assert_eq!(v.get("frame_rate"), Some(25));
        assert_eq!(v.get("image_size"), Some(352));
        assert_eq!(v.get("nope"), None);
    }

    #[test]
    fn concat_and_split() {
        let a = QosVector::new(QosSchema::new("left", ["x", "y"]), [1, 2]);
        let b = QosVector::new(QosSchema::new("right", ["z"]), [3]);
        let c = QosVector::concat([&a, &b]);
        assert_eq!(c.values(), &[1, 2, 3]);
        assert_eq!(c.schema().name(), "left+right");
        assert_eq!(
            c.schema().params(),
            &["left.x".to_owned(), "left.y".into(), "right.z".into()]
        );
        let parts = c.split_values(&[2, 1]).unwrap();
        assert_eq!(parts, vec![&[1u32, 2][..], &[3u32][..]]);
        assert!(c.split_values(&[2, 2]).is_none());
    }

    #[test]
    fn debug_format() {
        let v = QosVector::new(schema2(), [25, 352]);
        assert_eq!(format!("{v:?}"), "video[frame_rate=25, image_size=352]");
    }
}
