//! Session instantiation: binding abstract services to concrete
//! resources.
//!
//! A [`crate::ServiceSpec`] is placement-free: components demand
//! resources through named slots. A **session** of the service binds each
//! slot to a concrete [`ResourceId`] (the CPU of the host the component
//! was placed on, the network path between two specific hosts, …) and may
//! scale all demands by a factor — the paper's evaluation uses scale
//! factors N ∈ {2, 10} for its "fat" sessions.

use crate::{ModelError, ResourceId, ResourceSpace, ResourceVector, ServiceSpec};
use std::sync::Arc;

/// Maps each slot of one component to a concrete resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentBinding {
    resources: Vec<ResourceId>,
}

impl ComponentBinding {
    /// Creates a binding from the slot-ordered resource list.
    pub fn new(resources: impl Into<Vec<ResourceId>>) -> Self {
        ComponentBinding {
            resources: resources.into(),
        }
    }

    /// The bound resources, in slot order.
    pub fn resources(&self) -> &[ResourceId] {
        &self.resources
    }
}

/// One service session: a service spec, a concrete binding per component,
/// and a demand scale factor.
#[derive(Debug, Clone)]
pub struct SessionInstance {
    service: Arc<ServiceSpec>,
    bindings: Vec<ComponentBinding>,
    scale: f64,
}

impl SessionInstance {
    /// Creates a session instance, checking that there is one binding per
    /// component with one resource per slot, and that the scale factor is
    /// finite and positive.
    pub fn new(
        service: Arc<ServiceSpec>,
        bindings: Vec<ComponentBinding>,
        scale: f64,
    ) -> Result<Self, ModelError> {
        if bindings.len() != service.components().len() {
            return Err(ModelError::BindingShape {
                reason: format!(
                    "{} bindings for {} components",
                    bindings.len(),
                    service.components().len()
                ),
            });
        }
        for (c, b) in service.components().iter().zip(&bindings) {
            if b.resources().len() != c.slots().len() {
                return Err(ModelError::BindingShape {
                    reason: format!(
                        "component {:?} has {} slots but binding supplies {} resources",
                        c.name(),
                        c.slots().len(),
                        b.resources().len()
                    ),
                });
            }
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(ModelError::InvalidAmount { value: scale });
        }
        Ok(SessionInstance {
            service,
            bindings,
            scale,
        })
    }

    /// The service being instantiated.
    pub fn service(&self) -> &Arc<ServiceSpec> {
        &self.service
    }

    /// Per-component slot bindings.
    pub fn bindings(&self) -> &[ComponentBinding] {
        &self.bindings
    }

    /// The demand scale factor (1.0 for normal sessions, N for "fat").
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Checks each bound resource's kind against the slot's declared kind.
    /// Separate from construction because the [`ResourceSpace`] may live
    /// elsewhere (e.g. inside a broker registry).
    pub fn validate_kinds(&self, space: &ResourceSpace) -> Result<(), ModelError> {
        for (c, b) in self.service.components().iter().zip(&self.bindings) {
            for (slot, &rid) in c.slots().iter().zip(b.resources()) {
                let actual = space.info(rid).kind;
                if actual != slot.kind {
                    return Err(ModelError::BindingShape {
                        reason: format!(
                            "slot {:?} of component {:?} expects kind {} but {} is {}",
                            slot.name,
                            c.name(),
                            slot.kind,
                            space.name(rid),
                            actual
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// The concrete, scaled resource demand `R^req` for running component
    /// `comp` with input level `qin` and output level `qout` — eq. (1) of
    /// the paper, evaluated through this session's binding. `None` when
    /// the translation function rejects the pair. Slots bound to the same
    /// resource have their demands summed.
    pub fn demand(&self, comp: usize, qin: usize, qout: usize) -> Option<ResourceVector> {
        let slot_demand = self.service.component(comp).translate(qin, qout)?;
        let binding = &self.bindings[comp];
        debug_assert_eq!(slot_demand.len(), binding.resources().len());
        let vector = ResourceVector::from_pairs(
            slot_demand
                .iter()
                .map(|(slot, amount)| (binding.resources()[slot], amount * self.scale)),
        )
        .expect("slot demands and scale are validated at construction");
        Some(vector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComponentSpec, QosSchema, QosVector, ResourceKind, SlotSpec, TableTranslation};

    fn service() -> Arc<ServiceSpec> {
        let s = QosSchema::new("q", ["x"]);
        let lv = |v: u32| QosVector::new(s.clone(), [v]);
        let sender = ComponentSpec::new(
            "sender",
            vec![lv(9)],
            vec![lv(1), lv(2)],
            vec![
                SlotSpec::new("cpu", ResourceKind::Compute),
                SlotSpec::new("disk", ResourceKind::DiskIo),
            ],
            Arc::new(
                TableTranslation::builder(1, 2, 2)
                    .entry(0, 0, [2.0, 4.0])
                    .entry(0, 1, [5.0, 8.0])
                    .build(),
            ),
        );
        let player = ComponentSpec::new(
            "player",
            vec![lv(1), lv(2)],
            vec![lv(1), lv(2)],
            vec![SlotSpec::new("net", ResourceKind::NetworkPath)],
            Arc::new(
                TableTranslation::builder(2, 2, 1)
                    .entry(0, 0, [3.0])
                    .entry(1, 1, [6.0])
                    .build(),
            ),
        );
        Arc::new(ServiceSpec::chain("svc", vec![sender, player], vec![1, 2]).unwrap())
    }

    fn space() -> (ResourceSpace, Vec<ResourceId>) {
        let mut sp = ResourceSpace::new();
        let ids = vec![
            sp.register("cpu", ResourceKind::Compute),
            sp.register("disk", ResourceKind::DiskIo),
            sp.register("net", ResourceKind::NetworkPath),
        ];
        (sp, ids)
    }

    #[test]
    fn demand_binds_and_scales() {
        let svc = service();
        let (_, ids) = space();
        let inst = SessionInstance::new(
            svc,
            vec![
                ComponentBinding::new([ids[0], ids[1]]),
                ComponentBinding::new([ids[2]]),
            ],
            2.0,
        )
        .unwrap();
        let d = inst.demand(0, 0, 1).unwrap();
        assert_eq!(d.get(ids[0]), 10.0); // 5.0 * scale 2
        assert_eq!(d.get(ids[1]), 16.0); // 8.0 * scale 2
        assert!(inst.demand(1, 0, 1).is_none()); // infeasible pair
        assert_eq!(inst.scale(), 2.0);
    }

    #[test]
    fn slots_sharing_a_resource_sum() {
        let svc = service();
        let (_, ids) = space();
        // Bind both sender slots to the same resource.
        let inst = SessionInstance::new(
            svc,
            vec![
                ComponentBinding::new([ids[0], ids[0]]),
                ComponentBinding::new([ids[2]]),
            ],
            1.0,
        )
        .unwrap();
        let d = inst.demand(0, 0, 0).unwrap();
        assert_eq!(d.get(ids[0]), 6.0); // 2.0 + 4.0
    }

    #[test]
    fn shape_validation() {
        let svc = service();
        let (_, ids) = space();
        // Missing a binding.
        assert!(SessionInstance::new(
            svc.clone(),
            vec![ComponentBinding::new([ids[0], ids[1]])],
            1.0
        )
        .is_err());
        // Wrong slot count.
        assert!(SessionInstance::new(
            svc.clone(),
            vec![
                ComponentBinding::new([ids[0]]),
                ComponentBinding::new([ids[2]]),
            ],
            1.0
        )
        .is_err());
        // Bad scale.
        assert!(SessionInstance::new(
            svc,
            vec![
                ComponentBinding::new([ids[0], ids[1]]),
                ComponentBinding::new([ids[2]]),
            ],
            0.0
        )
        .is_err());
    }

    #[test]
    fn kind_validation() {
        let svc = service();
        let (sp, ids) = space();
        let good = SessionInstance::new(
            svc.clone(),
            vec![
                ComponentBinding::new([ids[0], ids[1]]),
                ComponentBinding::new([ids[2]]),
            ],
            1.0,
        )
        .unwrap();
        assert!(good.validate_kinds(&sp).is_ok());

        // Bind the disk slot to a network path.
        let bad = SessionInstance::new(
            svc,
            vec![
                ComponentBinding::new([ids[0], ids[2]]),
                ComponentBinding::new([ids[2]]),
            ],
            1.0,
        )
        .unwrap();
        assert!(bad.validate_kinds(&sp).is_err());
    }
}
