//! Property-based tests of the model's algebraic laws.

use proptest::prelude::*;
use qosr_model::*;
use std::cmp::Ordering;

fn qos_pair() -> impl Strategy<Value = (QosVector, QosVector, QosVector)> {
    (1usize..=4).prop_flat_map(|arity| {
        let vals = prop::collection::vec(0u32..10, arity);
        (vals.clone(), vals.clone(), vals).prop_map(move |(a, b, c)| {
            let schema = QosSchema::new("p", (0..arity).map(|i| format!("x{i}")));
            (
                QosVector::new(schema.clone(), a),
                QosVector::new(schema.clone(), b),
                QosVector::new(schema, c),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The dominance relation is a partial order: reflexive,
    /// antisymmetric, transitive; `compare` is consistent with it.
    #[test]
    fn qos_partial_order_laws((a, b, c) in qos_pair()) {
        // Reflexivity.
        prop_assert_eq!(a.compare(&a).unwrap(), Some(Ordering::Equal));
        prop_assert!(a.dominated_by(&a).unwrap());
        // Antisymmetry.
        if a.dominated_by(&b).unwrap() && b.dominated_by(&a).unwrap() {
            prop_assert_eq!(&a, &b);
        }
        // Transitivity.
        if a.dominated_by(&b).unwrap() && b.dominated_by(&c).unwrap() {
            prop_assert!(a.dominated_by(&c).unwrap());
        }
        // compare() duality.
        match a.compare(&b).unwrap() {
            Some(Ordering::Less) => {
                prop_assert_eq!(b.compare(&a).unwrap(), Some(Ordering::Greater));
            }
            Some(Ordering::Equal) => prop_assert_eq!(&a, &b),
            Some(Ordering::Greater) => {
                prop_assert_eq!(b.compare(&a).unwrap(), Some(Ordering::Less));
            }
            None => prop_assert_eq!(b.compare(&a).unwrap(), None),
        }
    }

    /// Concatenation preserves component-wise dominance and splits back
    /// into the original parts.
    #[test]
    fn qos_concat_laws((a, b, _) in qos_pair(), (x, y, _) in qos_pair()) {
        let ab = QosVector::concat([&a, &x]);
        let cd = QosVector::concat([&b, &y]);
        prop_assert_eq!(ab.values().len(), a.values().len() + x.values().len());
        // Dominance of the concatenation iff dominance of both parts.
        let whole = ab.dominated_by(&cd).unwrap();
        let parts = a.dominated_by(&b).unwrap() && x.dominated_by(&y).unwrap();
        prop_assert_eq!(whole, parts);
        // Split restores the parts' values.
        let split = ab.split_values(&[a.values().len(), x.values().len()]).unwrap();
        prop_assert_eq!(split[0], a.values());
        prop_assert_eq!(split[1], x.values());
    }

    /// Resource-vector algebra: `add` is commutative and associative,
    /// `scaled` distributes over `add`, and `fits_within` is monotone
    /// under `add` on the availability side.
    #[test]
    fn resource_vector_algebra(
        a in prop::collection::vec((0u32..6, 0.0f64..50.0), 0..6),
        b in prop::collection::vec((0u32..6, 0.0f64..50.0), 0..6),
        c in prop::collection::vec((0u32..6, 0.0f64..50.0), 0..6),
        k in 0.0f64..4.0,
    ) {
        let rv = |pairs: &[(u32, f64)]| {
            ResourceVector::from_pairs(pairs.iter().map(|&(i, x)| (ResourceId(i), x))).unwrap()
        };
        let (a, b, c) = (rv(&a), rv(&b), rv(&c));

        prop_assert_eq!(a.add(&b), b.add(&a));
        // Associativity holds up to floating-point rounding.
        let l = a.add(&b).add(&c);
        let r = a.add(&b.add(&c));
        for id in (0..6).map(ResourceId) {
            prop_assert!((l.get(id) - r.get(id)).abs() < 1e-9);
        }
        // Distribution within float tolerance.
        let lhs = a.add(&b).scaled(k);
        let rhs = a.scaled(k).add(&b.scaled(k));
        for id in (0..6).map(ResourceId) {
            prop_assert!((lhs.get(id) - rhs.get(id)).abs() < 1e-9);
        }
        // a fits within a + anything.
        prop_assert!(a.fits_within(&a.add(&b)));
        // fits_within is antitone in the demand: a+b fits -> a fits.
        if a.add(&b).fits_within(&c) {
            prop_assert!(a.fits_within(&c));
        }
        // max_ratio_over is exactly the max of per-entry ratios.
        if let Some((_, psi)) = a.max_ratio_over(|_| 10.0) {
            let expect = a.iter().map(|(_, x)| x / 10.0).fold(f64::MIN, f64::max);
            prop_assert!((psi - expect).abs() < 1e-12);
        } else {
            prop_assert!(a.is_empty());
        }
    }

    /// Random DAG edge sets: `DependencyGraph::new` either rejects, or
    /// yields a graph whose topological order is valid and whose
    /// accessors are mutually consistent.
    #[test]
    fn dependency_graph_consistency(
        n in 1usize..7,
        raw_edges in prop::collection::vec((0usize..7, 0usize..7), 0..12),
    ) {
        let edges: Vec<(usize, usize)> = raw_edges
            .into_iter()
            .filter(|&(u, v)| u < n && v < n)
            .collect();
        let Ok(g) = DependencyGraph::new(n, edges.clone()) else {
            return Ok(()); // rejection is fine; acceptance is what we check
        };
        // Topo order covers every node once and respects edges.
        let mut pos = vec![usize::MAX; n];
        for (i, &v) in g.topo_order().iter().enumerate() {
            prop_assert_eq!(pos[v], usize::MAX);
            pos[v] = i;
        }
        for &(u, v) in g.edges() {
            prop_assert!(pos[u] < pos[v]);
        }
        // preds/succs are inverse relations.
        for v in 0..n {
            for &u in g.preds(v) {
                prop_assert!(g.succs(u).contains(&v));
            }
            for &w in g.succs(v) {
                prop_assert!(g.preds(w).contains(&v));
            }
        }
        // Source/sink as advertised.
        prop_assert!(g.preds(g.source()).is_empty());
        prop_assert!(g.succs(g.sink()).is_empty());
        // Chain detection agrees with degrees.
        let degrees_chainlike =
            (0..n).all(|v| g.preds(v).len() <= 1 && g.succs(v).len() <= 1);
        prop_assert_eq!(g.is_chain(), degrees_chainlike);
    }

    /// Session demand = translation × scale through the binding, for all
    /// feasible pairs; infeasible pairs stay infeasible.
    #[test]
    fn session_demand_scales_linearly(seedling in 1.0f64..30.0, scale in 0.5f64..10.0) {
        let schema = QosSchema::new("q", ["x"]);
        let v = |x: u32| QosVector::new(schema.clone(), [x]);
        let comp = ComponentSpec::new(
            "c",
            vec![v(0)],
            vec![v(1), v(2)],
            vec![SlotSpec::new("s", ResourceKind::Compute)],
            std::sync::Arc::new(
                TableTranslation::builder(1, 2, 1)
                    .entry(0, 0, [seedling])
                    .build(),
            ),
        );
        let service = std::sync::Arc::new(
            ServiceSpec::chain("svc", vec![comp], vec![1, 2]).unwrap());
        let mut sp = ResourceSpace::new();
        let rid = sp.register("r", ResourceKind::Compute);
        let session = SessionInstance::new(
            service, vec![ComponentBinding::new([rid])], scale).unwrap();
        let d = session.demand(0, 0, 0).unwrap();
        prop_assert!((d.get(rid) - seedling * scale).abs() < 1e-9);
        prop_assert!(session.demand(0, 0, 1).is_none());
    }
}
