//! A minimal discrete-event engine: a time-ordered event queue.
//!
//! The simulation is a single loop popping [`Event`]s off an
//! [`EventQueue`] (a binary heap keyed by `(time, insertion sequence)`,
//! so events at equal timestamps run FIFO). Everything that happens in a
//! run — Poisson arrivals, departures, popularity shifts, upgrade and
//! sampling sweeps, fault-plan host crashes, and the scenario DSL's
//! rule firings and condition polls — is one of these variants;
//! determinism under a seed follows from the queue's total order plus
//! the single RNG stream consumed in event order.

use qosr_broker::{SessionId, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Events of the simulated environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A client issues a new service request.
    Arrival,
    /// An established session ends and releases its reservations.
    Departure(SessionId),
    /// The per-service request probabilities shift (the paper
    /// "dynamically change\[s\] the probability that each service is
    /// requested").
    ProbabilityShift,
    /// Periodic renegotiation sweep: live sessions try to upgrade their
    /// end-to-end QoS using freed capacity.
    UpgradeScan,
    /// Periodic metrics sample (utilization time series).
    Sample,
    /// A scheduled host crash fires (0-based host index): the host's
    /// brokers stop answering and live sessions holding reservations
    /// there are lost.
    HostDown(usize),
    /// A crashed host recovers: its capacity is re-admitted to planning
    /// and the upgrade scan can reclaim it.
    HostUp(usize),
    /// One extra arrival injected by a scenario-DSL flash crowd. Unlike
    /// [`Event::Arrival`] it does **not** reschedule itself, so a burst
    /// adds exactly its configured session count on top of the Poisson
    /// process instead of multiplying it.
    BurstArrival,
    /// A timed scenario-DSL rule fires (index into
    /// [`crate::ScenarioConfig::rules`]): its events are applied and, for
    /// periodic triggers, the next firing is scheduled.
    ScenarioRule(usize),
    /// A condition-triggered scenario-DSL rule polls its predicate
    /// (utilization or session-count threshold). Fires the rule on an
    /// upward crossing, then re-arms once the condition goes false.
    ScenarioPoll(usize),
}

/// Time-ordered event queue with FIFO tie-breaking at equal timestamps.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot)>>,
    seq: u64,
}

/// Internal ordered wrapper (events themselves are not ordered).
#[derive(Debug, Clone, PartialEq, Eq)]
struct EventSlot(Event);

impl PartialOrd for EventSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventSlot {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        // Ordering is fully determined by (time, seq); slots tie.
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Pops the earliest event (FIFO among equal timestamps).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse((t, _, slot))| (t, slot.0))
    }

    /// Next event time without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), Event::Arrival);
        q.schedule(SimTime::new(1.0), Event::Departure(SessionId(1)));
        q.schedule(SimTime::new(3.0), Event::ProbabilityShift);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.value())
            .collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(2.0), Event::Departure(SessionId(1)));
        q.schedule(SimTime::new(2.0), Event::Departure(SessionId(2)));
        q.schedule(SimTime::new(2.0), Event::Departure(SessionId(3)));
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Departure(SessionId(i)) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
