//! Metric collection for the performance study.

use crate::workload::SessionClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Success counters and QoS accumulation for one session class (or the
/// whole run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Sessions attempted.
    pub attempts: u64,
    /// Sessions whose end-to-end reservation succeeded.
    pub successes: u64,
    /// Sum of the end-to-end QoS level (the paper's level 1/2/3) over
    /// successful sessions.
    pub qos_level_sum: u64,
}

impl ClassStats {
    /// Records one attempt; `level` is the achieved end-to-end QoS level
    /// (1-based rank) when successful.
    pub fn record(&mut self, level: Option<u32>) {
        self.attempts += 1;
        if let Some(level) = level {
            self.successes += 1;
            self.qos_level_sum += u64::from(level);
        }
    }

    /// The overall reservation success rate (metric 1 of §5).
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            return f64::NAN;
        }
        self.successes as f64 / self.attempts as f64
    }

    /// The average end-to-end QoS level of successful sessions (metric 2
    /// of §5).
    pub fn avg_qos_level(&self) -> f64 {
        if self.successes == 0 {
            return f64::NAN;
        }
        self.qos_level_sum as f64 / self.successes as f64
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &ClassStats) {
        self.attempts += other.attempts;
        self.successes += other.successes;
        self.qos_level_sum += other.qos_level_sum;
    }
}

/// Histogram over selected end-to-end reservation paths (Tables 1–2).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PathHistogram {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl PathHistogram {
    /// Records one selected path.
    pub fn record(&mut self, label: impl Into<String>) {
        *self.counts.entry(label.into()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total recorded paths.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of selections that used `label`.
    pub fn fraction(&self, label: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(label).unwrap_or(&0) as f64 / self.total as f64
    }

    /// `(label, count)` pairs, sorted by label.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct paths seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &PathHistogram) {
        for (k, v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
        self.total += other.total;
    }
}

/// Everything measured during one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Overall stats across all sessions.
    pub overall: ClassStats,
    /// Per-class stats, indexed by [`SessionClass::index`].
    pub per_class: [ClassStats; 4],
    /// Selected-path histogram for type-A services (S1, S4).
    pub paths_a: PathHistogram,
    /// Selected-path histogram for type-B services (S2, S3).
    pub paths_b: PathHistogram,
    /// How often each resource was the plan bottleneck (successful
    /// sessions only), keyed by resource name.
    pub bottlenecks: BTreeMap<String, u64>,
    /// Establishments that failed at the planning stage (no feasible
    /// end-to-end plan).
    pub plan_failures: u64,
    /// Establishments that failed at dispatch (a broker rejected — only
    /// possible under stale observations).
    pub reserve_failures: u64,
    /// Successful in-place QoS upgrades performed by the renegotiation
    /// policy (0 unless `upgrade_period` is set).
    pub upgrades: u64,
    /// End-to-end QoS levels at session *end* (after any upgrades);
    /// equals the establishment-time levels when upgrades are off.
    pub final_qos: ClassStats,
    /// Establishments that failed on injected faults after exhausting
    /// the retry budget (0 unless a fault plan is active).
    #[serde(default)]
    pub fault_failures: u64,
    /// Injected faults that fired: host crashes, dropped protocol
    /// messages, commit failures.
    #[serde(default)]
    pub faults_injected: u64,
    /// Live sessions killed by host crashes (their reservations released
    /// everywhere; they do not contribute to `final_qos`).
    #[serde(default)]
    pub sessions_lost: u64,
    /// Two-phase dispatch aborts that rolled back at least one prepared
    /// hop.
    #[serde(default)]
    pub rollbacks: u64,
    /// Establishment retries taken under the fault plan's retry budget.
    #[serde(default)]
    pub retries: u64,
    /// Establishments that committed at a lower rank than their first
    /// attempt planned (graceful degradation across retries).
    #[serde(default)]
    pub degraded_establishes: u64,
    /// Batched admission rounds planned (0 unless `batch_arrivals` is
    /// set).
    #[serde(default)]
    pub batches_planned: u64,
    /// Same-round commit conflicts detected by batched admission: a
    /// plan's capacity was consumed by an earlier commit in its round.
    #[serde(default)]
    pub commit_conflicts: u64,
    /// Conflicted batch requests replanned against the round's working
    /// view instead of being failed.
    #[serde(default)]
    pub replans: u64,
    /// Scenario-DSL rule firings (timed triggers reaching their instant,
    /// condition triggers crossing their threshold). 0 unless
    /// [`crate::ScenarioConfig::rules`] is non-empty.
    #[serde(default)]
    pub scenario_triggers: u64,
    /// Extra arrivals injected by scenario-DSL flash crowds (each also
    /// counts as a normal attempt in `overall`).
    #[serde(default)]
    pub burst_arrivals: u64,
    /// Malleable advance reservations admitted as requested (scenario
    /// `bulk_transfer` events).
    #[serde(default)]
    pub advance_booked: u64,
    /// Advance requests admitted only after preempting and replanning
    /// malleable bookings.
    #[serde(default)]
    pub advance_repacked: u64,
    /// Advance requests rejected (no feasible profile by the deadline).
    #[serde(default)]
    pub advance_rejected: u64,
    /// Total bulk-transfer volume admitted by the advance planner
    /// (rate × TU summed over booked profiles).
    #[serde(default)]
    pub bulk_volume_admitted: f64,
}

impl RunMetrics {
    /// Records a session outcome.
    pub fn record_outcome(&mut self, class: SessionClass, level: Option<u32>) {
        self.overall.record(level);
        self.per_class[class.index()].record(level);
    }

    /// Records a plan bottleneck resource (by name).
    pub fn record_bottleneck(&mut self, resource: impl Into<String>) {
        *self.bottlenecks.entry(resource.into()).or_insert(0) += 1;
    }

    /// Merges another run's metrics (used when averaging over seeds).
    pub fn merge(&mut self, other: &RunMetrics) {
        self.overall.merge(&other.overall);
        for (a, b) in self.per_class.iter_mut().zip(&other.per_class) {
            a.merge(b);
        }
        self.paths_a.merge(&other.paths_a);
        self.paths_b.merge(&other.paths_b);
        for (k, v) in &other.bottlenecks {
            *self.bottlenecks.entry(k.clone()).or_insert(0) += v;
        }
        self.plan_failures += other.plan_failures;
        self.reserve_failures += other.reserve_failures;
        self.upgrades += other.upgrades;
        self.final_qos.merge(&other.final_qos);
        self.fault_failures += other.fault_failures;
        self.faults_injected += other.faults_injected;
        self.sessions_lost += other.sessions_lost;
        self.rollbacks += other.rollbacks;
        self.retries += other.retries;
        self.degraded_establishes += other.degraded_establishes;
        self.batches_planned += other.batches_planned;
        self.commit_conflicts += other.commit_conflicts;
        self.replans += other.replans;
        self.scenario_triggers += other.scenario_triggers;
        self.burst_arrivals += other.burst_arrivals;
        self.advance_booked += other.advance_booked;
        self.advance_repacked += other.advance_repacked;
        self.advance_rejected += other.advance_rejected;
        self.bulk_volume_admitted += other.bulk_volume_admitted;
    }
}

/// Serializable mirror of the coordinator's protocol message statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStatsRecord {
    /// Availability-collection round trips.
    pub collect_roundtrips: u64,
    /// Plan-segment reserve (prepare) messages.
    pub dispatches: u64,
    /// Plan-segment commit confirmations.
    #[serde(default)]
    pub commit_roundtrips: u64,
    /// Establishment attempts.
    pub attempts: u64,
    /// Successful establishments.
    pub established: u64,
}

impl From<qosr_broker::MessageStats> for MessageStatsRecord {
    fn from(s: qosr_broker::MessageStats) -> Self {
        MessageStatsRecord {
            collect_roundtrips: s.collect_roundtrips,
            dispatches: s.dispatches,
            commit_roundtrips: s.commit_roundtrips,
            attempts: s.attempts,
            established: s.established,
        }
    }
}

/// One point of the utilization time series (recorded when
/// [`crate::ScenarioConfig::sample_period`] is set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSample {
    /// Simulated time (TU).
    pub time: f64,
    /// Live sessions at sample time.
    pub active_sessions: u64,
    /// Utilization (reserved / capacity) per *physical* resource — host
    /// CPUs and links — keyed by resource name.
    pub utilization: BTreeMap<String, f64>,
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The configuration the run executed.
    pub config: crate::ScenarioConfig,
    /// Measured metrics.
    pub metrics: RunMetrics,
    /// Protocol message accounting.
    pub messages: MessageStatsRecord,
    /// Utilization time series (empty unless sampling is enabled).
    #[serde(default)]
    pub timeseries: Vec<TimeSample>,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_stats_rates() {
        let mut s = ClassStats::default();
        assert!(s.success_rate().is_nan());
        assert!(s.avg_qos_level().is_nan());
        s.record(Some(3));
        s.record(Some(2));
        s.record(None);
        assert_eq!(s.attempts, 3);
        assert_eq!(s.successes, 2);
        assert!((s.success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.avg_qos_level() - 2.5).abs() < 1e-12);
        let mut t = ClassStats::default();
        t.record(Some(1));
        s.merge(&t);
        assert_eq!(s.attempts, 4);
        assert_eq!(s.qos_level_sum, 6);
    }

    #[test]
    fn path_histogram() {
        let mut h = PathHistogram::default();
        h.record("Qa-Qb");
        h.record("Qa-Qb");
        h.record("Qa-Qc");
        assert_eq!(h.total(), 3);
        assert_eq!(h.distinct(), 2);
        assert!((h.fraction("Qa-Qb") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.fraction("nope"), 0.0);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![("Qa-Qb", 2), ("Qa-Qc", 1)]);

        let mut h2 = PathHistogram::default();
        h2.record("Qa-Qc");
        h.merge(&h2);
        assert_eq!(h.total(), 4);
        assert!((h.fraction("Qa-Qc") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_metrics_record_and_merge() {
        let mut m = RunMetrics::default();
        m.record_outcome(SessionClass::FatShort, Some(3));
        m.record_outcome(SessionClass::NormalLong, None);
        m.record_bottleneck("H1.cpu");
        m.record_bottleneck("H1.cpu");
        assert_eq!(m.overall.attempts, 2);
        assert_eq!(m.per_class[SessionClass::FatShort.index()].successes, 1);
        assert_eq!(m.bottlenecks["H1.cpu"], 2);

        let mut m2 = RunMetrics::default();
        m2.record_outcome(SessionClass::FatShort, Some(1));
        m2.record_bottleneck("L3");
        m2.plan_failures = 5;
        m.merge(&m2);
        assert_eq!(m.overall.attempts, 3);
        assert_eq!(m.per_class[SessionClass::FatShort.index()].attempts, 2);
        assert_eq!(m.bottlenecks["L3"], 1);
        assert_eq!(m.plan_failures, 5);
    }
}
