//! Parallel execution of simulation batches.
//!
//! Experiment figures sweep generation rates × algorithms × seeds —
//! dozens of independent runs. [`run_many`] executes them across CPU
//! cores with a simple work-stealing queue (a shared atomic task cursor
//! feeding scoped worker threads over `std::sync::mpsc`), returning
//! results in input order. Only the standard library is used, so the
//! sweep runner builds in fully offline environments.

use crate::{run_scenario, RunResult, ScenarioConfig};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs every configuration, in parallel across available cores,
/// returning results in the same order as `configs`.
pub fn run_many(configs: &[ScenarioConfig]) -> Vec<RunResult> {
    if configs.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(configs.len());
    if workers <= 1 {
        return configs.iter().map(run_scenario).collect();
    }

    // Work stealing: each worker claims the next unstarted config from
    // a shared cursor, so long runs never block short ones behind them.
    let next_task = AtomicUsize::new(0);
    let (result_tx, result_rx) = mpsc::channel::<(usize, RunResult)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next_task = &next_task;
            let result_tx = result_tx.clone();
            scope.spawn(move || loop {
                let i = next_task.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = configs.get(i) else {
                    break;
                };
                let result = run_scenario(cfg);
                if result_tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(result_tx);

        let mut results: Vec<Option<RunResult>> = vec![None; configs.len()];
        while let Ok((i, r)) = result_rx.recv() {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every task produced a result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlannerKind;

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let configs: Vec<ScenarioConfig> = [(60.0, 1u64), (120.0, 2), (180.0, 3)]
            .into_iter()
            .map(|(rate, seed)| ScenarioConfig {
                rate_per_60tu: rate,
                seed,
                horizon: 600.0,
                planner: PlannerKind::Basic,
                ..ScenarioConfig::default()
            })
            .collect();
        let parallel = run_many(&configs);
        assert_eq!(parallel.len(), 3);
        for (cfg, result) in configs.iter().zip(&parallel) {
            assert_eq!(&result.config, cfg);
            let serial = run_scenario(cfg);
            assert_eq!(serial.metrics, result.metrics, "rate {}", cfg.rate_per_60tu);
        }
    }

    #[test]
    fn empty_batch() {
        assert!(run_many(&[]).is_empty());
    }
}
