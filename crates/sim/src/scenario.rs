//! Scenario configuration and the main simulation loop.

use crate::dsl::{EventSpec, Rule, Trigger, DEFAULT_POLL};
use crate::engine::{Event, EventQueue};
use crate::env::{PaperEnvironment, TopologyVariant};
use crate::fault::FaultPlan;
use crate::metrics::{MessageStatsRecord, RunMetrics, RunResult};
use crate::services::{path_label, ServiceOptions, ServiceType};
use crate::workload::WorkloadGenerator;
use qosr_broker::{
    AdmissionConfig, AdmissionQueue, EstablishError, EstablishOptions, EstablishedSession,
    LocalBrokerConfig, ObservationPolicy, RetryPolicy, SessionId, SessionRequest as AdmitRequest,
    SimTime,
};
use qosr_core::{Planner, PsiDef, QrgOptions};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which planning algorithm a run uses (serializable mirror of
/// [`qosr_core::Planner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlannerKind {
    /// The basic algorithm (§4.1).
    #[default]
    Basic,
    /// Basic + the QoS/success-rate tradeoff policy (§4.3.1).
    Tradeoff,
    /// The contention-unaware random baseline (§5).
    Random,
}

impl From<PlannerKind> for Planner {
    fn from(k: PlannerKind) -> Planner {
        match k {
            PlannerKind::Basic => Planner::Basic,
            PlannerKind::Tradeoff => Planner::Tradeoff,
            PlannerKind::Random => Planner::Random,
        }
    }
}

impl PlannerKind {
    /// The paper's name for the algorithm.
    pub fn label(self) -> &'static str {
        match self {
            PlannerKind::Basic => "basic",
            PlannerKind::Tradeoff => "tradeoff",
            PlannerKind::Random => "random",
        }
    }
}

/// Which per-resource contention-index definition to use (ablation;
/// serializable mirror of [`qosr_core::PsiDef`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PsiKind {
    /// The paper's `req / avail` (eq. 2).
    #[default]
    Utilization,
    /// `req / (avail − req)`.
    Headroom,
    /// `−ln(1 − req/avail)`.
    NegLogSurvival,
}

/// Inter-host wiring (serializable mirror of
/// [`crate::TopologyVariant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TopologyKind {
    /// Full mesh between the hosts (the figure-9 replica; 14 links).
    #[default]
    FullMesh,
    /// Ring between the hosts (12 links; some routes span two links).
    Ring,
}

impl From<TopologyKind> for TopologyVariant {
    fn from(k: TopologyKind) -> TopologyVariant {
        match k {
            TopologyKind::FullMesh => TopologyVariant::FullMesh,
            TopologyKind::Ring => TopologyVariant::Ring,
        }
    }
}

impl From<PsiKind> for PsiDef {
    fn from(k: PsiKind) -> PsiDef {
        match k {
            PsiKind::Utilization => PsiDef::Utilization,
            PsiKind::Headroom => PsiDef::Headroom,
            PsiKind::NegLogSurvival => PsiDef::NegLogSurvival,
        }
    }
}

/// All parameters of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// RNG seed (drives capacities, workload, and the random planner).
    pub seed: u64,
    /// Average session generation rate, sessions per 60 TU (the paper
    /// sweeps 60–240).
    pub rate_per_60tu: f64,
    /// Simulated horizon in TU (the paper runs 10800).
    pub horizon: f64,
    /// The planning algorithm.
    pub planner: PlannerKind,
    /// Maximum observation age `E` in TU; 0 = accurate observations
    /// (§5.2.4).
    pub staleness: f64,
    /// When set, compress requirement diversity to this max:min ratio
    /// (§5.2.5 uses 3.0); `None` = the full figure-10 tables.
    pub diversity_ratio: Option<f64>,
    /// Global requirement multiplier (calibration constant; see
    /// EXPERIMENTS.md).
    pub requirement_scale: f64,
    /// Uniform range resource capacities are drawn from (paper:
    /// 1000–4000).
    pub capacity_range: (f64, f64),
    /// Period (TU) between service-popularity shifts.
    pub prob_shift_period: f64,
    /// The α sliding-window length `T` (paper: 3 TU).
    pub alpha_window: f64,
    /// ψ definition (ablation; the paper uses utilization).
    pub psi: PsiKind,
    /// Disable the Dijkstra tie-breaking rule (ablation).
    pub disable_tie_break: bool,
    /// Inter-host wiring variant.
    pub topology: TopologyKind,
    /// When set, every `period` TU live sessions attempt an in-place QoS
    /// upgrade via renegotiation (an extension beyond the paper; see
    /// DESIGN.md).
    pub upgrade_period: Option<f64>,
    /// When set, sample per-resource utilization and the live-session
    /// count every `period` TU into [`crate::TimeSample`]s.
    pub sample_period: Option<f64>,
    /// The deterministic fault schedule (host crashes, message drops,
    /// commit failures) plus the retry budget absorbing it. The default
    /// is the empty plan: no faults, and a run bit-identical to one
    /// without fault support.
    #[serde(default)]
    pub faults: FaultPlan,
    /// When set, arrivals are buffered and admitted in concurrent
    /// batched rounds through [`qosr_broker::AdmissionQueue`] (one
    /// availability snapshot per round, parallel planning, sequential
    /// conflict-checked commits). `None` — the default — admits every
    /// arrival individually, identical to earlier releases.
    #[serde(default)]
    pub batch_arrivals: Option<BatchArrivals>,
    /// Scenario-DSL rules (trigger → events) compiled into the event
    /// stream, usually populated from a `*.scenario.json` file via
    /// [`crate::ScenarioFile::to_config`]. Empty — the default — leaves
    /// the run bit-identical to earlier releases.
    #[serde(default)]
    pub rules: Vec<Rule>,
    /// When `true`, every arrival is tagged with a sequential
    /// [`qosr_obs::TraceId`] at ingress and the coordinator's request
    /// tracer is enabled: each admission leaves a causal span tree in
    /// the flight ring and per-phase latency histograms in the tracer.
    /// `false` — the default — skips all of it; run *outcomes* are
    /// bit-identical either way (tracing only observes).
    #[serde(default)]
    pub trace_requests: bool,
}

/// Batched-admission knob: buffer arrivals and flush them through the
/// concurrent [`qosr_broker::AdmissionQueue`] pipeline in rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchArrivals {
    /// Flush a round when this many arrivals are pending (a final
    /// partial round flushes at the horizon).
    pub size: usize,
    /// Worker threads planning each round in parallel.
    pub workers: usize,
    /// Replan budget per request after same-round commit conflicts.
    pub max_replans: u32,
}

impl Default for BatchArrivals {
    fn default() -> Self {
        BatchArrivals {
            size: 8,
            workers: 4,
            max_replans: 2,
        }
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 1,
            rate_per_60tu: 60.0,
            horizon: 10_800.0,
            planner: PlannerKind::Basic,
            staleness: 0.0,
            diversity_ratio: None,
            requirement_scale: DEFAULT_REQUIREMENT_SCALE,
            capacity_range: (1000.0, 4000.0),
            prob_shift_period: 600.0,
            alpha_window: 3.0,
            psi: PsiKind::Utilization,
            disable_tie_break: false,
            topology: TopologyKind::FullMesh,
            upgrade_period: None,
            sample_period: None,
            faults: FaultPlan::default(),
            batch_arrivals: None,
            rules: Vec::new(),
            trace_requests: false,
        }
    }
}

/// The calibrated default requirement scale (see EXPERIMENTS.md for the
/// calibration procedure: chosen so *basic*'s success-rate curve passes
/// through the bands the paper reports in Tables 3–4).
pub const DEFAULT_REQUIREMENT_SCALE: f64 = 0.5;

/// The administrative session the scenario DSL's `resize_capacity`
/// event reserves under. Real session ids count up from zero, so the
/// sentinel never collides; reading `reserved_for(DRAIN_SESSION)` back
/// from each broker gives the current drain as ground truth (and
/// self-heals when a host crash wipes the broker's book).
const DRAIN_SESSION: SessionId = SessionId(u64::MAX);

/// Current utilization (reserved / capacity) of one named physical
/// resource, or the mean over every host CPU and link when `resource`
/// is `None`. Drives [`Trigger::UtilizationAbove`].
fn measured_utilization(env: &PaperEnvironment, resource: Option<&str>) -> f64 {
    use qosr_broker::Broker as _;
    let mut total = 0.0;
    let mut count = 0u32;
    let mut matched = None;
    {
        let mut visit = |name: &str, util: f64| {
            if let Some(target) = resource {
                if name == target {
                    matched = Some(util);
                }
            } else {
                total += util;
                count += 1;
            }
        };
        for h in 0..crate::env::N_HOSTS {
            let rid = env.host_cpu(h);
            let b = env
                .coordinator
                .owner_of(rid)
                .expect("host CPUs are brokered")
                .brokers()
                .get(rid)
                .expect("registered");
            visit(env.space.name(rid), 1.0 - b.available() / b.capacity());
        }
        for l in env.fabric.link_brokers() {
            visit(
                env.space.name(l.resource()),
                1.0 - l.available() / l.capacity(),
            );
        }
    }
    match resource {
        Some(name) => {
            matched.unwrap_or_else(|| panic!("utilization trigger names unknown resource `{name}`"))
        }
        None => total / f64::from(count),
    }
}

/// Moves one broker's administrative drain so its usable capacity is
/// `factor` × nominal. Draining reserves at most what is currently
/// available (live sessions are never evicted); restoring releases the
/// drain back.
fn drain_to(broker: &dyn qosr_broker::Broker, factor: f64, now: SimTime) {
    let target = broker.capacity() * (1.0 - factor);
    let current = broker.reserved_for(DRAIN_SESSION);
    if target > current {
        let take = (target - current).min(broker.available());
        if take > 0.0 {
            let _ = broker.reserve(DRAIN_SESSION, take, now);
        }
    } else if current > target {
        broker.release_amount(DRAIN_SESSION, current - target, now);
    }
}

/// Applies [`EventSpec::ResizeCapacity`] to one named physical resource,
/// or to every host CPU and link when `resource` is `None`.
fn resize_capacity(env: &PaperEnvironment, factor: f64, resource: Option<&str>, now: SimTime) {
    use qosr_broker::Broker as _;
    let mut matched = false;
    for h in 0..crate::env::N_HOSTS {
        let rid = env.host_cpu(h);
        if resource.is_none_or(|r| r == env.space.name(rid)) {
            let b = env
                .coordinator
                .owner_of(rid)
                .expect("host CPUs are brokered")
                .brokers()
                .get(rid)
                .expect("registered");
            drain_to(b.as_ref(), factor, now);
            matched = true;
        }
    }
    for l in env.fabric.link_brokers() {
        if resource.is_none_or(|r| r == env.space.name(l.resource())) {
            drain_to(l.as_ref(), factor, now);
            matched = true;
        }
    }
    assert!(
        matched,
        "resize_capacity names unknown resource `{}`",
        resource.unwrap_or_default()
    );
}

/// Executes one simulation run.
pub fn run_scenario(config: &ScenarioConfig) -> RunResult {
    run_scenario_traced(config, std::sync::Arc::new(qosr_obs::NullSink))
}

/// Executes one simulation run with the coordinator streaming
/// session-lifecycle [`qosr_obs::TraceEvent`]s (timestamped in sim-time)
/// to `sink`. The trace opens with one `ResourceName` event per resource
/// so replays can name bottlenecks; metrics are identical to
/// [`run_scenario`] under the same config — the trace's reduction via
/// `qosr_obs::TraceSummary` reproduces this run's [`RunMetrics`] exactly.
pub fn run_scenario_traced(
    config: &ScenarioConfig,
    sink: std::sync::Arc<dyn qosr_obs::TraceSink>,
) -> RunResult {
    run_scenario_instrumented(config, sink, None)
}

/// Executes one simulation run with full live telemetry: trace events
/// stream to `sink` (as in [`run_scenario_traced`]) and, when a
/// [`qosr_obs::MetricsRegistry`] is given, the run additionally
///
/// * attaches the coordinator's counters and **enables its phase
///   timers**, so collect/plan/commit/replan/rollback wall-clock
///   distributions accumulate live;
/// * feeds the registry's gauges from every sampling tick
///   ([`ScenarioConfig::sample_period`]): per-resource utilization
///   (`utilization{resource=...}`), per-host broker utilization
///   (`host_utilization{host=...}`), live session count
///   (`active_sessions`), buffered arrivals (`pending_requests`), and —
///   for batched runs — the admission queue's in-flight round size and
///   last batch size.
///
/// The registry outlives the run, so `qosr metrics` can render a
/// one-shot exposition afterwards and `--metrics-addr` can serve it
/// live while the run is still going.
pub fn run_scenario_instrumented(
    config: &ScenarioConfig,
    sink: std::sync::Arc<dyn qosr_obs::TraceSink>,
    registry: Option<&qosr_obs::MetricsRegistry>,
) -> RunResult {
    run_scenario_observed(config, sink, registry, None)
}

/// [`run_scenario_instrumented`] with a caller-owned request tracer.
///
/// When `tracer` is given it replaces the coordinator's private one, so
/// span histograms, outcome counts, and the flight ring survive the run
/// for inspection (`tracer.set_enabled(true)` is still implied by
/// [`ScenarioConfig::trace_requests`]). Pass `None` to keep the
/// coordinator's internal tracer, which dies with the run.
pub fn run_scenario_observed(
    config: &ScenarioConfig,
    sink: std::sync::Arc<dyn qosr_obs::TraceSink>,
    registry: Option<&qosr_obs::MetricsRegistry>,
    tracer: Option<std::sync::Arc<qosr_obs::Tracer>>,
) -> RunResult {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let start = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let service_options = ServiceOptions {
        requirement_scale: config.requirement_scale,
        diversity_ratio: config.diversity_ratio,
    };
    let broker_config = LocalBrokerConfig {
        alpha_window: config.alpha_window,
        // The change log must cover the maximum observation age.
        log_horizon: (config.staleness * 2.0).max(64.0),
    };
    let mut env = PaperEnvironment::build_with_topology_traced(
        &mut rng,
        &service_options,
        config.capacity_range,
        broker_config,
        config.topology.into(),
        sink.clone(),
    );
    if let Some(tracer) = tracer {
        env.coordinator.set_tracer(tracer);
    }
    let env = env;
    if let Some(registry) = registry {
        registry.attach_counters(env.coordinator.counters_arc());
        registry.attach_timers(std::sync::Arc::clone(env.coordinator.phase_timers()));
    }
    if sink.enabled() {
        // Preamble: bind every resource id to its display name so a
        // replayed trace can label bottleneck resources.
        for rid in env.space.ids() {
            sink.emit(
                &qosr_obs::TraceEvent::new(0.0, qosr_obs::EventKind::ResourceName)
                    .with_resource(u64::from(rid.0))
                    .with_name(env.space.name(rid)),
            );
        }
    }

    // Arm the fault injector (a no-op with the default empty plan: its
    // RNG stream is separate from the scenario's and a never-firing
    // injector draws nothing from it).
    let faults = &config.faults;
    env.coordinator.faults().configure(
        faults.seed,
        faults.drop_probability,
        faults.commit_failure_probability,
    );
    for crash in &faults.crashes {
        assert!(
            crash.host < crate::env::N_HOSTS,
            "fault plan crashes unknown host {}",
            crash.host
        );
        if let Some(recover_at) = crash.recover_at {
            assert!(
                recover_at > crash.at,
                "host {} recovery at {recover_at} not after crash at {}",
                crash.host,
                crash.at
            );
        }
    }

    let establish_options = EstablishOptions {
        planner: config.planner.into(),
        observation: if config.staleness > 0.0 {
            ObservationPolicy::Stale {
                max_age: config.staleness,
            }
        } else {
            ObservationPolicy::Accurate
        },
        qrg: QrgOptions {
            psi: config.psi.into(),
            disable_tie_break: config.disable_tie_break,
        },
        retry: RetryPolicy {
            max_retries: faults.max_retries,
            backoff_base: faults.backoff_base,
            tradeoff_fallback: faults.tradeoff_fallback,
        },
    };

    let mut workload = WorkloadGenerator::new(config.rate_per_60tu);
    let mut queue = EventQueue::new();
    let mut metrics = RunMetrics::default();
    /// A live session: its handle and instance (for replanning).
    struct Active {
        established: EstablishedSession,
        instance: qosr_model::SessionInstance,
    }
    let mut active: HashMap<SessionId, Active> = HashMap::new();
    let horizon = SimTime::new(config.horizon);

    /// Flushes one batched admission round and records every outcome
    /// exactly as the per-arrival path would.
    #[allow(clippy::too_many_arguments)]
    fn flush_batch(
        admission: &AdmissionQueue<'_>,
        env: &PaperEnvironment,
        establish_options: &EstablishOptions,
        pending: &mut Vec<(
            crate::workload::SessionRequest,
            qosr_model::SessionInstance,
            Option<qosr_obs::TraceId>,
        )>,
        now: SimTime,
        queue: &mut EventQueue,
        active: &mut HashMap<SessionId, Active>,
        metrics: &mut RunMetrics,
    ) {
        if pending.is_empty() {
            return;
        }
        let requests: Vec<AdmitRequest> = pending
            .iter()
            .map(|(_, session, trace)| {
                let request = AdmitRequest::new(session.clone()).options(establish_options.clone());
                match trace {
                    Some(id) => request.traced(*id),
                    None => request,
                }
            })
            .collect();
        let outcomes = admission.admit(&requests, now);
        for ((meta, instance, _), outcome) in pending.drain(..).zip(outcomes) {
            match outcome.into_result() {
                Ok(established) => {
                    let level = established.plan.rank;
                    metrics.record_outcome(meta.class, Some(level));
                    if let Some(b) = established.plan.bottleneck {
                        metrics.record_bottleneck(env.space.name(b.resource));
                    }
                    let ty = ServiceType::of_service(meta.service);
                    let label = path_label(ty, &established.plan.signature());
                    match ty {
                        ServiceType::A => metrics.paths_a.record(label),
                        ServiceType::B => metrics.paths_b.record(label),
                    }
                    queue.schedule(now + meta.duration, Event::Departure(established.id));
                    active.insert(
                        established.id,
                        Active {
                            established,
                            instance,
                        },
                    );
                }
                Err(err) => {
                    metrics.record_outcome(meta.class, None);
                    match err {
                        EstablishError::Plan(_)
                        | EstablishError::QosBelowMin { .. }
                        | EstablishError::DeadlineExpired { .. } => metrics.plan_failures += 1,
                        EstablishError::Reserve(_) => metrics.reserve_failures += 1,
                        EstablishError::Fault(_) => metrics.fault_failures += 1,
                    }
                }
            }
        }
    }

    let admission = config.batch_arrivals.map(|b| {
        AdmissionQueue::new(
            &env.coordinator,
            AdmissionConfig {
                workers: b.workers.max(1),
                max_replans: b.max_replans,
                seed: config.seed,
                observation: establish_options.observation,
            },
        )
    });
    let mut pending: Vec<(
        crate::workload::SessionRequest,
        qosr_model::SessionInstance,
        Option<qosr_obs::TraceId>,
    )> = Vec::new();

    // Request tracing: mint sequential ids at ingress so every span
    // tree is attributable to one arrival, in arrival order.
    if config.trace_requests {
        env.coordinator.tracer().set_enabled(true);
    }
    let mut next_trace: u64 = 0;

    queue.schedule(
        SimTime::ZERO + workload.next_interarrival(&mut rng),
        Event::Arrival,
    );
    if config.prob_shift_period > 0.0 {
        queue.schedule(
            SimTime::ZERO + config.prob_shift_period,
            Event::ProbabilityShift,
        );
    }
    if let Some(period) = config.upgrade_period {
        assert!(period > 0.0, "upgrade period must be positive");
        queue.schedule(SimTime::ZERO + period, Event::UpgradeScan);
    }
    let mut timeseries: Vec<crate::TimeSample> = Vec::new();
    if let Some(period) = config.sample_period {
        assert!(period > 0.0, "sample period must be positive");
        queue.schedule(SimTime::ZERO + period, Event::Sample);
    }
    for crash in &faults.crashes {
        queue.schedule(SimTime::ZERO + crash.at, Event::HostDown(crash.host));
        if let Some(recover_at) = crash.recover_at {
            queue.schedule(SimTime::ZERO + recover_at, Event::HostUp(crash.host));
        }
    }

    // Arm the scenario-DSL rules. File-loaded configs were validated by
    // `ScenarioFile::validate`; re-checking here makes a hand-built
    // config fail fast too.
    let rule_problems = crate::dsl::validate_rules(&config.rules);
    assert!(
        rule_problems.is_empty(),
        "invalid scenario rules: {}",
        rule_problems.join("; ")
    );
    /// Per-rule firing state. Condition triggers fire on the upward
    /// crossing and re-arm once the predicate is false again (crossing
    /// hysteresis); timed triggers never disarm.
    struct RuleState {
        armed: bool,
        fired: bool,
    }
    let mut rule_states: Vec<RuleState> = config
        .rules
        .iter()
        .map(|_| RuleState {
            armed: true,
            fired: false,
        })
        .collect();
    // Mutable workload knobs the DSL events steer. `base_rate` is the
    // rate the diurnal curve oscillates around; `demand_scale`
    // multiplies every subsequent request's resource demand. Both stay
    // at their neutral values (and the RNG draw order stays untouched)
    // when no rule fires, keeping rule-free runs bit-identical to
    // earlier releases.
    let mut demand_scale = 1.0_f64;
    let mut base_rate = config.rate_per_60tu;
    let mut diurnal: Option<(f64, f64)> = None;
    // Advance-reservation state for `bulk_transfer` events: a shadow
    // bandwidth calendar mirroring the link brokers' nominal
    // capacities. Built lazily on the first firing so rule-free runs
    // construct nothing and stay bit-identical to earlier releases.
    let mut advance: Option<qosr_broker::AdvanceRegistry> = None;
    let mut advance_sessions: u64 = 0;
    for (i, rule) in config.rules.iter().enumerate() {
        match &rule.trigger {
            Trigger::At(t) => queue.schedule(SimTime::ZERO + *t, Event::ScenarioRule(i)),
            Trigger::Every {
                period,
                start,
                until,
            } => {
                let first = start.unwrap_or(*period);
                if until.is_none_or(|u| first <= u) {
                    queue.schedule(SimTime::ZERO + first, Event::ScenarioRule(i));
                }
            }
            Trigger::UtilizationAbove { poll, .. } | Trigger::SessionsAbove { poll, .. } => queue
                .schedule(
                    SimTime::ZERO + poll.unwrap_or(DEFAULT_POLL),
                    Event::ScenarioPoll(i),
                ),
        }
    }

    /// Samples one request from the workload and admits it through the
    /// configured path (per-arrival or batched), recording the outcome.
    /// Shared by [`Event::Arrival`] and [`Event::BurstArrival`] so
    /// scenario bursts take exactly the organic admission path.
    macro_rules! admit_one {
        ($now:expr) => {{
            let now = $now;
            let mut request = workload.sample(&mut rng);
            if demand_scale != 1.0 {
                request.scale *= demand_scale;
            }
            let session = env
                .session(request.service, request.domain, request.scale)
                .expect("generated requests are always instantiable");
            let trace_id = config.trace_requests.then(|| {
                let id = qosr_obs::TraceId(next_trace);
                next_trace += 1;
                id
            });
            if let Some(batch) = &config.batch_arrivals {
                pending.push((request, session, trace_id));
                if pending.len() >= batch.size.max(1) {
                    flush_batch(
                        admission.as_ref().expect("queue exists when batching"),
                        &env,
                        &establish_options,
                        &mut pending,
                        now,
                        &mut queue,
                        &mut active,
                        &mut metrics,
                    );
                }
            } else {
                let mut admit = AdmitRequest::new(session).options(establish_options.clone());
                if let Some(id) = trace_id {
                    admit = admit.traced(id);
                }
                match env
                    .coordinator
                    .establish_request(&admit, now, &mut rng)
                    .into_result()
                {
                    Ok(established) => {
                        let level = established.plan.rank;
                        metrics.record_outcome(request.class, Some(level));
                        if let Some(b) = established.plan.bottleneck {
                            metrics.record_bottleneck(env.space.name(b.resource));
                        }
                        let ty = ServiceType::of_service(request.service);
                        let label = path_label(ty, &established.plan.signature());
                        match ty {
                            ServiceType::A => metrics.paths_a.record(label),
                            ServiceType::B => metrics.paths_b.record(label),
                        }
                        queue.schedule(now + request.duration, Event::Departure(established.id));
                        active.insert(
                            established.id,
                            Active {
                                established,
                                instance: admit.into_session(),
                            },
                        );
                    }
                    Err(err) => {
                        metrics.record_outcome(request.class, None);
                        match err {
                            EstablishError::Plan(_)
                            | EstablishError::QosBelowMin { .. }
                            | EstablishError::DeadlineExpired { .. } => metrics.plan_failures += 1,
                            EstablishError::Reserve(_) => metrics.reserve_failures += 1,
                            EstablishError::Fault(_) => metrics.fault_failures += 1,
                        }
                    }
                }
            }
        }};
    }

    /// Fires rule `$i` now: bumps the counter, emits the trace event
    /// (`$value` carries the measured quantity for condition triggers),
    /// and applies the rule's events in order.
    macro_rules! fire_rule {
        ($now:expr, $i:expr, $value:expr) => {{
            let now = $now;
            let i: usize = $i;
            let value: Option<f64> = $value;
            let rule = &config.rules[i];
            rule_states[i].fired = true;
            metrics.scenario_triggers += 1;
            if sink.enabled() {
                let events: Vec<&str> = rule.events.iter().map(|e| e.kind()).collect();
                let mut ev =
                    qosr_obs::TraceEvent::new(now.value(), qosr_obs::EventKind::ScenarioTrigger)
                        .with_name(rule.label(i))
                        .with_detail(format!("{} -> {}", rule.trigger.kind(), events.join("+")));
                if let Some(v) = value {
                    ev = ev.with_value(v);
                }
                sink.emit(&ev);
            }
            for spec in &rule.events {
                match spec {
                    EventSpec::FlashCrowd { sessions, over } => {
                        let n = *sessions;
                        for k in 0..n {
                            // Spread the burst evenly over the window,
                            // first arrival immediately.
                            let offset = if n > 1 {
                                *over * f64::from(k) / f64::from(n - 1)
                            } else {
                                0.0
                            };
                            queue.schedule(now + offset, Event::BurstArrival);
                        }
                    }
                    EventSpec::CrashHost { host, down_for } => {
                        queue.schedule(now, Event::HostDown(*host));
                        if let Some(d) = down_for {
                            queue.schedule(now + *d, Event::HostUp(*host));
                        }
                    }
                    EventSpec::RecoverHost { host } => {
                        queue.schedule(now, Event::HostUp(*host));
                    }
                    EventSpec::ResizeCapacity { factor, resource } => {
                        resize_capacity(&env, *factor, resource.as_deref(), now);
                    }
                    EventSpec::QosShift {
                        demand_scale: scale,
                    } => demand_scale = *scale,
                    EventSpec::SetRate { per_60tu } => {
                        base_rate = *per_60tu;
                        workload.set_rate(base_rate);
                    }
                    EventSpec::ScaleRate { factor } => {
                        base_rate *= factor;
                        workload.set_rate(base_rate);
                    }
                    EventSpec::Diurnal { period, amplitude } => {
                        diurnal = Some((*period, *amplitude));
                    }
                    EventSpec::HeavyTail { alpha, min, cap } => {
                        workload.set_duration_model(crate::workload::DurationModel::BoundedPareto {
                            alpha: *alpha,
                            min: min.unwrap_or(crate::workload::MIN_DURATION),
                            cap: cap.unwrap_or(crate::workload::MAX_DURATION),
                        })
                    }
                    EventSpec::ShiftWeights => workload.shift_weights(&mut rng),
                    EventSpec::BulkTransfer {
                        volume,
                        within,
                        resource,
                        min_rate,
                        max_rate,
                    } => {
                        let registry = advance.get_or_insert_with(|| {
                            let mut reg = qosr_broker::AdvanceRegistry::new();
                            for l in env.fabric.link_brokers() {
                                use qosr_broker::Broker as _;
                                reg.register(std::sync::Arc::new(
                                    qosr_broker::TimelineBroker::new(l.resource(), l.capacity()),
                                ));
                            }
                            reg.set_sink(sink.clone());
                            reg.set_counters(env.coordinator.counters_arc());
                            reg
                        });
                        let rid = match resource.as_deref() {
                            Some(name) => {
                                use qosr_broker::Broker as _;
                                env.fabric
                                    .link_brokers()
                                    .iter()
                                    .map(|l| l.resource())
                                    .find(|&r| env.space.name(r) == name)
                                    .unwrap_or_else(|| {
                                        panic!("bulk_transfer names unknown link `{name}`")
                                    })
                            }
                            None => {
                                use qosr_broker::Broker as _;
                                env.fabric.link_brokers()[0].resource()
                            }
                        };
                        advance_sessions += 1;
                        let mut request = qosr_broker::AdvanceRequest::malleable(
                            SessionId(advance_sessions),
                            rid,
                            *volume,
                            now + *within,
                        )
                        .earliest(now);
                        if config.planner == PlannerKind::Tradeoff {
                            request = request.alpha_policy(qosr_broker::AlphaPolicy::Tradeoff);
                        }
                        if let Some(r) = min_rate {
                            request = request.min_rate(*r);
                        }
                        if let Some(r) = max_rate {
                            request = request.max_rate(*r);
                        }
                        match &registry.book(&request, now) {
                            qosr_broker::AdvanceOutcome::Booked { profile } => {
                                metrics.advance_booked += 1;
                                metrics.bulk_volume_admitted += profile.volume;
                            }
                            qosr_broker::AdvanceOutcome::Repacked { profile, .. } => {
                                metrics.advance_repacked += 1;
                                metrics.bulk_volume_admitted += profile.volume;
                            }
                            qosr_broker::AdvanceOutcome::Rejected { .. } => {
                                metrics.advance_rejected += 1;
                            }
                        }
                    }
                }
            }
        }};
    }

    while let Some((now, event)) = queue.pop() {
        if now > horizon {
            break;
        }
        match event {
            Event::Arrival => {
                // Under a diurnal curve the rate tracks the time of day;
                // `set_rate` draws nothing, so rule-free runs are
                // untouched.
                if let Some((period, amplitude)) = diurnal {
                    let phase = std::f64::consts::TAU * now.value() / period;
                    workload.set_rate(base_rate * (1.0 + amplitude * phase.sin()));
                }
                queue.schedule(now + workload.next_interarrival(&mut rng), Event::Arrival);
                admit_one!(now);
            }
            Event::BurstArrival => {
                metrics.burst_arrivals += 1;
                admit_one!(now);
            }
            Event::Departure(id) => {
                if let Some(entry) = active.remove(&id) {
                    env.coordinator.terminate(&entry.established, now);
                    metrics.final_qos.record(Some(entry.established.plan.rank));
                }
            }
            Event::ProbabilityShift => {
                workload.shift_weights(&mut rng);
                queue.schedule(now + config.prob_shift_period, Event::ProbabilityShift);
            }
            Event::UpgradeScan => {
                let period = config.upgrade_period.expect("scan only scheduled when set");
                // Deterministic iteration order for reproducibility.
                let mut ids: Vec<SessionId> = active.keys().copied().collect();
                ids.sort_unstable();
                for id in ids {
                    let entry = active.get_mut(&id).expect("still live");
                    if entry.established.plan.rank
                        >= *entry
                            .instance
                            .service()
                            .sink_ranking()
                            .iter()
                            .max()
                            .expect("non-empty ranking")
                    {
                        continue; // already at the top level
                    }
                    let current = entry.established.clone();
                    // A failed swap leaves the old reservations in
                    // force; keep the old handle in that case.
                    if let Ok((upgraded, swapped)) = env.coordinator.renegotiate(
                        current,
                        &entry.instance,
                        &establish_options,
                        now,
                        &mut rng,
                    ) {
                        if swapped {
                            metrics.upgrades += 1;
                        }
                        entry.established = upgraded;
                    }
                }
                queue.schedule(now + period, Event::UpgradeScan);
            }
            Event::Sample => {
                let period = config
                    .sample_period
                    .expect("sample only scheduled when set");
                let mut utilization = std::collections::BTreeMap::new();
                for h in 0..crate::env::N_HOSTS {
                    let rid = env.host_cpu(h);
                    let b = env
                        .coordinator
                        .owner_of(rid)
                        .expect("host CPUs are brokered")
                        .brokers()
                        .get(rid)
                        .expect("registered");
                    utilization.insert(
                        env.space.name(rid).to_owned(),
                        1.0 - b.available() / b.capacity(),
                    );
                }
                for l in env.fabric.link_brokers() {
                    use qosr_broker::Broker as _;
                    utilization.insert(
                        env.space.name(l.resource()).to_owned(),
                        1.0 - l.available() / l.capacity(),
                    );
                }
                if sink.enabled() {
                    for (name, util) in &utilization {
                        sink.emit(
                            &qosr_obs::TraceEvent::new(
                                now.value(),
                                qosr_obs::EventKind::UtilizationSample,
                            )
                            .with_name(name.clone())
                            .with_value(*util),
                        );
                    }
                }
                if let Some(registry) = registry {
                    let t = now.value();
                    for (name, util) in &utilization {
                        registry.set_gauge("utilization", Some(("resource", name)), t, *util);
                    }
                    // Per-host broker utilization: everything each
                    // host's proxy brokers, reserved over capacity.
                    for proxy in env.coordinator.proxies() {
                        let (mut avail, mut cap) = (0.0, 0.0);
                        for b in proxy.brokers().iter() {
                            avail += b.available();
                            cap += b.capacity();
                        }
                        let util = if cap > 0.0 { 1.0 - avail / cap } else { 0.0 };
                        registry.set_gauge(
                            "host_utilization",
                            Some(("host", proxy.host())),
                            t,
                            util,
                        );
                    }
                    registry.set_gauge("active_sessions", None, t, active.len() as f64);
                    registry.set_gauge("pending_requests", None, t, pending.len() as f64);
                    if let Some(admission) = &admission {
                        registry.set_gauge(
                            "admission_in_flight",
                            None,
                            t,
                            admission.in_flight() as f64,
                        );
                        registry.set_gauge(
                            "admission_last_batch",
                            None,
                            t,
                            admission.last_batch_size() as f64,
                        );
                    }
                }
                timeseries.push(crate::TimeSample {
                    time: now.value(),
                    active_sessions: active.len() as u64,
                    utilization,
                });
                queue.schedule(now + period, Event::Sample);
            }
            Event::HostDown(h) => {
                let host = format!("H{}", h + 1);
                env.coordinator.crash_host(&host, now);
                // Sessions holding reservations on the crashed host are
                // lost: release them everywhere (the recovering broker
                // reclaims crashed-session state, so capacity conserves).
                // Their stale Departure events become harmless no-ops.
                let host_brokers = env.coordinator.proxies()[h].brokers();
                let mut victims: Vec<SessionId> = active
                    .keys()
                    .copied()
                    .filter(|&id| host_brokers.iter().any(|b| b.reserved_for(id) > 0.0))
                    .collect();
                victims.sort_unstable();
                for id in victims {
                    let entry = active.remove(&id).expect("victim is live");
                    env.coordinator.abort(&entry.established, now);
                    metrics.sessions_lost += 1;
                }
            }
            Event::HostUp(h) => {
                let host = format!("H{}", h + 1);
                env.coordinator.recover_host(&host, now);
            }
            Event::ScenarioRule(i) => {
                let rule = &config.rules[i];
                if let Trigger::Every { period, until, .. } = &rule.trigger {
                    let next = now + *period;
                    if !rule.once && next.value() <= until.unwrap_or(config.horizon) {
                        queue.schedule(next, Event::ScenarioRule(i));
                    }
                }
                fire_rule!(now, i, None);
            }
            Event::ScenarioPoll(i) => {
                let (met, value, poll) = match &config.rules[i].trigger {
                    Trigger::UtilizationAbove {
                        threshold,
                        resource,
                        poll,
                    } => {
                        let u = measured_utilization(&env, resource.as_deref());
                        (u > *threshold, u, poll.unwrap_or(DEFAULT_POLL))
                    }
                    Trigger::SessionsAbove { count, poll } => {
                        let n = active.len() as u64;
                        (n > *count, n as f64, poll.unwrap_or(DEFAULT_POLL))
                    }
                    _ => unreachable!("polls are only scheduled for condition triggers"),
                };
                // Crossing hysteresis: fire on the upward edge only,
                // re-arm once the predicate is false again.
                let fire = met && rule_states[i].armed;
                rule_states[i].armed = !met;
                if fire {
                    fire_rule!(now, i, Some(value));
                }
                if !(config.rules[i].once && rule_states[i].fired) {
                    queue.schedule(now + poll, Event::ScenarioPoll(i));
                }
            }
        }
    }

    // A final partial round: arrivals still buffered when the horizon
    // hit are admitted at the horizon (they count like any others).
    if let Some(admission) = &admission {
        flush_batch(
            admission,
            &env,
            &establish_options,
            &mut pending,
            horizon,
            &mut queue,
            &mut active,
            &mut metrics,
        );
    }

    // Sessions still live at the horizon contribute their final level.
    for entry in active.values() {
        metrics.final_qos.record(Some(entry.established.plan.rank));
    }

    // Protocol-level fault accounting lives in the coordinator's
    // counters (this run's coordinator is fresh, so the snapshot is
    // exactly this run's): copy it into the metrics record.
    let snap = env.coordinator.counters().snapshot();
    metrics.faults_injected = snap.faults_injected;
    metrics.rollbacks = snap.rollbacks;
    metrics.retries = snap.retries;
    metrics.degraded_establishes = snap.degraded_commits;
    metrics.batches_planned = snap.batches_planned;
    metrics.commit_conflicts = snap.commit_conflicts;
    metrics.replans = snap.replans;

    RunResult {
        config: config.clone(),
        metrics,
        messages: MessageStatsRecord::from(env.coordinator.stats()),
        timeseries,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(planner: PlannerKind, rate: f64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            rate_per_60tu: rate,
            horizon: 1200.0,
            planner,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn runs_and_counts_sessions() {
        let r = run_scenario(&quick(PlannerKind::Basic, 60.0, 1));
        // Expect roughly rate * horizon / 60 = 1200 arrivals.
        assert!(
            r.metrics.overall.attempts > 900 && r.metrics.overall.attempts < 1500,
            "attempts {}",
            r.metrics.overall.attempts
        );
        assert_eq!(r.messages.attempts, r.metrics.overall.attempts);
        assert_eq!(r.metrics.overall.successes, r.messages.established);
        // Per-class attempts sum to overall.
        let sum: u64 = r.metrics.per_class.iter().map(|c| c.attempts).sum();
        assert_eq!(sum, r.metrics.overall.attempts);
        assert!(r.wall_seconds >= 0.0);
    }

    #[test]
    fn accurate_observations_never_fail_dispatch() {
        let r = run_scenario(&quick(PlannerKind::Basic, 180.0, 2));
        assert_eq!(r.metrics.reserve_failures, 0);
        // Under heavy load some plans must fail.
        assert!(r.metrics.plan_failures > 0);
    }

    #[test]
    fn stale_observations_can_fail_dispatch() {
        let cfg = ScenarioConfig {
            staleness: 8.0,
            ..quick(PlannerKind::Basic, 180.0, 3)
        };
        let r = run_scenario(&cfg);
        assert!(
            r.metrics.reserve_failures > 0,
            "expected dispatch failures under E=8 at high load"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_scenario(&quick(PlannerKind::Tradeoff, 100.0, 7));
        let b = run_scenario(&quick(PlannerKind::Tradeoff, 100.0, 7));
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_scenario(&quick(PlannerKind::Basic, 100.0, 1));
        let b = run_scenario(&quick(PlannerKind::Basic, 100.0, 2));
        assert_ne!(a.metrics, b.metrics);
    }

    #[test]
    fn all_reservations_released_after_departures() {
        // Horizon long enough that every session ends (no arrivals in the
        // tail beyond max duration): run a short burst then drain by
        // checking full availability at the end of a fresh mini-sim.
        // Here we simply verify that active reservations at the end are
        // bounded by sessions whose departure is after the horizon —
        // indirectly, every broker's availability must be within
        // capacity.
        let cfg = quick(PlannerKind::Basic, 60.0, 5);
        let r = run_scenario(&cfg);
        assert!(r.metrics.overall.successes > 0);
        // Re-build the same environment: capacities must be reproducible
        // and positive (sanity of the deterministic construction).
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let env = PaperEnvironment::build(
            &mut rng,
            &crate::services::ServiceOptions {
                requirement_scale: cfg.requirement_scale,
                diversity_ratio: None,
            },
            cfg.capacity_range,
            qosr_broker::LocalBrokerConfig::default(),
        );
        for p in env.coordinator.proxies() {
            for b in p.brokers().iter() {
                assert!(b.available() == b.capacity());
            }
        }
    }

    #[test]
    fn basic_beats_random_under_load() {
        // The paper's headline result. Moderate horizon keeps the test
        // fast; the gap at rate 180 is large enough to be robust.
        let basic = run_scenario(&quick(PlannerKind::Basic, 180.0, 11));
        let random = run_scenario(&quick(PlannerKind::Random, 180.0, 11));
        assert!(
            basic.metrics.overall.success_rate() > random.metrics.overall.success_rate(),
            "basic {} <= random {}",
            basic.metrics.overall.success_rate(),
            random.metrics.overall.success_rate()
        );
    }

    #[test]
    fn tradeoff_lowers_qos_but_not_below_level_1() {
        let tradeoff = run_scenario(&quick(PlannerKind::Tradeoff, 180.0, 13));
        let basic = run_scenario(&quick(PlannerKind::Basic, 180.0, 13));
        let t_qos = tradeoff.metrics.overall.avg_qos_level();
        let b_qos = basic.metrics.overall.avg_qos_level();
        assert!((1.0..=3.0).contains(&t_qos));
        assert!(
            t_qos < b_qos,
            "tradeoff avg QoS {t_qos} should be below basic {b_qos}"
        );
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let cfg = ScenarioConfig {
            planner: PlannerKind::Tradeoff,
            diversity_ratio: Some(3.0),
            ..ScenarioConfig::default()
        };
        let json = serde_json_like(&cfg);
        assert!(json.contains("Tradeoff"));
    }

    /// Minimal serde smoke test without pulling in serde_json: uses the
    /// Debug of the Serialize impl via bincode-like manual check — here
    /// we just ensure the derive exists by serializing to a string with
    /// `format!` over the Debug repr (the real JSON path is exercised by
    /// the experiments binary).
    fn serde_json_like(cfg: &ScenarioConfig) -> String {
        format!("{cfg:?}")
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    fn batched(size: usize, workers: usize, rate: f64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            rate_per_60tu: rate,
            horizon: 1200.0,
            batch_arrivals: Some(BatchArrivals {
                size,
                workers,
                max_replans: 2,
            }),
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn batched_arrivals_admit_in_rounds() {
        let r = run_scenario(&batched(8, 4, 120.0, 9));
        assert!(r.metrics.batches_planned > 0);
        assert!(
            r.metrics.overall.attempts > 1800,
            "{}",
            r.metrics.overall.attempts
        );
        assert!(r.metrics.overall.successes > 0);
        assert_eq!(r.messages.attempts, r.metrics.overall.attempts);
        // One collect round per batch (4 hosts each), not one per
        // arrival: the message saving batching buys.
        assert_eq!(
            r.messages.collect_roundtrips,
            r.metrics.batches_planned * crate::env::N_HOSTS as u64
        );
        assert!(r.messages.collect_roundtrips < r.messages.attempts);
    }

    #[test]
    fn batched_load_provokes_conflicts_and_replans() {
        let r = run_scenario(&batched(16, 4, 240.0, 23));
        assert!(
            r.metrics.commit_conflicts > 0,
            "heavy batched load should conflict"
        );
        assert!(r.metrics.replans > 0, "conflicts should be replanned");
        // Conservation sanity: batching never over-commits a broker.
        // (Capacity bounds are asserted by the brokers themselves; a
        // violated reserve would have panicked the run.)
        assert!(r.metrics.overall.successes > 0);
    }

    #[test]
    fn batched_runs_are_deterministic_across_worker_counts() {
        let a = run_scenario(&batched(6, 1, 150.0, 17));
        let b = run_scenario(&batched(6, 8, 150.0, 17));
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.messages, b.messages);
    }
}

#[cfg(test)]
mod upgrade_tests {
    use super::*;

    #[test]
    fn upgrades_recover_qos_for_tradeoff_sessions() {
        let base = ScenarioConfig {
            seed: 21,
            rate_per_60tu: 150.0,
            horizon: 1800.0,
            planner: PlannerKind::Tradeoff,
            ..ScenarioConfig::default()
        };
        let without = run_scenario(&base);
        let with = run_scenario(&ScenarioConfig {
            upgrade_period: Some(30.0),
            ..base
        });
        assert_eq!(without.metrics.upgrades, 0);
        assert!(with.metrics.upgrades > 0, "no upgrades happened");
        // Final QoS with upgrades beats both its own establishment-time
        // QoS and the no-upgrade baseline's final QoS.
        let final_with = with.metrics.final_qos.avg_qos_level();
        let established_with = with.metrics.overall.avg_qos_level();
        let final_without = without.metrics.final_qos.avg_qos_level();
        assert!(
            final_with > established_with + 0.02,
            "upgrades had no effect: final {final_with} vs established {established_with}"
        );
        assert!(final_with > final_without + 0.02);
        // Upgrades must not hurt admissions.
        assert!(
            (with.metrics.overall.success_rate() - without.metrics.overall.success_rate()).abs()
                < 0.05
        );
    }

    #[test]
    fn final_qos_equals_established_without_upgrades() {
        let r = run_scenario(&ScenarioConfig {
            seed: 3,
            rate_per_60tu: 100.0,
            horizon: 900.0,
            planner: PlannerKind::Basic,
            ..ScenarioConfig::default()
        });
        assert_eq!(r.metrics.final_qos.successes, r.metrics.overall.successes);
        assert_eq!(
            r.metrics.final_qos.qos_level_sum,
            r.metrics.overall.qos_level_sum
        );
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::*;

    #[test]
    fn sampling_produces_a_series() {
        let r = run_scenario(&ScenarioConfig {
            seed: 4,
            rate_per_60tu: 120.0,
            horizon: 600.0,
            sample_period: Some(30.0),
            ..ScenarioConfig::default()
        });
        // ~600/30 samples, at 30-TU spacing.
        assert!(
            r.timeseries.len() >= 18 && r.timeseries.len() <= 20,
            "{} samples",
            r.timeseries.len()
        );
        let mut last = 0.0;
        for s in &r.timeseries {
            assert!(s.time > last);
            last = s.time;
            // 4 CPUs + 14 links sampled, utilization in [0, 1].
            assert_eq!(s.utilization.len(), 18);
            for (name, &u) in &s.utilization {
                assert!((0.0..=1.0).contains(&u), "{name} at {u}");
            }
        }
        // Under load, utilization must be visibly non-zero somewhere.
        let peak = r
            .timeseries
            .iter()
            .flat_map(|s| s.utilization.values())
            .cloned()
            .fold(0.0, f64::max);
        assert!(peak > 0.1, "peak utilization {peak}");
        // Active sessions grow from zero toward steady state.
        assert!(r.timeseries.last().unwrap().active_sessions > 0);
    }

    #[test]
    fn sampling_off_by_default() {
        let r = run_scenario(&ScenarioConfig {
            seed: 4,
            rate_per_60tu: 60.0,
            horizon: 300.0,
            ..ScenarioConfig::default()
        });
        assert!(r.timeseries.is_empty());
    }
}

#[cfg(test)]
mod dsl_tests {
    use super::*;

    fn quick(planner: PlannerKind, rate: f64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            rate_per_60tu: rate,
            horizon: 1200.0,
            planner,
            ..ScenarioConfig::default()
        }
    }

    fn rule(trigger: Trigger, events: Vec<EventSpec>) -> Rule {
        Rule {
            name: String::new(),
            trigger,
            events,
            once: false,
        }
    }

    #[test]
    fn flash_crowd_injects_the_exact_burst() {
        let mut cfg = quick(PlannerKind::Basic, 60.0, 11);
        cfg.rules = vec![rule(
            Trigger::At(300.0),
            vec![EventSpec::FlashCrowd {
                sessions: 40,
                over: 20.0,
            }],
        )];
        let r = run_scenario(&cfg);
        assert_eq!(r.metrics.scenario_triggers, 1);
        assert_eq!(r.metrics.burst_arrivals, 40);
        // Bursts ride on top of the organic Poisson arrivals. The extra
        // sample() draws shift later interarrival variates, so the
        // organic count itself may drift by a hair.
        let baseline = run_scenario(&quick(PlannerKind::Basic, 60.0, 11));
        let delta =
            r.metrics.overall.attempts as i64 - baseline.metrics.overall.attempts as i64 - 40;
        assert!(delta.abs() <= 5, "organic drift {delta}");
    }

    #[test]
    fn bulk_transfer_books_through_the_advance_planner() {
        let mut cfg = quick(PlannerKind::Tradeoff, 60.0, 21);
        cfg.rules = vec![
            rule(
                Trigger::At(100.0),
                vec![EventSpec::BulkTransfer {
                    volume: 500.0,
                    within: 200.0,
                    resource: None,
                    min_rate: None,
                    max_rate: Some(20.0),
                }],
            ),
            rule(
                // A transfer that cannot fit: more volume than the link
                // can carry at line rate before the deadline.
                Trigger::At(150.0),
                vec![EventSpec::BulkTransfer {
                    volume: 1e9,
                    within: 10.0,
                    resource: None,
                    min_rate: None,
                    max_rate: None,
                }],
            ),
        ];
        let r = run_scenario(&cfg);
        assert_eq!(r.metrics.scenario_triggers, 2);
        assert_eq!(r.metrics.advance_booked, 1);
        assert_eq!(r.metrics.advance_rejected, 1);
        assert_eq!(r.metrics.bulk_volume_admitted, 500.0);
        // The advance calendar is a shadow structure: booking through it
        // draws nothing from the scenario RNG, so the organic workload
        // is untouched.
        let baseline = run_scenario(&quick(PlannerKind::Tradeoff, 60.0, 21));
        assert_eq!(r.metrics.overall, baseline.metrics.overall);
        assert_eq!(r.messages, baseline.messages);
    }

    #[test]
    fn inert_rules_leave_the_run_bit_identical() {
        // A rule that never fires must not perturb the RNG draw order.
        let mut cfg = quick(PlannerKind::Tradeoff, 120.0, 12);
        cfg.rules = vec![rule(
            Trigger::At(cfg.horizon * 10.0),
            vec![EventSpec::ShiftWeights],
        )];
        let baseline = run_scenario(&quick(PlannerKind::Tradeoff, 120.0, 12));
        let r = run_scenario(&cfg);
        assert_eq!(r.metrics, baseline.metrics);
        assert_eq!(r.messages, baseline.messages);
    }

    #[test]
    fn deterministic_with_rules_under_seed() {
        let mut cfg = quick(PlannerKind::Tradeoff, 120.0, 13);
        cfg.rules = vec![
            rule(
                Trigger::At(200.0),
                vec![
                    EventSpec::FlashCrowd {
                        sessions: 30,
                        over: 15.0,
                    },
                    EventSpec::QosShift { demand_scale: 1.3 },
                ],
            ),
            rule(
                Trigger::Every {
                    period: 300.0,
                    start: None,
                    until: None,
                },
                vec![EventSpec::ShiftWeights],
            ),
            rule(
                Trigger::SessionsAbove {
                    count: 20,
                    poll: None,
                },
                vec![EventSpec::Diurnal {
                    period: 600.0,
                    amplitude: 0.4,
                }],
            ),
        ];
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.messages, b.messages);
        assert!(
            a.metrics.scenario_triggers >= 4,
            "{}",
            a.metrics.scenario_triggers
        );
    }

    #[test]
    fn resize_capacity_drains_and_restores() {
        // Shrink every resource to 40% up front: success must suffer
        // against the untouched baseline, and restoring at mid-run must
        // leave the drain empty again by the horizon.
        let mut cfg = quick(PlannerKind::Basic, 120.0, 14);
        cfg.rules = vec![
            rule(
                Trigger::At(0.0),
                vec![EventSpec::ResizeCapacity {
                    factor: 0.4,
                    resource: None,
                }],
            ),
            rule(
                Trigger::At(600.0),
                vec![EventSpec::ResizeCapacity {
                    factor: 1.0,
                    resource: None,
                }],
            ),
        ];
        let r = run_scenario(&cfg);
        let baseline = run_scenario(&quick(PlannerKind::Basic, 120.0, 14));
        assert_eq!(r.metrics.scenario_triggers, 2);
        assert!(
            r.metrics.overall.successes < baseline.metrics.overall.successes,
            "drained run {} vs baseline {}",
            r.metrics.overall.successes,
            baseline.metrics.overall.successes
        );
    }

    #[test]
    fn once_rules_fire_once() {
        let mut cfg = quick(PlannerKind::Basic, 60.0, 15);
        cfg.rules = vec![Rule {
            name: "single".into(),
            trigger: Trigger::Every {
                period: 100.0,
                start: None,
                until: None,
            },
            events: vec![EventSpec::ShiftWeights],
            once: true,
        }];
        let r = run_scenario(&cfg);
        assert_eq!(r.metrics.scenario_triggers, 1);
    }

    #[test]
    fn condition_triggers_use_crossing_hysteresis() {
        // Session count stays above 1 nearly the whole run; without
        // hysteresis this would fire on every poll.
        let mut cfg = quick(PlannerKind::Basic, 120.0, 16);
        cfg.rules = vec![rule(
            Trigger::SessionsAbove {
                count: 1,
                poll: Some(5.0),
            },
            vec![EventSpec::QosShift { demand_scale: 1.0 }],
        )];
        let r = run_scenario(&cfg);
        assert!(
            r.metrics.scenario_triggers >= 1 && r.metrics.scenario_triggers < 20,
            "{} firings",
            r.metrics.scenario_triggers
        );
    }

    #[test]
    fn scenario_crash_events_lose_sessions() {
        let mut cfg = quick(PlannerKind::Basic, 120.0, 17);
        cfg.rules = vec![rule(
            Trigger::At(400.0),
            vec![EventSpec::CrashHost {
                host: 0,
                down_for: Some(200.0),
            }],
        )];
        let r = run_scenario(&cfg);
        assert!(r.metrics.sessions_lost > 0);
    }

    #[test]
    fn trace_replay_counts_rule_firings() {
        let mut cfg = quick(PlannerKind::Basic, 90.0, 18);
        cfg.rules = vec![Rule {
            name: "pulse".into(),
            trigger: Trigger::Every {
                period: 250.0,
                start: None,
                until: None,
            },
            events: vec![EventSpec::ScaleRate { factor: 1.1 }],
            once: false,
        }];
        let sink = std::sync::Arc::new(qosr_obs::MemorySink::new());
        let r = run_scenario_traced(&cfg, sink.clone());
        let summary = qosr_obs::TraceSummary::from_events(&sink.events());
        assert_eq!(summary.scenario_triggers, r.metrics.scenario_triggers);
        assert_eq!(
            summary.triggers_by_rule.get("pulse").copied().unwrap_or(0),
            r.metrics.scenario_triggers
        );
        assert_eq!(summary.committed, r.metrics.overall.successes);
        assert_eq!(summary.qos_level_sum, r.metrics.overall.qos_level_sum);
    }

    #[test]
    #[should_panic(expected = "invalid scenario rules")]
    fn invalid_rules_fail_fast() {
        let mut cfg = quick(PlannerKind::Basic, 60.0, 19);
        cfg.rules = vec![rule(Trigger::At(-5.0), vec![EventSpec::ShiftWeights])];
        run_scenario(&cfg);
    }
}
