//! The scenario DSL: declarative, serde-loadable simulation scenarios.
//!
//! A [`ScenarioFile`] (conventionally `*.scenario.json`; see the curated
//! library under `scenarios/`) describes one simulation run as **data**:
//! a partial [`ScenarioConfig`] patch plus a list of [`Rule`]s, each
//! pairing one [`Trigger`] (*when*) with a list of
//! [`EventSpec`]s (*what*). At run time the rules are compiled into the
//! discrete-event engine's own stream — timed triggers become scheduled
//! [`Event::ScenarioRule`](crate::Event) firings, condition triggers
//! become periodic [`Event::ScenarioPoll`](crate::Event) evaluations
//! with crossing hysteresis — so every firing is totally ordered against
//! arrivals and departures, replayable through the `qosr-obs` trace
//! layer (`EventKind::ScenarioTrigger`), and deterministic under the
//! scenario seed.
//!
//! # Loading and running a scenario file
//!
//! ```
//! use qosr_sim::{run_scenario, ScenarioFile};
//!
//! let file = ScenarioFile::from_json(
//!     r#"{
//!         "name": "mini-flash",
//!         "description": "one mid-run arrival burst",
//!         "config": { "horizon": 300.0, "rate_per_60tu": 60.0 },
//!         "rules": [
//!             { "name": "burst",
//!               "trigger": { "at": 100.0 },
//!               "events": [ { "flash_crowd": { "sessions": 40, "over": 10.0 } } ] }
//!         ]
//!     }"#,
//! )
//! .unwrap();
//! file.validate().unwrap();
//! let result = run_scenario(&file.to_config());
//! assert_eq!(result.metrics.scenario_triggers, 1);
//! assert_eq!(result.metrics.burst_arrivals, 40);
//! ```
//!
//! # Determinism and seeding
//!
//! Rules draw nothing from the RNG themselves (only `shift_weights` and
//! the extra arrivals they inject consume the scenario stream, exactly
//! as organic events would), so a file replays bit-identically under a
//! fixed `config.seed`: same metrics, same trace. See SCENARIOS.md for
//! the full reference and per-scenario examples.

use crate::fault::{FaultPlan, HostCrash};
use crate::scenario::{BatchArrivals, PlannerKind, PsiKind, ScenarioConfig, TopologyKind};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// Default evaluation period (TU) for condition triggers that leave
/// `poll` unset.
pub const DEFAULT_POLL: f64 = 5.0;

/// When a scenario rule fires.
///
/// JSON encoding is a single-key object naming the trigger kind:
/// `{"at": 600.0}`, `{"every": {"period": 300.0}}`,
/// `{"utilization_above": {"threshold": 0.7}}`,
/// `{"sessions_above": {"count": 150}}`.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Fire once at an absolute simulated time (TU).
    At(f64),
    /// Fire periodically: first at `start` (default: one `period` in),
    /// then every `period` TU until `until` (default: the horizon).
    Every {
        /// Period between firings (TU).
        period: f64,
        /// First firing time (TU); defaults to `period`.
        start: Option<f64>,
        /// No firing is scheduled after this time (TU).
        until: Option<f64>,
    },
    /// Fire when measured utilization crosses `threshold` upward. The
    /// predicate is re-evaluated every `poll` TU ([`DEFAULT_POLL`] when
    /// unset) and re-arms once utilization drops back below the
    /// threshold, so a sustained overload fires once, not once per poll.
    UtilizationAbove {
        /// Utilization threshold in `[0, 1]` (reserved / capacity).
        threshold: f64,
        /// A physical resource name (`"H1.cpu"`, `"L3"`); unset = the
        /// mean over every host CPU and link.
        resource: Option<String>,
        /// Evaluation period (TU); defaults to [`DEFAULT_POLL`].
        poll: Option<f64>,
    },
    /// Fire when the live-session count crosses `count` upward, with the
    /// same poll-and-re-arm semantics as [`Trigger::UtilizationAbove`].
    SessionsAbove {
        /// The session-count threshold (fires strictly above it).
        count: u64,
        /// Evaluation period (TU); defaults to [`DEFAULT_POLL`].
        poll: Option<f64>,
    },
}

impl Trigger {
    /// The trigger kind's JSON key, for labels and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Trigger::At(_) => "at",
            Trigger::Every { .. } => "every",
            Trigger::UtilizationAbove { .. } => "utilization_above",
            Trigger::SessionsAbove { .. } => "sessions_above",
        }
    }
}

/// What a firing rule does to the run.
///
/// JSON encoding mirrors [`Trigger`]: a single-key object naming the
/// event kind, e.g. `{"flash_crowd": {"sessions": 120, "over": 30.0}}`;
/// the payload-free `shift_weights` may also be written as the bare
/// string `"shift_weights"`.
#[derive(Debug, Clone, PartialEq)]
pub enum EventSpec {
    /// Inject `sessions` extra arrivals, evenly spread over the next
    /// `over` TU — a flash crowd on top of the Poisson process.
    FlashCrowd {
        /// Number of extra arrivals.
        sessions: u32,
        /// Window (TU) the burst is spread over; 0 = all at once.
        over: f64,
    },
    /// Crash a host (0-based index; host `h` is `H{h+1}`): its brokers
    /// stop answering and live sessions holding reservations there are
    /// lost. With `down_for` set the host recovers that many TU later.
    CrashHost {
        /// Host index to crash.
        host: usize,
        /// Recovery delay (TU) after the crash; unset = down for good.
        down_for: Option<f64>,
    },
    /// Recover a crashed host immediately.
    RecoverHost {
        /// Host index to recover.
        host: usize,
    },
    /// Resize effective capacity to `factor` × nominal by draining (or
    /// restoring) an administrative reservation on the targeted brokers.
    /// `factor` 1.0 restores full capacity; 0.5 halves it. Applies to
    /// one named physical resource or, unset, to every host CPU and
    /// link.
    ResizeCapacity {
        /// Fraction of nominal capacity left usable, in `(0, 1]`.
        factor: f64,
        /// A physical resource name (`"H1.cpu"`, `"L3"`); unset = all.
        resource: Option<String>,
    },
    /// Multiply every *subsequent* request's resource demand by
    /// `demand_scale` (absolute, not cumulative: the last shift wins).
    QosShift {
        /// The demand multiplier applied on top of the fat/normal scale.
        demand_scale: f64,
    },
    /// Set the arrival rate to an absolute value (sessions per 60 TU).
    SetRate {
        /// The new rate.
        per_60tu: f64,
    },
    /// Multiply the current arrival rate.
    ScaleRate {
        /// The multiplier (0.5 halves the rate, 2.0 doubles it).
        factor: f64,
    },
    /// Install a diurnal arrival-rate curve: from now on the rate tracks
    /// `base · (1 + amplitude · sin(2π · t / period))`, where `base` is
    /// the rate in force when the event fires (later `set_rate` /
    /// `scale_rate` events move the base).
    Diurnal {
        /// Full day length (TU).
        period: f64,
        /// Relative swing in `[0, 1)`; 0.5 swings between 0.5× and 1.5×.
        amplitude: f64,
    },
    /// Switch session durations to a bounded Pareto tail (see
    /// [`DurationModel::BoundedPareto`](crate::DurationModel)).
    HeavyTail {
        /// Tail index α (> 0; smaller = heavier tail).
        alpha: f64,
        /// Minimum duration (TU); defaults to the paper's 20.
        min: Option<f64>,
        /// Duration cap (TU); defaults to the paper's 600.
        cap: Option<f64>,
    },
    /// Redraw the per-service popularity weights immediately (on top of
    /// the periodic `prob_shift_period` reshuffles).
    ShiftWeights,
    /// Submit a malleable advance reservation: move `volume` units over
    /// a network link before a deadline `within` TU after the firing
    /// time. The advance planner picks start, duration, and rate
    /// profile around existing bookings (see DESIGN.md, "Advance
    /// reservations & malleable planning").
    BulkTransfer {
        /// Total volume to move (rate × TU).
        volume: f64,
        /// Relative deadline: the transfer must finish within this many
        /// TU of the rule firing.
        within: f64,
        /// A physical link name (`"L3"`); unset = the first link.
        resource: Option<String>,
        /// Minimum usable rate; thinner availability steps are paused
        /// through rather than trickled.
        min_rate: Option<f64>,
        /// Rate ceiling (e.g. a NIC line rate).
        max_rate: Option<f64>,
    },
}

impl EventSpec {
    /// The event kind's JSON key, for labels and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            EventSpec::FlashCrowd { .. } => "flash_crowd",
            EventSpec::CrashHost { .. } => "crash_host",
            EventSpec::RecoverHost { .. } => "recover_host",
            EventSpec::ResizeCapacity { .. } => "resize_capacity",
            EventSpec::QosShift { .. } => "qos_shift",
            EventSpec::SetRate { .. } => "set_rate",
            EventSpec::ScaleRate { .. } => "scale_rate",
            EventSpec::Diurnal { .. } => "diurnal",
            EventSpec::HeavyTail { .. } => "heavy_tail",
            EventSpec::ShiftWeights => "shift_weights",
            EventSpec::BulkTransfer { .. } => "bulk_transfer",
        }
    }
}

/// One scenario rule: a [`Trigger`] plus the [`EventSpec`]s it applies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Display label for traces and reports; defaults to `rule<index>`.
    #[serde(default)]
    pub name: String,
    /// When the rule fires.
    pub trigger: Trigger,
    /// What happens, applied in order.
    pub events: Vec<EventSpec>,
    /// Fire at most once, even for periodic or re-arming triggers.
    #[serde(default)]
    pub once: bool,
}

impl Rule {
    /// The rule's display label: its `name`, or `rule<index>` when
    /// unnamed.
    pub fn label(&self, index: usize) -> String {
        if self.name.is_empty() {
            format!("rule{index}")
        } else {
            self.name.clone()
        }
    }
}

// ─── Hand-written serde for the tagged enums ──────────────────────────
//
// The vendored serde derive covers named structs and unit enums only, so
// `Trigger` / `EventSpec` (single-key externally tagged objects) map to
// and from the `Value` tree by hand, with small derived helper structs
// carrying each variant's payload.

#[derive(Serialize, Deserialize)]
struct EveryDef {
    period: f64,
    #[serde(default)]
    start: Option<f64>,
    #[serde(default)]
    until: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct UtilizationAboveDef {
    threshold: f64,
    #[serde(default)]
    resource: Option<String>,
    #[serde(default)]
    poll: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct SessionsAboveDef {
    count: u64,
    #[serde(default)]
    poll: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct FlashCrowdDef {
    sessions: u32,
    over: f64,
}

#[derive(Serialize, Deserialize)]
struct CrashHostDef {
    host: usize,
    #[serde(default)]
    down_for: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct RecoverHostDef {
    host: usize,
}

#[derive(Serialize, Deserialize)]
struct ResizeCapacityDef {
    factor: f64,
    #[serde(default)]
    resource: Option<String>,
}

#[derive(Serialize, Deserialize)]
struct QosShiftDef {
    demand_scale: f64,
}

#[derive(Serialize, Deserialize)]
struct SetRateDef {
    per_60tu: f64,
}

#[derive(Serialize, Deserialize)]
struct ScaleRateDef {
    factor: f64,
}

#[derive(Serialize, Deserialize)]
struct DiurnalDef {
    period: f64,
    amplitude: f64,
}

#[derive(Serialize, Deserialize)]
struct BulkTransferDef {
    volume: f64,
    within: f64,
    #[serde(default)]
    resource: Option<String>,
    #[serde(default)]
    min_rate: Option<f64>,
    #[serde(default)]
    max_rate: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct HeavyTailDef {
    alpha: f64,
    #[serde(default)]
    min: Option<f64>,
    #[serde(default)]
    cap: Option<f64>,
}

fn tagged(key: &str, body: Value) -> Value {
    Value::Object(vec![(key.to_owned(), body)])
}

fn untag<'a>(v: &'a Value, what: &str, known: &str) -> Result<(&'a str, &'a Value), DeError> {
    let fields = v
        .as_object()
        .ok_or_else(|| DeError::custom(format!("expected a {what} object, got {}", v.kind())))?;
    if fields.len() != 1 {
        return Err(DeError::custom(format!(
            "a {what} must be a single-key object naming its kind (one of {known}), got {} keys",
            fields.len()
        )));
    }
    let (key, body) = &fields[0];
    Ok((key.as_str(), body))
}

const TRIGGER_KINDS: &str = "at, every, utilization_above, sessions_above";
const EVENT_KINDS: &str = "flash_crowd, crash_host, recover_host, resize_capacity, qos_shift, \
                           set_rate, scale_rate, diurnal, heavy_tail, shift_weights, \
                           bulk_transfer";

impl Serialize for Trigger {
    fn to_value(&self) -> Value {
        match self {
            Trigger::At(t) => tagged("at", t.to_value()),
            Trigger::Every {
                period,
                start,
                until,
            } => tagged(
                "every",
                EveryDef {
                    period: *period,
                    start: *start,
                    until: *until,
                }
                .to_value(),
            ),
            Trigger::UtilizationAbove {
                threshold,
                resource,
                poll,
            } => tagged(
                "utilization_above",
                UtilizationAboveDef {
                    threshold: *threshold,
                    resource: resource.clone(),
                    poll: *poll,
                }
                .to_value(),
            ),
            Trigger::SessionsAbove { count, poll } => tagged(
                "sessions_above",
                SessionsAboveDef {
                    count: *count,
                    poll: *poll,
                }
                .to_value(),
            ),
        }
    }
}

impl Deserialize for Trigger {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (key, body) = untag(v, "trigger", TRIGGER_KINDS)?;
        let in_key = |e: DeError| e.in_field(key);
        match key {
            "at" => Ok(Trigger::At(f64::from_value(body).map_err(in_key)?)),
            "every" => {
                let d = EveryDef::from_value(body).map_err(in_key)?;
                Ok(Trigger::Every {
                    period: d.period,
                    start: d.start,
                    until: d.until,
                })
            }
            "utilization_above" => {
                let d = UtilizationAboveDef::from_value(body).map_err(in_key)?;
                Ok(Trigger::UtilizationAbove {
                    threshold: d.threshold,
                    resource: d.resource,
                    poll: d.poll,
                })
            }
            "sessions_above" => {
                let d = SessionsAboveDef::from_value(body).map_err(in_key)?;
                Ok(Trigger::SessionsAbove {
                    count: d.count,
                    poll: d.poll,
                })
            }
            other => Err(DeError::custom(format!(
                "unknown trigger `{other}` (expected one of {TRIGGER_KINDS})"
            ))),
        }
    }
}

impl Serialize for EventSpec {
    fn to_value(&self) -> Value {
        match self {
            EventSpec::FlashCrowd { sessions, over } => tagged(
                "flash_crowd",
                FlashCrowdDef {
                    sessions: *sessions,
                    over: *over,
                }
                .to_value(),
            ),
            EventSpec::CrashHost { host, down_for } => tagged(
                "crash_host",
                CrashHostDef {
                    host: *host,
                    down_for: *down_for,
                }
                .to_value(),
            ),
            EventSpec::RecoverHost { host } => {
                tagged("recover_host", RecoverHostDef { host: *host }.to_value())
            }
            EventSpec::ResizeCapacity { factor, resource } => tagged(
                "resize_capacity",
                ResizeCapacityDef {
                    factor: *factor,
                    resource: resource.clone(),
                }
                .to_value(),
            ),
            EventSpec::QosShift { demand_scale } => tagged(
                "qos_shift",
                QosShiftDef {
                    demand_scale: *demand_scale,
                }
                .to_value(),
            ),
            EventSpec::SetRate { per_60tu } => tagged(
                "set_rate",
                SetRateDef {
                    per_60tu: *per_60tu,
                }
                .to_value(),
            ),
            EventSpec::ScaleRate { factor } => {
                tagged("scale_rate", ScaleRateDef { factor: *factor }.to_value())
            }
            EventSpec::Diurnal { period, amplitude } => tagged(
                "diurnal",
                DiurnalDef {
                    period: *period,
                    amplitude: *amplitude,
                }
                .to_value(),
            ),
            EventSpec::HeavyTail { alpha, min, cap } => tagged(
                "heavy_tail",
                HeavyTailDef {
                    alpha: *alpha,
                    min: *min,
                    cap: *cap,
                }
                .to_value(),
            ),
            EventSpec::ShiftWeights => Value::Str("shift_weights".to_owned()),
            EventSpec::BulkTransfer {
                volume,
                within,
                resource,
                min_rate,
                max_rate,
            } => tagged(
                "bulk_transfer",
                BulkTransferDef {
                    volume: *volume,
                    within: *within,
                    resource: resource.clone(),
                    min_rate: *min_rate,
                    max_rate: *max_rate,
                }
                .to_value(),
            ),
        }
    }
}

impl Deserialize for EventSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // The payload-free event may be written as a bare string.
        if let Some(s) = v.as_str() {
            return match s {
                "shift_weights" => Ok(EventSpec::ShiftWeights),
                other => Err(DeError::custom(format!(
                    "unknown event `{other}` (expected one of {EVENT_KINDS})"
                ))),
            };
        }
        let (key, body) = untag(v, "event", EVENT_KINDS)?;
        let in_key = |e: DeError| e.in_field(key);
        match key {
            "flash_crowd" => {
                let d = FlashCrowdDef::from_value(body).map_err(in_key)?;
                Ok(EventSpec::FlashCrowd {
                    sessions: d.sessions,
                    over: d.over,
                })
            }
            "crash_host" => {
                let d = CrashHostDef::from_value(body).map_err(in_key)?;
                Ok(EventSpec::CrashHost {
                    host: d.host,
                    down_for: d.down_for,
                })
            }
            "recover_host" => {
                let d = RecoverHostDef::from_value(body).map_err(in_key)?;
                Ok(EventSpec::RecoverHost { host: d.host })
            }
            "resize_capacity" => {
                let d = ResizeCapacityDef::from_value(body).map_err(in_key)?;
                Ok(EventSpec::ResizeCapacity {
                    factor: d.factor,
                    resource: d.resource,
                })
            }
            "qos_shift" => {
                let d = QosShiftDef::from_value(body).map_err(in_key)?;
                Ok(EventSpec::QosShift {
                    demand_scale: d.demand_scale,
                })
            }
            "set_rate" => {
                let d = SetRateDef::from_value(body).map_err(in_key)?;
                Ok(EventSpec::SetRate {
                    per_60tu: d.per_60tu,
                })
            }
            "scale_rate" => {
                let d = ScaleRateDef::from_value(body).map_err(in_key)?;
                Ok(EventSpec::ScaleRate { factor: d.factor })
            }
            "diurnal" => {
                let d = DiurnalDef::from_value(body).map_err(in_key)?;
                Ok(EventSpec::Diurnal {
                    period: d.period,
                    amplitude: d.amplitude,
                })
            }
            "heavy_tail" => {
                let d = HeavyTailDef::from_value(body).map_err(in_key)?;
                Ok(EventSpec::HeavyTail {
                    alpha: d.alpha,
                    min: d.min,
                    cap: d.cap,
                })
            }
            "bulk_transfer" => {
                let d = BulkTransferDef::from_value(body).map_err(in_key)?;
                Ok(EventSpec::BulkTransfer {
                    volume: d.volume,
                    within: d.within,
                    resource: d.resource,
                    min_rate: d.min_rate,
                    max_rate: d.max_rate,
                })
            }
            "shift_weights" => {
                // Tolerate `{"shift_weights": {}}` for symmetry.
                match body.as_object() {
                    Some([]) => Ok(EventSpec::ShiftWeights),
                    _ => Err(DeError::custom(
                        "`shift_weights` takes no payload (write it as a string or `{}`)",
                    )),
                }
            }
            other => Err(DeError::custom(format!(
                "unknown event `{other}` (expected one of {EVENT_KINDS})"
            ))),
        }
    }
}

// ─── The file format ──────────────────────────────────────────────────

/// A partial [`ScenarioConfig`]: only the fields present in the file
/// override the defaults, so a scenario names just what it cares about.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigPatch {
    /// Overrides [`ScenarioConfig::seed`].
    #[serde(default)]
    pub seed: Option<u64>,
    /// Overrides [`ScenarioConfig::rate_per_60tu`].
    #[serde(default)]
    pub rate_per_60tu: Option<f64>,
    /// Overrides [`ScenarioConfig::horizon`].
    #[serde(default)]
    pub horizon: Option<f64>,
    /// Overrides [`ScenarioConfig::planner`].
    #[serde(default)]
    pub planner: Option<PlannerKind>,
    /// Overrides [`ScenarioConfig::staleness`].
    #[serde(default)]
    pub staleness: Option<f64>,
    /// Overrides [`ScenarioConfig::diversity_ratio`].
    #[serde(default)]
    pub diversity_ratio: Option<f64>,
    /// Overrides [`ScenarioConfig::requirement_scale`].
    #[serde(default)]
    pub requirement_scale: Option<f64>,
    /// Overrides [`ScenarioConfig::capacity_range`].
    #[serde(default)]
    pub capacity_range: Option<(f64, f64)>,
    /// Overrides [`ScenarioConfig::prob_shift_period`].
    #[serde(default)]
    pub prob_shift_period: Option<f64>,
    /// Overrides [`ScenarioConfig::alpha_window`].
    #[serde(default)]
    pub alpha_window: Option<f64>,
    /// Overrides [`ScenarioConfig::psi`].
    #[serde(default)]
    pub psi: Option<PsiKind>,
    /// Overrides [`ScenarioConfig::disable_tie_break`].
    #[serde(default)]
    pub disable_tie_break: Option<bool>,
    /// Overrides [`ScenarioConfig::topology`].
    #[serde(default)]
    pub topology: Option<TopologyKind>,
    /// Overrides [`ScenarioConfig::upgrade_period`].
    #[serde(default)]
    pub upgrade_period: Option<f64>,
    /// Overrides [`ScenarioConfig::sample_period`].
    #[serde(default)]
    pub sample_period: Option<f64>,
    /// Patches [`ScenarioConfig::faults`] field by field.
    #[serde(default)]
    pub faults: Option<FaultPatch>,
    /// Overrides [`ScenarioConfig::batch_arrivals`].
    #[serde(default)]
    pub batch_arrivals: Option<BatchArrivals>,
}

impl ConfigPatch {
    /// Applies the patch over `base`, returning the merged config.
    pub fn apply(&self, base: ScenarioConfig) -> ScenarioConfig {
        let mut cfg = base;
        if let Some(v) = self.seed {
            cfg.seed = v;
        }
        if let Some(v) = self.rate_per_60tu {
            cfg.rate_per_60tu = v;
        }
        if let Some(v) = self.horizon {
            cfg.horizon = v;
        }
        if let Some(v) = self.planner {
            cfg.planner = v;
        }
        if let Some(v) = self.staleness {
            cfg.staleness = v;
        }
        if let Some(v) = self.diversity_ratio {
            cfg.diversity_ratio = Some(v);
        }
        if let Some(v) = self.requirement_scale {
            cfg.requirement_scale = v;
        }
        if let Some(v) = self.capacity_range {
            cfg.capacity_range = v;
        }
        if let Some(v) = self.prob_shift_period {
            cfg.prob_shift_period = v;
        }
        if let Some(v) = self.alpha_window {
            cfg.alpha_window = v;
        }
        if let Some(v) = self.psi {
            cfg.psi = v;
        }
        if let Some(v) = self.disable_tie_break {
            cfg.disable_tie_break = v;
        }
        if let Some(v) = self.topology {
            cfg.topology = v;
        }
        if let Some(v) = self.upgrade_period {
            cfg.upgrade_period = Some(v);
        }
        if let Some(v) = self.sample_period {
            cfg.sample_period = Some(v);
        }
        if let Some(f) = &self.faults {
            cfg.faults = f.apply(cfg.faults);
        }
        if let Some(v) = self.batch_arrivals {
            cfg.batch_arrivals = Some(v);
        }
        cfg
    }
}

/// A partial [`FaultPlan`], merged over the defaults like
/// [`ConfigPatch`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPatch {
    /// Overrides [`FaultPlan::seed`].
    #[serde(default)]
    pub seed: Option<u64>,
    /// Overrides [`FaultPlan::crashes`].
    #[serde(default)]
    pub crashes: Option<Vec<HostCrash>>,
    /// Overrides [`FaultPlan::drop_probability`].
    #[serde(default)]
    pub drop_probability: Option<f64>,
    /// Overrides [`FaultPlan::commit_failure_probability`].
    #[serde(default)]
    pub commit_failure_probability: Option<f64>,
    /// Overrides [`FaultPlan::max_retries`].
    #[serde(default)]
    pub max_retries: Option<u32>,
    /// Overrides [`FaultPlan::backoff_base`].
    #[serde(default)]
    pub backoff_base: Option<f64>,
    /// Overrides [`FaultPlan::tradeoff_fallback`].
    #[serde(default)]
    pub tradeoff_fallback: Option<bool>,
}

impl FaultPatch {
    /// Applies the patch over `base`, returning the merged plan.
    pub fn apply(&self, base: FaultPlan) -> FaultPlan {
        let mut plan = base;
        if let Some(v) = self.seed {
            plan.seed = v;
        }
        if let Some(v) = &self.crashes {
            plan.crashes = v.clone();
        }
        if let Some(v) = self.drop_probability {
            plan.drop_probability = v;
        }
        if let Some(v) = self.commit_failure_probability {
            plan.commit_failure_probability = v;
        }
        if let Some(v) = self.max_retries {
            plan.max_retries = v;
        }
        if let Some(v) = self.backoff_base {
            plan.backoff_base = v;
        }
        if let Some(v) = self.tradeoff_fallback {
            plan.tradeoff_fallback = v;
        }
        plan
    }
}

/// One `*.scenario.json` file: a named, documented simulation scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioFile {
    /// Scenario name (shown by `qosr run --list` and in reports).
    pub name: String,
    /// One-line description of what the scenario exercises.
    #[serde(default)]
    pub description: String,
    /// Partial base-config overrides.
    #[serde(default)]
    pub config: ConfigPatch,
    /// The trigger/event rules.
    #[serde(default)]
    pub rules: Vec<Rule>,
}

/// Why a scenario file could not be loaded or is not runnable.
#[derive(Debug)]
pub enum DslError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file is not valid scenario JSON.
    Parse(String),
    /// The scenario parsed but fails validation; one message per
    /// problem.
    Invalid(Vec<String>),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Io(e) => write!(f, "I/O error: {e}"),
            DslError::Parse(msg) => write!(f, "parse error: {msg}"),
            DslError::Invalid(msgs) => write!(f, "invalid scenario: {}", msgs.join("; ")),
        }
    }
}

impl std::error::Error for DslError {}

impl ScenarioFile {
    /// Parses a scenario from its JSON text.
    pub fn from_json(json: &str) -> Result<Self, DslError> {
        serde_json::from_str(json).map_err(|e| DslError::Parse(e.to_string()))
    }

    /// Loads and parses a scenario file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DslError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(DslError::Io)?;
        Self::from_json(&text)
            .map_err(|e| DslError::Parse(format!("{}: {e}", path.as_ref().display())))
    }

    /// Loads every `*.scenario.json` under `dir`, sorted by file name.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Vec<(PathBuf, ScenarioFile)>, DslError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir.as_ref())
            .map_err(DslError::Io)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".scenario.json"))
            })
            .collect();
        paths.sort();
        paths
            .into_iter()
            .map(|p| ScenarioFile::load(&p).map(|f| (p, f)))
            .collect()
    }

    /// Structural validation: every parameter in range, every rule
    /// well-formed. Collects *all* problems rather than stopping at the
    /// first.
    pub fn validate(&self) -> Result<(), DslError> {
        let mut problems = Vec::new();
        if self.name.trim().is_empty() {
            problems.push("scenario name must not be empty".to_owned());
        }
        let c = &self.config;
        let mut check = |ok: bool, msg: String| {
            if !ok {
                problems.push(msg);
            }
        };
        if let Some(v) = c.rate_per_60tu {
            check(
                v > 0.0,
                format!("config.rate_per_60tu must be > 0, got {v}"),
            );
        }
        if let Some(v) = c.horizon {
            check(v > 0.0, format!("config.horizon must be > 0, got {v}"));
        }
        if let Some(v) = c.staleness {
            check(v >= 0.0, format!("config.staleness must be >= 0, got {v}"));
        }
        if let Some(v) = c.requirement_scale {
            check(
                v > 0.0,
                format!("config.requirement_scale must be > 0, got {v}"),
            );
        }
        if let Some((lo, hi)) = c.capacity_range {
            check(
                lo > 0.0 && hi >= lo,
                format!("config.capacity_range must satisfy 0 < lo <= hi, got ({lo}, {hi})"),
            );
        }
        if let Some(v) = c.alpha_window {
            check(v > 0.0, format!("config.alpha_window must be > 0, got {v}"));
        }
        if let Some(v) = c.upgrade_period {
            check(
                v > 0.0,
                format!("config.upgrade_period must be > 0, got {v}"),
            );
        }
        if let Some(v) = c.sample_period {
            check(
                v > 0.0,
                format!("config.sample_period must be > 0, got {v}"),
            );
        }
        problems.extend(validate_rules(&self.rules));
        if problems.is_empty() {
            Ok(())
        } else {
            Err(DslError::Invalid(problems))
        }
    }

    /// The runnable [`ScenarioConfig`]: the patch applied over the
    /// defaults, with the rules attached.
    pub fn to_config(&self) -> ScenarioConfig {
        let mut cfg = self.config.apply(ScenarioConfig::default());
        cfg.rules = self.rules.clone();
        cfg
    }
}

/// Validates a rule list; returns one message per problem. Shared by
/// [`ScenarioFile::validate`] and the simulation loop's own assertions.
pub(crate) fn validate_rules(rules: &[Rule]) -> Vec<String> {
    let mut problems = Vec::new();
    for (i, rule) in rules.iter().enumerate() {
        let label = rule.label(i);
        let mut check = |ok: bool, msg: String| {
            if !ok {
                problems.push(format!("rule `{label}`: {msg}"));
            }
        };
        if rule.events.is_empty() {
            check(false, "must apply at least one event".to_owned());
        }
        match &rule.trigger {
            Trigger::At(t) => check(
                t.is_finite() && *t >= 0.0,
                format!("trigger time must be >= 0, got {t}"),
            ),
            Trigger::Every {
                period,
                start,
                until,
            } => {
                check(*period > 0.0, format!("period must be > 0, got {period}"));
                if let Some(s) = start {
                    check(*s >= 0.0, format!("start must be >= 0, got {s}"));
                }
                if let (Some(s), Some(u)) = (start, until) {
                    check(u > s, format!("until ({u}) must be after start ({s})"));
                }
            }
            Trigger::UtilizationAbove {
                threshold, poll, ..
            } => {
                check(
                    (0.0..=1.0).contains(threshold),
                    format!("threshold must be in [0, 1], got {threshold}"),
                );
                if let Some(p) = poll {
                    check(*p > 0.0, format!("poll must be > 0, got {p}"));
                }
            }
            Trigger::SessionsAbove { poll, .. } => {
                if let Some(p) = poll {
                    check(*p > 0.0, format!("poll must be > 0, got {p}"));
                }
            }
        }
        for event in &rule.events {
            match event {
                EventSpec::FlashCrowd { sessions, over } => {
                    check(*sessions > 0, "flash_crowd needs sessions >= 1".to_owned());
                    check(
                        over.is_finite() && *over >= 0.0,
                        format!("flash_crowd window must be >= 0, got {over}"),
                    );
                }
                EventSpec::CrashHost { host, down_for } => {
                    check(
                        *host < crate::env::N_HOSTS,
                        format!(
                            "host {host} out of range (environment has {} hosts)",
                            crate::env::N_HOSTS
                        ),
                    );
                    if let Some(d) = down_for {
                        check(*d > 0.0, format!("down_for must be > 0, got {d}"));
                    }
                }
                EventSpec::RecoverHost { host } => check(
                    *host < crate::env::N_HOSTS,
                    format!(
                        "host {host} out of range (environment has {} hosts)",
                        crate::env::N_HOSTS
                    ),
                ),
                EventSpec::ResizeCapacity { factor, .. } => check(
                    *factor > 0.0 && *factor <= 1.0,
                    format!("resize factor must be in (0, 1], got {factor}"),
                ),
                EventSpec::QosShift { demand_scale } => check(
                    *demand_scale > 0.0,
                    format!("demand_scale must be > 0, got {demand_scale}"),
                ),
                EventSpec::SetRate { per_60tu } => check(
                    *per_60tu > 0.0,
                    format!("set_rate needs a positive rate, got {per_60tu}"),
                ),
                EventSpec::ScaleRate { factor } => check(
                    *factor > 0.0,
                    format!("scale_rate factor must be > 0, got {factor}"),
                ),
                EventSpec::Diurnal { period, amplitude } => {
                    check(
                        *period > 0.0,
                        format!("diurnal period must be > 0, got {period}"),
                    );
                    check(
                        (0.0..1.0).contains(amplitude),
                        format!("diurnal amplitude must be in [0, 1), got {amplitude}"),
                    );
                }
                EventSpec::HeavyTail { alpha, min, cap } => {
                    check(
                        *alpha > 0.0,
                        format!("heavy_tail alpha must be > 0, got {alpha}"),
                    );
                    let min = min.unwrap_or(crate::workload::MIN_DURATION);
                    let cap = cap.unwrap_or(crate::workload::MAX_DURATION);
                    check(
                        min > 0.0 && cap > min,
                        format!("heavy_tail needs 0 < min < cap, got min {min}, cap {cap}"),
                    );
                }
                EventSpec::ShiftWeights => {}
                EventSpec::BulkTransfer {
                    volume,
                    within,
                    min_rate,
                    max_rate,
                    ..
                } => {
                    check(
                        volume.is_finite() && *volume > 0.0,
                        format!("bulk_transfer volume must be > 0, got {volume}"),
                    );
                    check(
                        within.is_finite() && *within > 0.0,
                        format!("bulk_transfer deadline (within) must be > 0, got {within}"),
                    );
                    if let Some(r) = min_rate {
                        check(
                            r.is_finite() && *r >= 0.0,
                            format!("bulk_transfer min_rate must be >= 0, got {r}"),
                        );
                    }
                    if let Some(r) = max_rate {
                        check(
                            *r > 0.0,
                            format!("bulk_transfer max_rate must be > 0, got {r}"),
                        );
                    }
                    if let (Some(lo), Some(hi)) = (min_rate, max_rate) {
                        check(
                            hi >= lo,
                            format!("bulk_transfer needs min_rate <= max_rate, got {lo} > {hi}"),
                        );
                    }
                }
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(file: &ScenarioFile) -> ScenarioFile {
        let json = serde_json::to_string_pretty(file).unwrap();
        ScenarioFile::from_json(&json).unwrap()
    }

    fn sample_file() -> ScenarioFile {
        ScenarioFile {
            name: "sample".into(),
            description: "exercise every trigger and event kind".into(),
            config: ConfigPatch {
                seed: Some(7),
                rate_per_60tu: Some(120.0),
                horizon: Some(1200.0),
                planner: Some(PlannerKind::Tradeoff),
                faults: Some(FaultPatch {
                    max_retries: Some(2),
                    ..FaultPatch::default()
                }),
                ..ConfigPatch::default()
            },
            rules: vec![
                Rule {
                    name: "burst".into(),
                    trigger: Trigger::At(300.0),
                    events: vec![EventSpec::FlashCrowd {
                        sessions: 50,
                        over: 20.0,
                    }],
                    once: false,
                },
                Rule {
                    name: "wave".into(),
                    trigger: Trigger::Every {
                        period: 400.0,
                        start: Some(200.0),
                        until: Some(1000.0),
                    },
                    events: vec![
                        EventSpec::CrashHost {
                            host: 1,
                            down_for: Some(100.0),
                        },
                        EventSpec::ShiftWeights,
                    ],
                    once: false,
                },
                Rule {
                    name: "storm-guard".into(),
                    trigger: Trigger::UtilizationAbove {
                        threshold: 0.8,
                        resource: Some("H1.cpu".into()),
                        poll: Some(10.0),
                    },
                    events: vec![
                        EventSpec::ResizeCapacity {
                            factor: 0.9,
                            resource: None,
                        },
                        EventSpec::QosShift { demand_scale: 0.8 },
                    ],
                    once: true,
                },
                Rule {
                    name: "surge".into(),
                    trigger: Trigger::SessionsAbove {
                        count: 200,
                        poll: None,
                    },
                    events: vec![
                        EventSpec::SetRate { per_60tu: 60.0 },
                        EventSpec::ScaleRate { factor: 1.5 },
                        EventSpec::Diurnal {
                            period: 600.0,
                            amplitude: 0.5,
                        },
                        EventSpec::HeavyTail {
                            alpha: 1.3,
                            min: None,
                            cap: Some(400.0),
                        },
                        EventSpec::RecoverHost { host: 1 },
                    ],
                    once: false,
                },
                Rule {
                    name: "nightly-sync".into(),
                    trigger: Trigger::At(800.0),
                    events: vec![EventSpec::BulkTransfer {
                        volume: 5000.0,
                        within: 300.0,
                        resource: Some("L1".into()),
                        min_rate: Some(2.0),
                        max_rate: Some(60.0),
                    }],
                    once: false,
                },
            ],
        }
    }

    #[test]
    fn every_trigger_and_event_roundtrips() {
        let file = sample_file();
        file.validate().unwrap();
        assert_eq!(roundtrip(&file), file);
    }

    #[test]
    fn json_shapes_are_the_documented_ones() {
        let json = serde_json::to_string(&sample_file()).unwrap();
        assert!(json.contains(r#""at""#), "{json}");
        assert!(json.contains(r#""every""#));
        assert!(json.contains(r#""utilization_above""#));
        assert!(json.contains(r#""sessions_above""#));
        assert!(json.contains(r#""flash_crowd""#));
        assert!(json.contains(r#""shift_weights""#));
        assert!(json.contains(r#""bulk_transfer""#));
    }

    #[test]
    fn partial_config_patches_over_defaults() {
        let file = ScenarioFile::from_json(
            r#"{"name": "patch", "config": {"rate_per_60tu": 200.0, "upgrade_period": 30.0}}"#,
        )
        .unwrap();
        let cfg = file.to_config();
        assert_eq!(cfg.rate_per_60tu, 200.0);
        assert_eq!(cfg.upgrade_period, Some(30.0));
        // Untouched fields keep their defaults.
        assert_eq!(cfg.seed, ScenarioConfig::default().seed);
        assert_eq!(cfg.horizon, ScenarioConfig::default().horizon);
        assert!(cfg.rules.is_empty());
    }

    #[test]
    fn fault_patch_merges_field_by_field() {
        let file = ScenarioFile::from_json(
            r#"{"name": "f", "config": {"faults": {"drop_probability": 0.05, "max_retries": 3}}}"#,
        )
        .unwrap();
        let cfg = file.to_config();
        assert_eq!(cfg.faults.drop_probability, 0.05);
        assert_eq!(cfg.faults.max_retries, 3);
        // Unpatched fault fields keep the empty-plan defaults.
        assert_eq!(cfg.faults.backoff_base, FaultPlan::default().backoff_base);
        assert!(cfg.faults.crashes.is_empty());
    }

    #[test]
    fn unknown_trigger_and_event_kinds_are_named_in_errors() {
        let err = ScenarioFile::from_json(
            r#"{"name": "x", "rules": [{"trigger": {"sometimes": 1}, "events": []}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("sometimes"), "{err}");
        assert!(err.to_string().contains("utilization_above"), "{err}");

        let err = ScenarioFile::from_json(
            r#"{"name": "x",
                "rules": [{"trigger": {"at": 1.0}, "events": [{"meteor": {}}]}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("meteor"), "{err}");
        assert!(err.to_string().contains("flash_crowd"), "{err}");
    }

    #[test]
    fn validation_collects_every_problem() {
        let file = ScenarioFile {
            name: " ".into(),
            description: String::new(),
            config: ConfigPatch {
                rate_per_60tu: Some(-1.0),
                ..ConfigPatch::default()
            },
            rules: vec![Rule {
                name: String::new(),
                trigger: Trigger::Every {
                    period: 0.0,
                    start: None,
                    until: None,
                },
                events: vec![
                    EventSpec::CrashHost {
                        host: 99,
                        down_for: None,
                    },
                    EventSpec::ResizeCapacity {
                        factor: 1.5,
                        resource: None,
                    },
                ],
                once: false,
            }],
        };
        let DslError::Invalid(problems) = file.validate().unwrap_err() else {
            panic!("expected Invalid");
        };
        assert!(problems.len() >= 5, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("rate_per_60tu")));
        assert!(problems.iter().any(|p| p.contains("period")));
        assert!(problems.iter().any(|p| p.contains("host 99")));
        assert!(problems.iter().any(|p| p.contains("resize factor")));
        // Unnamed rules are labelled by index.
        assert!(problems.iter().any(|p| p.contains("rule0")), "{problems:?}");
    }

    #[test]
    fn load_dir_finds_only_scenario_files() {
        let dir = std::env::temp_dir().join("qosr-dsl-load-dir-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.scenario.json"), r#"{"name": "b"}"#).unwrap();
        std::fs::write(dir.join("a.scenario.json"), r#"{"name": "a"}"#).unwrap();
        std::fs::write(dir.join("notes.txt"), "not a scenario").unwrap();
        let loaded = ScenarioFile::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        // Sorted by file name for stable listings.
        assert_eq!(loaded[0].1.name, "a");
        assert_eq!(loaded[1].1.name, "b");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_files_surface_parse_errors_with_the_path() {
        let dir = std::env::temp_dir().join("qosr-dsl-parse-error-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.scenario.json");
        std::fs::write(&path, "{ not json").unwrap();
        let err = ScenarioFile::load(&path).unwrap_err();
        assert!(matches!(err, DslError::Parse(_)));
        assert!(err.to_string().contains("broken.scenario.json"));
        assert!(matches!(
            ScenarioFile::load(dir.join("missing.scenario.json")).unwrap_err(),
            DslError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
