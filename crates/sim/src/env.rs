//! The deployed environment of figure 9.
//!
//! Four high-performance hosts `H1–H4` in a full mesh (links `L1–L6`),
//! eight client domains `D1–D8` with one access link each (`L7–L14`;
//! domain `D_i` attaches to host `H_⌈i/2⌉`, where its proxy component
//! also runs), four services `S1–S4` with main servers `H1–H4`. The
//! initial amount of every resource is drawn uniformly from the
//! configured capacity range (the paper uses 1000–4000 units).
//!
//! A client from `D_i` never requests `S_⌈i/2⌉` (the paper's exclusion
//! rule), which also guarantees that the server and proxy of every
//! session are distinct hosts.

use crate::services::{build_service, ServiceOptions};
use qosr_broker::{BrokerRegistry, Coordinator, LocalBroker, LocalBrokerConfig, QosProxy, SimTime};
use qosr_model::{
    ComponentBinding, ModelError, ResourceId, ResourceKind, ResourceSpace, ServiceSpec,
    SessionInstance,
};
use qosr_net::{NetNode, NetworkFabric, Topology};
use rand::{Rng, RngExt};
use std::sync::Arc;

/// Number of hosts in the environment.
pub const N_HOSTS: usize = 4;
/// Number of client domains.
pub const N_DOMAINS: usize = 8;
/// Number of services.
pub const N_SERVICES: usize = 4;

/// Inter-host wiring of the environment.
///
/// The paper's figure 9 (an image) shows 14 links but not their exact
/// wiring.
///
/// [`TopologyVariant::FullMesh`] is our default reading (6 mesh + 8
/// access links — see DESIGN.md); [`TopologyVariant::Ring`] is an
/// alternative with 4 inter-host links, making some server→proxy routes
/// span **two links** and thereby exercising the two-level network
/// brokering (min-over-links, all-or-nothing) inside the full
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologyVariant {
    /// Full mesh between the four hosts (L1–L6) + 8 access links.
    #[default]
    FullMesh,
    /// Ring H1–H2–H3–H4–H1 (L1–L4) + 8 access links (12 links total);
    /// opposite-corner routes take two hops.
    Ring,
}

/// The figure-9 environment: topology, brokers, proxies, coordinator,
/// and the four service specifications.
pub struct PaperEnvironment {
    /// All registered resources (host CPUs, links, network paths).
    pub space: ResourceSpace,
    /// The main QoSProxy coordinating all reservations.
    pub coordinator: Coordinator,
    /// `S1..S4`.
    pub services: Vec<Arc<ServiceSpec>>,
    /// The deployed links and cached path brokers.
    pub fabric: NetworkFabric,
    host_cpu: Vec<ResourceId>,
    /// `server_proxy_path[s][p]` — path resource from `H_{s+1}` to
    /// `H_{p+1}` (None on the diagonal).
    server_proxy_path: [[Option<ResourceId>; N_HOSTS]; N_HOSTS],
    /// `proxy_domain_path[d]` — path resource from `D_{d+1}`'s proxy
    /// host to `D_{d+1}`.
    proxy_domain_path: Vec<ResourceId>,
}

impl PaperEnvironment {
    /// Builds the full-mesh (figure-9 replica) environment; see
    /// [`PaperEnvironment::build_with_topology`].
    pub fn build(
        rng: &mut impl Rng,
        service_options: &ServiceOptions,
        capacity_range: (f64, f64),
        broker_config: LocalBrokerConfig,
    ) -> Self {
        Self::build_with_topology(
            rng,
            service_options,
            capacity_range,
            broker_config,
            TopologyVariant::FullMesh,
        )
    }

    /// Builds the environment, drawing resource capacities from
    /// `capacity_range` via `rng` (hosts `H1..H4` first, then links in
    /// id order — deterministic under a fixed seed).
    pub fn build_with_topology(
        rng: &mut impl Rng,
        service_options: &ServiceOptions,
        capacity_range: (f64, f64),
        broker_config: LocalBrokerConfig,
        variant: TopologyVariant,
    ) -> Self {
        Self::build_with_topology_traced(
            rng,
            service_options,
            capacity_range,
            broker_config,
            variant,
            Arc::new(qosr_obs::NullSink),
        )
    }

    /// [`PaperEnvironment::build_with_topology`] with the coordinator
    /// emitting session-lifecycle trace events to `sink` (see the
    /// `qosr-obs` crate). Capacity draws consume `rng` identically to the
    /// untraced build, so a traced run reproduces the same environment.
    pub fn build_with_topology_traced(
        rng: &mut impl Rng,
        service_options: &ServiceOptions,
        capacity_range: (f64, f64),
        broker_config: LocalBrokerConfig,
        variant: TopologyVariant,
        sink: Arc<dyn qosr_obs::TraceSink>,
    ) -> Self {
        assert!(
            capacity_range.0 > 0.0 && capacity_range.1 >= capacity_range.0,
            "bad capacity range {capacity_range:?}"
        );
        let draw = |rng: &mut _| -> f64 { draw_capacity(rng, capacity_range) };

        let mut space = ResourceSpace::new();
        let created = SimTime::ZERO;

        // Host CPUs.
        let mut host_cpu = Vec::with_capacity(N_HOSTS);
        let mut host_brokers = Vec::with_capacity(N_HOSTS);
        for h in 0..N_HOSTS {
            let rid = space.register(format!("H{}.cpu", h + 1), ResourceKind::Compute);
            host_cpu.push(rid);
            host_brokers.push(Arc::new(LocalBroker::new(
                rid,
                draw(rng),
                created,
                broker_config,
            )));
        }

        // Topology: inter-host wiring per variant + one access link per
        // domain.
        let mut topo = Topology::new(N_HOSTS, N_DOMAINS);
        match variant {
            TopologyVariant::FullMesh => {
                for a in 0..N_HOSTS {
                    for b in (a + 1)..N_HOSTS {
                        topo.add_link(NetNode::Host(a), NetNode::Host(b)).unwrap();
                    }
                }
            }
            TopologyVariant::Ring => {
                for a in 0..N_HOSTS {
                    topo.add_link(NetNode::Host(a), NetNode::Host((a + 1) % N_HOSTS))
                        .unwrap();
                }
            }
        }
        for d in 0..N_DOMAINS {
            topo.add_link(NetNode::Domain(d), NetNode::Host(proxy_host_of_domain(d)))
                .unwrap();
        }
        let capacities: Vec<f64> = (0..topo.n_links()).map(|_| draw(rng)).collect();
        let mut fabric = NetworkFabric::new(topo, &capacities, &mut space, created, broker_config);

        // Path brokers: server->proxy for every ordered host pair, and
        // proxy->domain for every domain.
        let mut server_proxy_path = [[None; N_HOSTS]; N_HOSTS];
        let mut path_broker_of = std::collections::HashMap::new();
        for (s, row) in server_proxy_path.iter_mut().enumerate() {
            for (p, cell) in row.iter_mut().enumerate() {
                if s == p {
                    continue;
                }
                let b = fabric
                    .path_broker(NetNode::Host(s), NetNode::Host(p), &mut space)
                    .unwrap();
                let rid = qosr_broker::Broker::resource(b.as_ref());
                *cell = Some(rid);
                // Receiver-initiated (RSVP style): owned by the proxy
                // host p.
                path_broker_of.insert(rid, (p, b));
            }
        }
        let mut proxy_domain_path = Vec::with_capacity(N_DOMAINS);
        for d in 0..N_DOMAINS {
            let p = proxy_host_of_domain(d);
            let b = fabric
                .path_broker(NetNode::Host(p), NetNode::Domain(d), &mut space)
                .unwrap();
            let rid = qosr_broker::Broker::resource(b.as_ref());
            proxy_domain_path.push(rid);
            path_broker_of.insert(rid, (p, b));
        }

        // One QoSProxy per host: its CPU broker plus the path brokers it
        // owns.
        let mut proxies = Vec::with_capacity(N_HOSTS);
        for (h, host_broker) in host_brokers.iter().enumerate() {
            let mut reg = BrokerRegistry::new();
            reg.register(host_broker.clone());
            for (owner, broker) in path_broker_of.values() {
                if *owner == h {
                    reg.register(broker.clone());
                }
            }
            proxies.push(Arc::new(QosProxy::new(format!("H{}", h + 1), reg)));
        }
        let coordinator = Coordinator::with_trace(proxies, sink);

        let services = (0..N_SERVICES)
            .map(|i| Arc::new(build_service(i, service_options).expect("paper tables are valid")))
            .collect();

        PaperEnvironment {
            space,
            coordinator,
            services,
            fabric,
            host_cpu,
            server_proxy_path,
            proxy_domain_path,
        }
    }

    /// The CPU resource of host `h` (0-based).
    pub fn host_cpu(&self, h: usize) -> ResourceId {
        self.host_cpu[h]
    }

    /// The path resource from server host `s` to proxy host `p`.
    pub fn server_proxy_path(&self, s: usize, p: usize) -> Option<ResourceId> {
        self.server_proxy_path[s][p]
    }

    /// The path resource from domain `d`'s proxy host to `d`.
    pub fn proxy_domain_path(&self, d: usize) -> ResourceId {
        self.proxy_domain_path[d]
    }

    /// Instantiates a session of `S{service+1}` requested by a client in
    /// `D{domain+1}` with the given demand scale ("fat" factor).
    ///
    /// Binding per the paper: `c_S` runs on the service's main server
    /// `H{service+1}`; `c_P` on the domain's proxy host, consuming the
    /// server→proxy path; `c_C` consumes the proxy→client path.
    ///
    /// # Panics
    /// Panics when `service` is the domain's excluded service (the
    /// environment never generates such requests).
    pub fn session(
        &self,
        service: usize,
        domain: usize,
        scale: f64,
    ) -> Result<SessionInstance, ModelError> {
        let server = service; // main server of S_{i+1} is H_{i+1}
        let proxy = proxy_host_of_domain(domain);
        assert_ne!(
            server,
            proxy,
            "domain D{} must not request S{}",
            domain + 1,
            service + 1
        );
        let sp = self.server_proxy_path[server][proxy].expect("distinct hosts have a path");
        let pd = self.proxy_domain_path[domain];
        SessionInstance::new(
            self.services[service].clone(),
            vec![
                ComponentBinding::new([self.host_cpu[server]]),
                ComponentBinding::new([self.host_cpu[proxy], sp]),
                ComponentBinding::new([pd]),
            ],
            scale,
        )
    }
}

/// The host (0-based) where domain `d`'s proxy component runs — the
/// host the domain attaches to, `H_⌈(d+1)/2⌉` in the paper's 1-based
/// naming.
pub fn proxy_host_of_domain(d: usize) -> usize {
    d / 2
}

fn draw_capacity<R: Rng + ?Sized>(rng: &mut R, range: (f64, f64)) -> f64 {
    RngExt::random_range(rng, range.0..=range.1)
}

/// The service (0-based) a client from domain `d` never requests:
/// `S_⌈(d+1)/2⌉`, i.e. the service whose main server is the domain's own
/// proxy host.
pub fn excluded_service(d: usize) -> usize {
    d / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosr_broker::Broker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env() -> PaperEnvironment {
        let mut rng = StdRng::seed_from_u64(42);
        PaperEnvironment::build(
            &mut rng,
            &ServiceOptions::default(),
            (1000.0, 4000.0),
            LocalBrokerConfig::default(),
        )
    }

    #[test]
    fn builds_figure_9_inventory() {
        let e = env();
        // 4 CPUs + 14 links + 12 host-pair paths + 8 domain paths.
        assert_eq!(e.space.len(), 4 + 14 + 12 + 8);
        assert_eq!(e.fabric.topology().n_links(), 14);
        assert_eq!(e.coordinator.proxies().len(), 4);
        assert_eq!(e.services.len(), 4);
        // Capacities in range.
        for h in 0..4 {
            let rid = e.host_cpu(h);
            let b = e
                .coordinator
                .owner_of(rid)
                .unwrap()
                .brokers()
                .get(rid)
                .unwrap();
            assert!(b.capacity() >= 1000.0 && b.capacity() <= 4000.0);
        }
        for l in e.fabric.link_brokers() {
            assert!(l.capacity() >= 1000.0 && l.capacity() <= 4000.0);
        }
    }

    #[test]
    fn placement_rules() {
        assert_eq!(proxy_host_of_domain(0), 0);
        assert_eq!(proxy_host_of_domain(1), 0);
        assert_eq!(proxy_host_of_domain(2), 1);
        assert_eq!(proxy_host_of_domain(7), 3);
        for d in 0..N_DOMAINS {
            assert_eq!(excluded_service(d), proxy_host_of_domain(d));
        }
    }

    #[test]
    fn paper_example_session_binding() {
        // "if a client in domain D2 requests service S4, then the service
        // session will involve … c_S^4 on H4, c_P^4 on H1, and c_C^4 on
        // the client itself."
        let e = env();
        let session = e.session(3, 1, 1.0).unwrap(); // S4, D2
        session.validate_kinds(&e.space).unwrap();
        let b = session.bindings();
        assert_eq!(b[0].resources(), &[e.host_cpu(3)]); // server H4
        assert_eq!(b[1].resources()[0], e.host_cpu(0)); // proxy H1
        assert_eq!(b[1].resources()[1], e.server_proxy_path(3, 0).unwrap());
        assert_eq!(b[2].resources(), &[e.proxy_domain_path(1)]);
    }

    #[test]
    #[should_panic(expected = "must not request")]
    fn excluded_service_panics() {
        let e = env();
        let _ = e.session(0, 0, 1.0); // D1 requesting S1
    }

    #[test]
    fn every_valid_pair_has_a_session() {
        let e = env();
        for d in 0..N_DOMAINS {
            for s in 0..N_SERVICES {
                if s == excluded_service(d) {
                    continue;
                }
                let session = e.session(s, d, 2.0).unwrap();
                session.validate_kinds(&e.space).unwrap();
                assert_eq!(session.scale(), 2.0);
            }
        }
    }

    #[test]
    fn determinism_under_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let e1 = PaperEnvironment::build(
            &mut r1,
            &ServiceOptions::default(),
            (1000.0, 4000.0),
            LocalBrokerConfig::default(),
        );
        let e2 = PaperEnvironment::build(
            &mut r2,
            &ServiceOptions::default(),
            (1000.0, 4000.0),
            LocalBrokerConfig::default(),
        );
        for h in 0..4 {
            let (a, b) = (e1.host_cpu(h), e2.host_cpu(h));
            let ba = e1
                .coordinator
                .owner_of(a)
                .unwrap()
                .brokers()
                .get(a)
                .unwrap()
                .capacity();
            let bb = e2
                .coordinator
                .owner_of(b)
                .unwrap()
                .brokers()
                .get(b)
                .unwrap()
                .capacity();
            assert_eq!(ba, bb);
        }
        for (l1, l2) in e1
            .fabric
            .link_brokers()
            .iter()
            .zip(e2.fabric.link_brokers())
        {
            assert_eq!(l1.capacity(), l2.capacity());
        }
    }
}

#[cfg(test)]
mod ring_tests {
    use super::*;
    use crate::services::ServiceOptions;
    use qosr_broker::Broker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_env() -> PaperEnvironment {
        let mut rng = StdRng::seed_from_u64(42);
        PaperEnvironment::build_with_topology(
            &mut rng,
            &ServiceOptions::default(),
            (1000.0, 4000.0),
            LocalBrokerConfig::default(),
            TopologyVariant::Ring,
        )
    }

    #[test]
    fn ring_has_twelve_links_and_two_hop_routes() {
        let e = ring_env();
        assert_eq!(e.fabric.topology().n_links(), 12);
        // Opposite corners (H1 <-> H3) are two hops apart; the
        // server->proxy path broker spans both links.
        let rid = e.server_proxy_path(0, 2).unwrap();
        let owner = e.coordinator.owner_of(rid).unwrap();
        let broker = owner.brokers().get(rid).unwrap();
        // The path capacity equals the min of its two links' capacities
        // and is within the draw range.
        assert!(broker.capacity() >= 1000.0 && broker.capacity() <= 4000.0);
        // Adjacent hosts are one hop.
        let adj = e.server_proxy_path(0, 1).unwrap();
        assert!(e.coordinator.owner_of(adj).is_some());
    }

    #[test]
    fn ring_sessions_establish_and_release() {
        let e = ring_env();
        let mut rng = StdRng::seed_from_u64(7);
        // S1 requested from D5 (proxy H3): server H1 -> proxy H3 is the
        // two-hop route.
        let session = e.session(0, 4, 1.0).unwrap();
        let est = e
            .coordinator
            .establish_request(
                &qosr_broker::SessionRequest::new(session.clone()),
                SimTime::new(1.0),
                &mut rng,
            )
            .into_result()
            .unwrap();
        assert!(est.plan.rank >= 1);
        // Both ring links on the H1->H3 route hold the bandwidth.
        let demand = est.plan.total_demand();
        let sp = e.server_proxy_path(0, 2).unwrap();
        let amount = demand.get(sp);
        assert!(amount > 0.0);
        let route_links = [0usize, 1]; // H1-H2, H2-H3
        for l in route_links {
            let link = &e.fabric.link_brokers()[l];
            assert_eq!(link.capacity() - link.available(), amount);
        }
        e.coordinator.terminate(&est, SimTime::new(2.0));
        for l in e.fabric.link_brokers() {
            assert_eq!(l.available(), l.capacity());
        }
    }
}
