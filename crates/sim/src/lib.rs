//! # qosr-sim — the paper's performance study (§5)
//!
//! A discrete-event simulation of the reservation-enabled distributed
//! environment of figure 9: four high-performance hosts `H1–H4`, eight
//! client domains `D1–D8`, fourteen links `L1–L14`, and four distributed
//! services `S1–S4`, each a chain `c_S → c_P → c_C` (server component,
//! proxy component, client component).
//!
//! Clients generate service sessions in a Poisson process; sessions are
//! heterogeneous in resource demand (*normal* vs *fat* — N× demand with
//! N ∈ {2, 10}) and duration (*short* vs *long*). For every session the
//! main QoSProxy runs one of the planning algorithms (*basic*,
//! *tradeoff*, *random*) and attempts the end-to-end multi-resource
//! reservation; the key metrics are the overall reservation success rate
//! and the average end-to-end QoS level of the successful sessions.
//!
//! Entry points:
//!
//! * [`ScenarioConfig`] — one simulation run's parameters;
//! * [`ScenarioFile`] — the scenario DSL: a `*.scenario.json` file of
//!   declarative triggers and events compiled into the event stream
//!   (see the [`dsl`] module and SCENARIOS.md);
//! * [`FaultPlan`] — the run's deterministic fault schedule (host
//!   crashes, message drops, commit failures) and retry budget;
//! * [`run_scenario`] — execute one run, producing a [`RunResult`];
//! * [`run_many`] — execute a batch of runs across CPU cores;
//! * [`services`] — the figure-10 QoS/resource tables (and the
//!   requirement-diversity transform of §5.2.5);
//! * [`PaperEnvironment`] — the deployed topology, brokers, and proxies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsl;
mod engine;
mod env;
mod fault;
mod metrics;
mod scenario;
pub mod services;
mod sweep;
mod workload;

pub use dsl::{ConfigPatch, DslError, EventSpec, FaultPatch, Rule, ScenarioFile, Trigger};
pub use engine::{Event, EventQueue};
pub use env::{PaperEnvironment, TopologyVariant};
pub use fault::{FaultPlan, HostCrash};
pub use metrics::{ClassStats, PathHistogram, RunMetrics, RunResult, TimeSample};
pub use scenario::{
    run_scenario, run_scenario_instrumented, run_scenario_observed, run_scenario_traced,
    BatchArrivals, PlannerKind, PsiKind, ScenarioConfig, TopologyKind,
};
pub use sweep::run_many;
pub use workload::{DurationModel, SessionClass, SessionRequest, WorkloadGenerator};
