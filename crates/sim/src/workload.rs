//! The session workload model (§5.1).
//!
//! * Sessions arrive in a **Poisson process** at a configurable rate.
//! * Each session is **normal** or **fat** (1:2 ratio); a fat session's
//!   demand is N× the base requirement with N ∈ {2, 10}.
//! * Each session is **short** (duration uniform 20–60 TU) or **long**
//!   (uniform 60–600 TU) with long:short = 1:2. (The paper states both
//!   "durations randomly distributed … between 20 and 600" and the 1:2
//!   class ratio; a plain uniform draw over 20–600 would make ~93% of
//!   sessions long, so the class ratio is taken as authoritative — see
//!   DESIGN.md.)
//! * The client's **domain** is uniform over `D1–D8`; the **service** is
//!   drawn from dynamically shifting per-service weights, excluding
//!   `S_⌈d/2⌉` for a client of domain `D_d`.
//!
//! The generator is mutable mid-run: the scenario DSL (`crate::dsl`) can
//! change the arrival rate ([`WorkloadGenerator::set_rate`]), reshuffle
//! the service popularity ([`WorkloadGenerator::shift_weights`]), or
//! swap the duration law to a heavy-tailed bounded Pareto
//! ([`WorkloadGenerator::set_duration_model`]) while a run is going.

use crate::env::{excluded_service, N_DOMAINS, N_SERVICES};
use rand::{Rng, RngExt};

/// Duration threshold (TU) separating short from long sessions.
pub const LONG_THRESHOLD: f64 = 60.0;
/// Shortest session duration (TU).
pub const MIN_DURATION: f64 = 20.0;
/// Longest session duration (TU).
pub const MAX_DURATION: f64 = 600.0;
/// Probability that a session is fat (normal:fat = 1:2).
pub const FAT_PROBABILITY: f64 = 2.0 / 3.0;
/// Probability that a session is long (long:short = 1:2).
pub const LONG_PROBABILITY: f64 = 1.0 / 3.0;
/// The fat demand multipliers ("N is either 2 or 10").
pub const FAT_FACTORS: [f64; 2] = [2.0, 10.0];

/// The four session classes of §5.2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionClass {
    /// Base demand, duration < 60 TU.
    NormalShort,
    /// Base demand, duration ≥ 60 TU.
    NormalLong,
    /// N× demand, duration < 60 TU.
    FatShort,
    /// N× demand, duration ≥ 60 TU.
    FatLong,
}

impl SessionClass {
    /// All classes, in table order.
    pub const ALL: [SessionClass; 4] = [
        SessionClass::NormalShort,
        SessionClass::NormalLong,
        SessionClass::FatShort,
        SessionClass::FatLong,
    ];

    /// Dense index (0–3) for metric arrays.
    pub fn index(self) -> usize {
        match self {
            SessionClass::NormalShort => 0,
            SessionClass::NormalLong => 1,
            SessionClass::FatShort => 2,
            SessionClass::FatLong => 3,
        }
    }

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            SessionClass::NormalShort => "Norm.-short",
            SessionClass::NormalLong => "Norm.-long",
            SessionClass::FatShort => "Fat-short",
            SessionClass::FatLong => "Fat-long",
        }
    }
}

/// One sampled service request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionRequest {
    /// Requested service (0-based: `S{service+1}`).
    pub service: usize,
    /// Requesting client's domain (0-based: `D{domain+1}`).
    pub domain: usize,
    /// Demand multiplier (1 for normal, 2 or 10 for fat).
    pub scale: f64,
    /// Session duration in TU.
    pub duration: f64,
    /// The session's class.
    pub class: SessionClass,
}

/// How session durations are drawn.
///
/// The paper's model ([`DurationModel::ClassUniform`]) first flips the
/// long/short class coin and then draws uniformly inside the class band.
/// The scenario DSL's `heavy_tail` event switches a live run to
/// [`DurationModel::BoundedPareto`], where the duration itself is drawn
/// from a bounded Pareto tail and the class is whatever side of the
/// long/short threshold (60 TU) the draw lands on — the classic way to
/// model the few marathon sessions that dominate held capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DurationModel {
    /// The paper's two-band model: long with probability 1/3, then
    /// uniform within `[20, 60)` (short) or `[60, 600]` (long).
    ClassUniform,
    /// Bounded Pareto: `d = min · (1 − u)^(−1/α)` capped at `cap`.
    /// Smaller `α` means a heavier tail (α ≤ 1 has an unbounded mean
    /// before capping).
    BoundedPareto {
        /// Tail index α (must be positive; 1.1–1.8 is a realistic band).
        alpha: f64,
        /// Smallest possible duration (TU).
        min: f64,
        /// Durations are clamped to this ceiling (TU).
        cap: f64,
    },
}

/// Samples arrivals and request attributes.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    rate_per_tu: f64,
    weights: [f64; N_SERVICES],
    durations: DurationModel,
}

impl WorkloadGenerator {
    /// Creates a generator producing `rate_per_60tu` sessions per 60 TU
    /// on average, with equal initial service weights.
    pub fn new(rate_per_60tu: f64) -> Self {
        assert!(
            rate_per_60tu.is_finite() && rate_per_60tu > 0.0,
            "rate must be positive, got {rate_per_60tu}"
        );
        WorkloadGenerator {
            rate_per_tu: rate_per_60tu / 60.0,
            weights: [1.0; N_SERVICES],
            durations: DurationModel::ClassUniform,
        }
    }

    /// The current per-service selection weights.
    pub fn weights(&self) -> &[f64; N_SERVICES] {
        &self.weights
    }

    /// The current arrival rate, in sessions per 60 TU.
    pub fn rate_per_60tu(&self) -> f64 {
        self.rate_per_tu * 60.0
    }

    /// Changes the arrival rate mid-run (scenario-DSL `set_rate`,
    /// `scale_rate`, and diurnal curves). Takes effect from the next
    /// inter-arrival draw.
    pub fn set_rate(&mut self, rate_per_60tu: f64) {
        assert!(
            rate_per_60tu.is_finite() && rate_per_60tu > 0.0,
            "rate must be positive, got {rate_per_60tu}"
        );
        self.rate_per_tu = rate_per_60tu / 60.0;
    }

    /// The duration model in force.
    pub fn duration_model(&self) -> DurationModel {
        self.durations
    }

    /// Switches the duration model (scenario-DSL `heavy_tail`). Sessions
    /// sampled after the switch use the new model; live sessions keep
    /// their already-drawn departure times.
    pub fn set_duration_model(&mut self, model: DurationModel) {
        if let DurationModel::BoundedPareto { alpha, min, cap } = model {
            assert!(alpha > 0.0, "Pareto tail index must be positive");
            assert!(min > 0.0 && cap > min, "need 0 < min < cap");
        }
        self.durations = model;
    }

    /// Exponential inter-arrival time (TU) of the Poisson process.
    pub fn next_interarrival(&self, rng: &mut impl Rng) -> f64 {
        // 1 - U in (0, 1]: avoids ln(0).
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln() / self.rate_per_tu
    }

    /// Redraws the per-service weights — the paper "dynamically
    /// change\[s\] the probability that each service is requested". Weights
    /// are uniform in [0.25, 1], keeping every service requested at a
    /// meaningful rate while shifting the per-resource demand mix.
    pub fn shift_weights(&mut self, rng: &mut impl Rng) {
        for w in &mut self.weights {
            *w = rng.random_range(0.25..=1.0);
        }
    }

    /// Samples one service request.
    pub fn sample(&self, rng: &mut impl Rng) -> SessionRequest {
        let domain = rng.random_range(0..N_DOMAINS);
        let excluded = excluded_service(domain);
        // Weighted choice among the other three services.
        let total: f64 = (0..N_SERVICES)
            .filter(|&s| s != excluded)
            .map(|s| self.weights[s])
            .sum();
        let mut x = rng.random_range(0.0..total);
        let mut service = usize::MAX;
        for s in 0..N_SERVICES {
            if s == excluded {
                continue;
            }
            if x < self.weights[s] {
                service = s;
                break;
            }
            x -= self.weights[s];
        }
        if service == usize::MAX {
            // Floating-point edge: fall back to the last eligible.
            service = (0..N_SERVICES).rev().find(|&s| s != excluded).unwrap();
        }

        let fat = rng.random::<f64>() < FAT_PROBABILITY;
        let scale = if fat {
            FAT_FACTORS[rng.random_range(0..FAT_FACTORS.len())]
        } else {
            1.0
        };
        let (long, duration) = match self.durations {
            DurationModel::ClassUniform => {
                let long = rng.random::<f64>() < LONG_PROBABILITY;
                let duration = if long {
                    rng.random_range(LONG_THRESHOLD..=MAX_DURATION)
                } else {
                    rng.random_range(MIN_DURATION..LONG_THRESHOLD)
                };
                (long, duration)
            }
            DurationModel::BoundedPareto { alpha, min, cap } => {
                // Inverse-CDF draw; 1 - U in (0, 1] avoids a zero base.
                let u: f64 = 1.0 - rng.random::<f64>();
                let duration = (min * u.powf(-1.0 / alpha)).min(cap);
                (duration >= LONG_THRESHOLD, duration)
            }
        };
        let class = match (fat, long) {
            (false, false) => SessionClass::NormalShort,
            (false, true) => SessionClass::NormalLong,
            (true, false) => SessionClass::FatShort,
            (true, true) => SessionClass::FatLong,
        };
        SessionRequest {
            service,
            domain,
            scale,
            duration,
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interarrival_mean_matches_rate() {
        let g = WorkloadGenerator::new(120.0); // 2 per TU
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| g.next_interarrival(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean interarrival {mean}");
    }

    #[test]
    fn class_ratios_match_paper() {
        let g = WorkloadGenerator::new(60.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 30_000;
        let mut counts = [0usize; 4];
        let mut fat_n2 = 0usize;
        let mut fat_n10 = 0usize;
        for _ in 0..n {
            let r = g.sample(&mut rng);
            counts[r.class.index()] += 1;
            if r.scale == 2.0 {
                fat_n2 += 1;
            } else if r.scale == 10.0 {
                fat_n10 += 1;
            }
            assert!(r.duration >= MIN_DURATION && r.duration <= MAX_DURATION);
            // Class consistency.
            let long = r.duration >= LONG_THRESHOLD;
            let fat = r.scale > 1.0;
            assert_eq!(r.class.index(), (fat as usize) * 2 + long as usize);
        }
        let fat_fraction = (counts[2] + counts[3]) as f64 / n as f64;
        let long_fraction = (counts[1] + counts[3]) as f64 / n as f64;
        assert!(
            (fat_fraction - 2.0 / 3.0).abs() < 0.02,
            "fat {fat_fraction}"
        );
        assert!(
            (long_fraction - 1.0 / 3.0).abs() < 0.02,
            "long {long_fraction}"
        );
        // N = 2 and N = 10 equally likely among fat sessions.
        let ratio = fat_n2 as f64 / (fat_n2 + fat_n10) as f64;
        assert!((ratio - 0.5).abs() < 0.02, "N split {ratio}");
    }

    #[test]
    fn never_samples_excluded_service() {
        let g = WorkloadGenerator::new(60.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let r = g.sample(&mut rng);
            assert_ne!(r.service, excluded_service(r.domain));
            assert!(r.domain < N_DOMAINS);
            assert!(r.service < N_SERVICES);
        }
    }

    #[test]
    fn weight_shifts_change_the_mix() {
        let mut g = WorkloadGenerator::new(60.0);
        let mut rng = StdRng::seed_from_u64(4);
        let before = *g.weights();
        g.shift_weights(&mut rng);
        let after = *g.weights();
        assert_ne!(before, after);
        for w in after {
            assert!((0.25..=1.0).contains(&w));
        }
    }

    #[test]
    fn class_labels() {
        assert_eq!(SessionClass::FatLong.label(), "Fat-long");
        assert_eq!(SessionClass::ALL.len(), 4);
        for (i, c) in SessionClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn durations_respect_class_boundaries() {
        let g = WorkloadGenerator::new(60.0);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..5000 {
            let r = g.sample(&mut rng);
            match r.class {
                SessionClass::NormalShort | SessionClass::FatShort => {
                    assert!(r.duration >= MIN_DURATION && r.duration < LONG_THRESHOLD);
                }
                SessionClass::NormalLong | SessionClass::FatLong => {
                    assert!(r.duration >= LONG_THRESHOLD && r.duration <= MAX_DURATION);
                }
            }
            match r.class {
                SessionClass::NormalShort | SessionClass::NormalLong => {
                    assert_eq!(r.scale, 1.0)
                }
                _ => assert!(r.scale == 2.0 || r.scale == 10.0),
            }
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        WorkloadGenerator::new(0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate_change() {
        WorkloadGenerator::new(60.0).set_rate(0.0);
    }

    #[test]
    fn set_rate_changes_the_interarrival_mean() {
        let mut g = WorkloadGenerator::new(60.0);
        assert_eq!(g.rate_per_60tu(), 60.0);
        g.set_rate(240.0);
        assert_eq!(g.rate_per_60tu(), 240.0);
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| g.next_interarrival(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean interarrival {mean}");
    }

    #[test]
    fn bounded_pareto_durations_are_heavier_tailed() {
        let uniform = WorkloadGenerator::new(60.0);
        let mut pareto = WorkloadGenerator::new(60.0);
        pareto.set_duration_model(DurationModel::BoundedPareto {
            alpha: 1.2,
            min: MIN_DURATION,
            cap: MAX_DURATION,
        });
        assert_ne!(pareto.duration_model(), uniform.duration_model());
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut short = 0usize;
        let mut capped = 0usize;
        for _ in 0..n {
            let r = pareto.sample(&mut rng);
            assert!((MIN_DURATION..=MAX_DURATION).contains(&r.duration));
            // Class follows the drawn duration under the Pareto model.
            let long = r.duration >= LONG_THRESHOLD;
            assert_eq!(r.class.index() % 2, long as usize);
            if !long {
                short += 1;
            }
            if r.duration == MAX_DURATION {
                capped += 1;
            }
        }
        // Most mass near the minimum, but a real tail pinned at the cap —
        // the signature of a bounded Pareto (a uniform draw would cap
        // with probability 0).
        assert!(short > n / 2, "short {short}/{n}");
        assert!(capped > 0, "no draw reached the cap");
    }

    #[test]
    #[should_panic(expected = "Pareto tail index must be positive")]
    fn rejects_non_positive_pareto_alpha() {
        WorkloadGenerator::new(60.0).set_duration_model(DurationModel::BoundedPareto {
            alpha: 0.0,
            min: 20.0,
            cap: 600.0,
        });
    }

    #[test]
    fn shifted_weights_bias_the_service_mix() {
        let mut g = WorkloadGenerator::new(60.0);
        let mut rng = StdRng::seed_from_u64(1);
        // Force an extreme mix by shifting until S1's weight is minimal
        // relative to the others.
        for _ in 0..50 {
            g.shift_weights(&mut rng);
        }
        let w = *g.weights();
        let mut counts = [0usize; N_SERVICES];
        for _ in 0..30_000 {
            counts[g.sample(&mut rng).service] += 1;
        }
        // The empirical ordering follows the weights (allowing slack for
        // the per-domain exclusions).
        let (argmax_w, argmin_w) = (
            (0..N_SERVICES)
                .max_by(|&a, &b| w[a].total_cmp(&w[b]))
                .unwrap(),
            (0..N_SERVICES)
                .min_by(|&a, &b| w[a].total_cmp(&w[b]))
                .unwrap(),
        );
        if w[argmax_w] > 1.5 * w[argmin_w] {
            assert!(
                counts[argmax_w] > counts[argmin_w],
                "weights {w:?} but counts {counts:?}"
            );
        }
    }
}
