//! The simulated services' QoS-Resource Models (figure 10).
//!
//! The paper's figure 10 tabulates, for each service component, the
//! `Q^in`/`Q^out` levels and the resource demand of every feasible pair.
//! The figure itself is an image whose exact numbers are not recoverable,
//! so this module supplies **surrogate tables with the same structure**
//! (recovered from the path inventories of Tables 1–2) and the same
//! semantics: producing a higher output grade at the server costs more
//! server resource; at the proxy, the incoming-stream bandwidth is set by
//! the input grade while CPU rises when *upscaling* from a lower-grade
//! input (the paper's hypothetical "image intrapolation"); the
//! proxy→client bandwidth falls with the intermediate grade and rises
//! with the end-to-end level. See DESIGN.md for the substitution note.
//!
//! * **Type A** (services S1 and S4, figure 10(a)): `c_S` has 3 output
//!   grades, `c_P` 4, and 3 end-to-end levels — 11 feasible path shapes.
//! * **Type B** (services S2 and S3, figure 10(b)): 2 / 3 / 3 levels —
//!   13 feasible path shapes.
//!
//! Both types expose exactly four resource slots across the chain:
//! `h_S` (server CPU), `h_P` (proxy CPU), `l_P^S` (server→proxy
//! bandwidth), and `l_C^P` (proxy→client bandwidth).
//!
//! [`diversity_compress`] implements the §5.2.5 transform: per resource,
//! requirement values across edges are remapped to an evenly spaced set
//! with the same mean and a max:min ratio capped at `ratio` (the paper
//! uses 3:1).

use qosr_model::{
    ComponentSpec, ModelError, QosSchema, QosVector, ResourceKind, ServiceSpec, SlotSpec,
    TableTranslation,
};
use std::sync::Arc;

/// Which figure-10 table a service uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceType {
    /// Figure 10(a) — services S1 and S4.
    A,
    /// Figure 10(b) — services S2 and S3.
    B,
}

impl ServiceType {
    /// The type of service `S{i+1}` in the paper's environment.
    pub fn of_service(index: usize) -> ServiceType {
        match index {
            0 | 3 => ServiceType::A,
            1 | 2 => ServiceType::B,
            _ => panic!("the environment has services S1..S4, got index {index}"),
        }
    }
}

/// The raw translation tables of one service type, before scaling or
/// diversity transforms. `(qin, qout, [amounts…])` triples per component;
/// `c_s` has one slot (`h_S`), `c_p` two (`h_P`, `l_P^S`), `c_c` one
/// (`l_C^P`).
#[derive(Debug, Clone)]
pub struct ServiceTables {
    /// Number of `c_S` output levels.
    pub s_out: usize,
    /// Number of `c_P` output levels.
    pub p_out: usize,
    /// Number of end-to-end levels.
    pub c_out: usize,
    /// `c_S` entries: `(qin=0, qout, [h_S])`.
    pub c_s: Vec<(usize, usize, [f64; 1])>,
    /// `c_P` entries: (qin, qout, [h_P, l_P^S]).
    pub c_p: Vec<(usize, usize, [f64; 2])>,
    /// `c_C` entries: (qin, qout, [l_C^P]).
    pub c_c: Vec<(usize, usize, [f64; 1])>,
}

/// The surrogate figure-10 tables. Output levels are indexed in
/// ascending quality order (index 0 = lowest grade); end-to-end level
/// ranks are `1, 2, 3` = the paper's *level 1/2/3*.
pub fn tables(service_type: ServiceType) -> ServiceTables {
    match service_type {
        ServiceType::A => ServiceTables {
            s_out: 3,
            p_out: 4,
            c_out: 3,
            c_s: vec![(0, 0, [4.0]), (0, 1, [12.0]), (0, 2, [24.0])],
            c_p: vec![
                // from grade d (lowest input): light stream, upscale costs CPU
                (0, 0, [8.0, 8.0]),
                (0, 1, [14.0, 8.0]),
                // from grade c
                (1, 0, [6.0, 16.0]),
                (1, 1, [8.0, 16.0]),
                (1, 2, [12.0, 16.0]),
                (1, 3, [20.0, 16.0]),
                // from grade b (highest input): heavy stream, cheap CPU
                (2, 2, [8.0, 24.0]),
                (2, 3, [12.0, 24.0]),
            ],
            c_c: vec![
                (0, 0, [10.0]),
                (0, 1, [22.0]),
                (1, 1, [18.0]),
                (1, 2, [32.0]),
                (2, 1, [20.0]),
                (2, 2, [28.0]),
                (3, 2, [24.0]),
            ],
        },
        ServiceType::B => ServiceTables {
            s_out: 2,
            p_out: 3,
            c_out: 3,
            c_s: vec![(0, 0, [6.0]), (0, 1, [18.0])],
            c_p: vec![
                (0, 0, [5.0, 8.0]),
                (0, 1, [9.0, 8.0]),
                (0, 2, [16.0, 8.0]),
                (1, 0, [4.0, 20.0]),
                (1, 1, [6.0, 20.0]),
                (1, 2, [10.0, 20.0]),
            ],
            c_c: vec![
                (0, 0, [8.0]),
                (0, 1, [16.0]),
                (0, 2, [30.0]),
                (1, 1, [14.0]),
                (1, 2, [26.0]),
                (2, 1, [12.0]),
                (2, 2, [22.0]),
            ],
        },
    }
}

/// Options shaping the generated [`ServiceSpec`]s.
#[derive(Debug, Clone, Copy)]
pub struct ServiceOptions {
    /// Global multiplier applied to every requirement value (calibration
    /// knob; the per-session "fat" factor is separate).
    pub requirement_scale: f64,
    /// When set, apply [`diversity_compress`] with this max:min ratio
    /// (the §5.2.5 experiment uses 3.0).
    pub diversity_ratio: Option<f64>,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            requirement_scale: 1.0,
            diversity_ratio: None,
        }
    }
}

/// Builds the [`ServiceSpec`] of service `S{index+1}` under the given
/// options. The spec is placement-free: its four slots are bound per
/// session to the concrete server host, proxy host, and network paths.
pub fn build_service(index: usize, options: &ServiceOptions) -> Result<ServiceSpec, ModelError> {
    let ty = ServiceType::of_service(index);
    let mut t = tables(ty);
    scale_tables(&mut t, options.requirement_scale);
    if let Some(ratio) = options.diversity_ratio {
        compress_tables(&mut t, ratio);
    }

    let src = QosSchema::new(format!("S{}.src", index + 1), ["quality"]);
    let gs = QosSchema::new(format!("S{}.server", index + 1), ["grade"]);
    let gp = QosSchema::new(format!("S{}.proxy", index + 1), ["grade"]);
    let e2e = QosSchema::new(format!("S{}.e2e", index + 1), ["level"]);
    let v = |s: &Arc<QosSchema>, x: u32| QosVector::new(s.clone(), [x]);
    let levels = |s: &Arc<QosSchema>, n: usize| -> Vec<QosVector> {
        (1..=n as u32).map(|x| v(s, x)).collect()
    };

    let mut b = TableTranslation::builder(1, t.s_out, 1);
    for &(i, o, a) in &t.c_s {
        b = b.entry(i, o, a.to_vec());
    }
    let c_s = ComponentSpec::new(
        "c_S",
        vec![v(&src, 1)],
        levels(&gs, t.s_out),
        vec![SlotSpec::new("h_S", ResourceKind::Compute)],
        Arc::new(b.try_build()?),
    );

    let mut b = TableTranslation::builder(t.s_out, t.p_out, 2);
    for &(i, o, a) in &t.c_p {
        b = b.entry(i, o, a.to_vec());
    }
    let c_p = ComponentSpec::new(
        "c_P",
        levels(&gs, t.s_out),
        levels(&gp, t.p_out),
        vec![
            SlotSpec::new("h_P", ResourceKind::Compute),
            SlotSpec::new("l_P_S", ResourceKind::NetworkPath),
        ],
        Arc::new(b.try_build()?),
    );

    let mut b = TableTranslation::builder(t.p_out, t.c_out, 1);
    for &(i, o, a) in &t.c_c {
        b = b.entry(i, o, a.to_vec());
    }
    let c_c = ComponentSpec::new(
        "c_C",
        levels(&gp, t.p_out),
        levels(&e2e, t.c_out),
        vec![SlotSpec::new("l_C_P", ResourceKind::NetworkPath)],
        Arc::new(b.try_build()?),
    );

    // End-to-end levels ranked 1..c_out ascending (level index i has the
    // paper's "level i+1").
    ServiceSpec::chain(
        format!("S{}", index + 1),
        vec![c_s, c_p, c_c],
        (1..=t.c_out as u32).collect(),
    )
}

fn scale_tables(t: &mut ServiceTables, scale: f64) {
    assert!(
        scale.is_finite() && scale > 0.0,
        "bad requirement scale {scale}"
    );
    for (_, _, a) in &mut t.c_s {
        a[0] *= scale;
    }
    for (_, _, a) in &mut t.c_p {
        a[0] *= scale;
        a[1] *= scale;
    }
    for (_, _, a) in &mut t.c_c {
        a[0] *= scale;
    }
}

/// Remaps `values` so they are evenly spaced with the same mean and a
/// max:min ratio of `ratio`, preserving the original order (ranks). The
/// §5.2.5 low-diversity transform.
///
/// ```
/// let mut v = vec![4.0, 12.0, 24.0];           // mean 40/3, spread 6:1
/// qosr_sim::services::diversity_compress(&mut v, 3.0);
/// let mean: f64 = v.iter().sum::<f64>() / 3.0;
/// assert!((mean - 40.0 / 3.0).abs() < 1e-9);   // mean preserved
/// assert!((v[2] / v[0] - 3.0).abs() < 1e-9);   // spread capped at 3:1
/// ```
pub fn diversity_compress(values: &mut [f64], ratio: f64) {
    assert!(ratio >= 1.0, "ratio must be >= 1, got {ratio}");
    let n = values.len();
    if n <= 1 {
        return;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    // Evenly spaced between lo and ratio*lo with the given mean:
    // mean = lo * (1 + ratio) / 2  =>  lo = 2 * mean / (1 + ratio).
    let lo = 2.0 * mean / (1.0 + ratio);
    let hi = ratio * lo;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    for (rank, &idx) in order.iter().enumerate() {
        values[idx] = lo + (hi - lo) * rank as f64 / (n - 1) as f64;
    }
}

fn compress_tables(t: &mut ServiceTables, ratio: f64) {
    // Per resource: h_S across c_S edges; h_P and l_P^S across c_P
    // edges; l_C^P across c_C edges.
    let mut h_s: Vec<f64> = t.c_s.iter().map(|&(_, _, a)| a[0]).collect();
    diversity_compress(&mut h_s, ratio);
    for (e, v) in t.c_s.iter_mut().zip(&h_s) {
        e.2[0] = *v;
    }

    for slot in 0..2 {
        let mut vals: Vec<f64> = t.c_p.iter().map(|&(_, _, a)| a[slot]).collect();
        diversity_compress(&mut vals, ratio);
        for (e, v) in t.c_p.iter_mut().zip(&vals) {
            e.2[slot] = *v;
        }
    }

    let mut l_c: Vec<f64> = t.c_c.iter().map(|&(_, _, a)| a[0]).collect();
    diversity_compress(&mut l_c, ratio);
    for (e, v) in t.c_c.iter_mut().zip(&l_c) {
        e.2[0] = *v;
    }
}

/// Renders a plan signature as the paper's `Qa-Qc-Qf-Qi-Qm-Qp` path
/// label. Letters are assigned in figure-10 order — `a` for the source
/// input, then each component's output letters followed by the next
/// component's input letters — with **higher grades getting earlier
/// letters** (e.g. `Qb` is the best server grade, `Qp` is end-to-end
/// level 3), matching the paper's figures.
pub fn path_label(service_type: ServiceType, signature: &[(usize, usize, usize)]) -> String {
    let t = tables(service_type);
    // Letter offsets of each node group, in figure order.
    let s_out = 1; // after 'a'
    let p_in = s_out + t.s_out;
    let p_out = p_in + t.s_out;
    let c_in = p_out + t.p_out;
    let c_out = c_in + t.p_out;
    let letter = |offset: usize, n_levels: usize, level: usize| -> char {
        // Descending: highest grade gets the first letter of the group.
        (b'a' + (offset + (n_levels - 1 - level)) as u8) as char
    };
    assert_eq!(signature.len(), 3, "figure-10 services have 3 components");
    let (_, _, s_o) = signature[0];
    let (_, p_i, p_o) = signature[1];
    let (_, c_i, c_o) = signature[2];
    format!(
        "Qa-Q{}-Q{}-Q{}-Q{}-Q{}",
        letter(s_out, t.s_out, s_o),
        letter(p_in, t.s_out, p_i),
        letter(p_out, t.p_out, p_o),
        letter(c_in, t.p_out, c_i),
        letter(c_out, t.c_out, c_o),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_types_match_paper() {
        assert_eq!(ServiceType::of_service(0), ServiceType::A);
        assert_eq!(ServiceType::of_service(1), ServiceType::B);
        assert_eq!(ServiceType::of_service(2), ServiceType::B);
        assert_eq!(ServiceType::of_service(3), ServiceType::A);
    }

    #[test]
    #[should_panic(expected = "S1..S4")]
    fn service_index_out_of_range_panics() {
        ServiceType::of_service(4);
    }

    #[test]
    fn all_four_services_build_and_validate() {
        for i in 0..4 {
            let svc = build_service(i, &ServiceOptions::default()).unwrap();
            assert_eq!(svc.components().len(), 3);
            assert_eq!(svc.name(), format!("S{}", i + 1));
            assert!(svc.graph().is_chain());
            // End-to-end ranks are 1..n ascending.
            let order = svc.sink_rank_order();
            assert_eq!(order[0], svc.end_to_end_levels().len() - 1);
        }
    }

    #[test]
    fn path_shape_counts_match_tables_1_and_2() {
        // Count distinct source->sink paths: product over compatible
        // (c_S out = c_P in) and (c_P out = c_C in) pairings.
        let count = |ty: ServiceType| -> usize {
            let t = tables(ty);
            let mut n = 0;
            for &(_, s_o, _) in &t.c_s {
                for &(p_i, p_o, _) in &t.c_p {
                    if p_i != s_o {
                        continue;
                    }
                    for &(c_i, _, _) in &t.c_c {
                        if c_i == p_o {
                            n += 1;
                        }
                    }
                }
            }
            n
        };
        // Table 1 lists 11 paths (to levels 3 and 2); type A also has
        // level-1 paths, so expect at least 11.
        assert!(
            count(ServiceType::A) >= 11,
            "type A has {} paths",
            count(ServiceType::A)
        );
        assert!(
            count(ServiceType::B) >= 13,
            "type B has {} paths",
            count(ServiceType::B)
        );
    }

    #[test]
    fn requirement_scale_multiplies() {
        let base = build_service(0, &ServiceOptions::default()).unwrap();
        let scaled = build_service(
            0,
            &ServiceOptions {
                requirement_scale: 2.0,
                diversity_ratio: None,
            },
        )
        .unwrap();
        let d0 = base.component(0).translate(0, 0).unwrap();
        let d1 = scaled.component(0).translate(0, 0).unwrap();
        assert_eq!(d1.amounts()[0], 2.0 * d0.amounts()[0]);
    }

    #[test]
    fn diversity_compress_preserves_mean_and_caps_ratio() {
        let mut v = vec![4.0, 12.0, 24.0];
        let mean: f64 = v.iter().sum::<f64>() / 3.0;
        diversity_compress(&mut v, 3.0);
        let mean2: f64 = v.iter().sum::<f64>() / 3.0;
        assert!((mean - mean2).abs() < 1e-9);
        let (lo, hi) = (v[0], v[2]);
        assert!((hi / lo - 3.0).abs() < 1e-9);
        // Order preserved.
        assert!(v[0] < v[1] && v[1] < v[2]);
        // Evenly spaced.
        assert!(((v[1] - v[0]) - (v[2] - v[1])).abs() < 1e-9);
    }

    #[test]
    fn diversity_compress_degenerate_cases() {
        let mut one = vec![7.0];
        diversity_compress(&mut one, 3.0);
        assert_eq!(one, vec![7.0]);
        let mut empty: Vec<f64> = vec![];
        diversity_compress(&mut empty, 3.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn compressed_service_validates_and_keeps_structure() {
        let svc = build_service(
            1,
            &ServiceOptions {
                requirement_scale: 1.0,
                diversity_ratio: Some(3.0),
            },
        )
        .unwrap();
        // Same feasible pairs as the uncompressed service.
        let base = build_service(1, &ServiceOptions::default()).unwrap();
        for c in 0..3 {
            let (b, s) = (base.component(c), svc.component(c));
            for i in 0..b.input_levels().len() {
                for o in 0..b.output_levels().len() {
                    assert_eq!(b.translate(i, o).is_some(), s.translate(i, o).is_some());
                }
            }
        }
    }

    #[test]
    fn path_labels_match_paper_format() {
        // Type A: c_S out index 2 (grade b, best) -> letter b; c_P in 2
        // -> e; c_P out 3 (best, h) -> h; c_C in 3 -> l; e2e level 2
        // (level 3, best) -> p.
        let label = path_label(ServiceType::A, &[(0, 0, 2), (1, 2, 3), (2, 3, 2)]);
        assert_eq!(label, "Qa-Qb-Qe-Qh-Ql-Qp");
        // Lowest everything.
        let label = path_label(ServiceType::A, &[(0, 0, 0), (1, 0, 0), (2, 0, 0)]);
        assert_eq!(label, "Qa-Qd-Qg-Qk-Qo-Qr");
        // Type B sample: Qa-Qc-Qe-Qh-Qk-Ql is s_out 0, p_in 0, p_out 0,
        // c_in 0, e2e 2 in our ascending indexing.
        let label = path_label(ServiceType::B, &[(0, 0, 0), (1, 0, 0), (2, 0, 2)]);
        assert_eq!(label, "Qa-Qc-Qe-Qh-Qk-Ql");
    }
}
