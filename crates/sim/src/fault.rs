//! Deterministic, seedable fault schedules for simulation runs.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a run: scheduled
//! host crashes (with optional recovery), a per-protocol-message drop
//! probability, and a commit-phase failure probability — plus the retry
//! budget the coordinator may spend absorbing them. The plan drives its
//! own seeded RNG inside the coordinator's
//! [`FaultInjector`](qosr_broker::FaultInjector), entirely separate from
//! the workload stream: an empty plan leaves a run bit-identical to one
//! that never heard of faults, and the same `(scenario seed, fault
//! plan)` pair replays the same run byte for byte.

use serde::{Deserialize, Serialize};

/// One scheduled host crash (and optional recovery) in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostCrash {
    /// Index of the host to crash (0-based; host `h` is the sim's
    /// `H{h+1}`).
    pub host: usize,
    /// Crash time (TU).
    pub at: f64,
    /// Recovery time (TU), if the host comes back within the run.
    pub recover_at: Option<f64>,
}

/// A deterministic fault schedule for one simulation run. The default
/// plan is empty: no crashes, zero probabilities, no retries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault injector's own RNG stream (never mixed with the
    /// scenario seed).
    pub seed: u64,
    /// Scheduled host crashes/recoveries.
    pub crashes: Vec<HostCrash>,
    /// Probability that any one protocol message (collect report,
    /// reserve request, commit confirmation) is lost.
    pub drop_probability: f64,
    /// Probability that a commit confirmation fails after its reserve
    /// phase succeeded.
    pub commit_failure_probability: f64,
    /// Establishment retry budget (see
    /// [`RetryPolicy`](qosr_broker::RetryPolicy)).
    pub max_retries: u32,
    /// Exponential-backoff base for retries, in TU.
    pub backoff_base: f64,
    /// Fall back to the α-tradeoff planner on retries (graceful QoS
    /// degradation instead of hard failure).
    pub tradeoff_fallback: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            drop_probability: 0.0,
            commit_failure_probability: 0.0,
            max_retries: 0,
            backoff_base: 0.25,
            tradeoff_fallback: true,
        }
    }
}

impl FaultPlan {
    /// Whether the plan injects no faults at all. (A nonzero retry
    /// budget alone does not count as a fault source: retries also
    /// absorb genuine stale-observation dispatch failures.)
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.drop_probability == 0.0
            && self.commit_failure_probability == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.max_retries, 0);
    }

    #[test]
    fn any_fault_source_makes_it_non_empty() {
        let crash = FaultPlan {
            crashes: vec![HostCrash {
                host: 0,
                at: 10.0,
                recover_at: Some(20.0),
            }],
            ..FaultPlan::default()
        };
        assert!(!crash.is_empty());
        let drops = FaultPlan {
            drop_probability: 0.1,
            ..FaultPlan::default()
        };
        assert!(!drops.is_empty());
        let commits = FaultPlan {
            commit_failure_probability: 0.1,
            ..FaultPlan::default()
        };
        assert!(!commits.is_empty());
        let retries_only = FaultPlan {
            max_retries: 2,
            ..FaultPlan::default()
        };
        assert!(retries_only.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let plan = FaultPlan {
            seed: 9,
            crashes: vec![HostCrash {
                host: 2,
                at: 100.0,
                recover_at: None,
            }],
            drop_probability: 0.05,
            commit_failure_probability: 0.02,
            max_retries: 3,
            backoff_base: 0.5,
            tradeoff_fallback: false,
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn missing_field_deserializes_to_default() {
        // Older configs without a `faults` field must keep loading; the
        // plan itself also tolerates partial JSON via ScenarioConfig's
        // `#[serde(default)]`.
        let back: FaultPlan = serde_json::from_str(
            r#"{"seed":0,"crashes":[],"drop_probability":0.0,
                "commit_failure_probability":0.0,"max_retries":0,
                "backoff_base":0.25,"tradeoff_fallback":true}"#,
        )
        .unwrap();
        assert_eq!(back, FaultPlan::default());
    }
}
