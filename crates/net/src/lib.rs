//! # qosr-net — network substrate for end-to-end reservation (§3)
//!
//! The paper manages end-to-end network resources in **two levels**: at
//! the higher level, one Resource Broker treats the whole path between
//! two end hosts as a single resource; at the lower level, RSVP-style
//! bandwidth brokers manage each link. The higher-level availability is
//! *"the minimum of the link bandwidth availabilities reported by the
//! lower-level … brokers"*, and a path reservation succeeds only if every
//! link on the route accepts it.
//!
//! This crate provides:
//!
//! * [`Topology`] — hosts, client domains, undirected links, and
//!   shortest-hop routing;
//! * [`LinkBroker`] — the lower-level per-link bandwidth broker;
//! * [`NetworkBroker`] — the higher-level end-to-end path broker
//!   (min-over-links availability, all-or-nothing reserve with
//!   rollback);
//! * [`NetworkFabric`] — glue that registers link and path resources in a
//!   [`qosr_model::ResourceSpace`] and caches path brokers per
//!   endpoint pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fabric;
mod link;
mod path;
mod topology;

pub use fabric::NetworkFabric;
pub use link::LinkBroker;
pub use path::NetworkBroker;
pub use topology::{LinkId, NetNode, Topology, TopologyError};
