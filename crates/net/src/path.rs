//! The higher-level, end-to-end network path broker.

use crate::LinkBroker;
use parking_lot::Mutex;
use qosr_broker::{AlphaWindow, Broker, BrokerReport, ReserveError, SessionId, SimTime};
use qosr_model::ResourceId;
use std::collections::HashMap;
use std::sync::Arc;

/// End-to-end network Resource Broker over a fixed route of links — the
/// higher level of the paper's two-level network reservation (§3).
///
/// * **Availability** is the *minimum* of the link availabilities
///   reported by the per-link brokers.
/// * **Reservation** is all-or-nothing across the route: each link broker
///   must accept the amount; the first rejection rolls back the links
///   already reserved (using partial release, so other path reservations
///   of the same session on a shared link are untouched).
/// * The **α window** is the path broker's own, fed by the min-values it
///   reports — exactly what a higher-level broker in the paper would
///   observe.
///
/// A zero-link route (both endpoints on the same host) is permitted and
/// behaves as an infinite resource: this mirrors co-located components
/// needing no network reservation.
pub struct NetworkBroker {
    resource: ResourceId,
    route: Vec<Arc<LinkBroker>>,
    state: Mutex<PathState>,
}

struct PathState {
    alpha: AlphaWindow,
    /// Per-session amount this *path* reserved (each link holds the same
    /// amount on behalf of the session).
    ledger: HashMap<SessionId, f64>,
}

impl NetworkBroker {
    /// Creates a path broker over `route` (ordered per-link brokers).
    pub fn new(resource: ResourceId, route: Vec<Arc<LinkBroker>>, alpha_window: f64) -> Self {
        NetworkBroker {
            resource,
            route,
            state: Mutex::new(PathState {
                alpha: AlphaWindow::new(alpha_window),
                ledger: HashMap::new(),
            }),
        }
    }

    /// The route's per-link brokers, in path order.
    pub fn route(&self) -> &[Arc<LinkBroker>] {
        &self.route
    }

    fn min_over_links(&self, f: impl Fn(&LinkBroker) -> f64) -> f64 {
        self.route
            .iter()
            .map(|l| f(l))
            .fold(f64::INFINITY, f64::min)
    }
}

impl Broker for NetworkBroker {
    fn resource(&self) -> ResourceId {
        self.resource
    }

    fn capacity(&self) -> f64 {
        self.min_over_links(|l| l.capacity())
    }

    fn available(&self) -> f64 {
        self.min_over_links(|l| l.available())
    }

    fn available_at(&self, t: SimTime) -> f64 {
        self.min_over_links(|l| l.available_at(t))
    }

    fn report_observed(&self, now: SimTime, observed_at: SimTime) -> BrokerReport {
        let avail = self.available_at(observed_at);
        let alpha = self.state.lock().alpha.observe(now, avail);
        BrokerReport { avail, alpha }
    }

    fn reserve(&self, session: SessionId, amount: f64, now: SimTime) -> Result<(), ReserveError> {
        if !amount.is_finite() || amount <= 0.0 {
            return Err(ReserveError::InvalidAmount {
                resource: self.resource,
                amount,
            });
        }
        let mut done: Vec<&Arc<LinkBroker>> = Vec::with_capacity(self.route.len());
        for link in &self.route {
            match link.reserve(session, amount, now) {
                Ok(()) => done.push(link),
                Err(e) => {
                    for l in done {
                        l.release_amount(session, amount, now);
                    }
                    // Surface the failure as the *path* resource failing,
                    // preserving the requested/available amounts.
                    return Err(match e {
                        ReserveError::Insufficient { available, .. } => {
                            ReserveError::Insufficient {
                                resource: self.resource,
                                requested: amount,
                                available,
                            }
                        }
                        other => other,
                    });
                }
            }
        }
        *self.state.lock().ledger.entry(session).or_insert(0.0) += amount;
        Ok(())
    }

    fn release(&self, session: SessionId, now: SimTime) -> f64 {
        let Some(amount) = self.state.lock().ledger.remove(&session) else {
            return 0.0;
        };
        for link in &self.route {
            link.release_amount(session, amount, now);
        }
        amount
    }

    fn release_amount(&self, session: SessionId, amount: f64, now: SimTime) -> f64 {
        if !amount.is_finite() || amount <= 0.0 {
            return 0.0;
        }
        let mut state = self.state.lock();
        let Some(held) = state.ledger.get_mut(&session) else {
            return 0.0;
        };
        let released = amount.min(*held);
        *held -= released;
        if *held <= 0.0 {
            state.ledger.remove(&session);
        }
        drop(state);
        for link in &self.route {
            link.release_amount(session, released, now);
        }
        released
    }

    fn reserved_for(&self, session: SessionId) -> f64 {
        self.state
            .lock()
            .ledger
            .get(&session)
            .copied()
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkId;
    use qosr_broker::LocalBrokerConfig;

    fn link(i: u32, capacity: f64) -> Arc<LinkBroker> {
        Arc::new(LinkBroker::new(
            LinkId(i as usize),
            ResourceId(i),
            capacity,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        ))
    }

    fn path(links: &[Arc<LinkBroker>]) -> NetworkBroker {
        NetworkBroker::new(ResourceId(100), links.to_vec(), 3.0)
    }

    #[test]
    fn availability_is_min_over_links() {
        let links = [link(0, 100.0), link(1, 60.0), link(2, 80.0)];
        let p = path(&links);
        assert_eq!(p.capacity(), 60.0);
        assert_eq!(p.available(), 60.0);
        links[2]
            .reserve(SessionId(9), 50.0, SimTime::new(1.0))
            .unwrap();
        assert_eq!(p.available(), 30.0); // link 2 now has 30
        assert_eq!(p.available_at(SimTime::new(0.5)), 60.0);
        assert_eq!(p.report(SimTime::new(1.0)).avail, 30.0);
    }

    #[test]
    fn reserve_holds_every_link_and_release_frees_them() {
        let links = [link(0, 100.0), link(1, 60.0)];
        let p = path(&links);
        let s = SessionId(1);
        p.reserve(s, 40.0, SimTime::new(1.0)).unwrap();
        assert_eq!(links[0].available(), 60.0);
        assert_eq!(links[1].available(), 20.0);
        assert_eq!(p.reserved_for(s), 40.0);
        assert_eq!(p.release(s, SimTime::new(2.0)), 40.0);
        assert_eq!(links[0].available(), 100.0);
        assert_eq!(links[1].available(), 60.0);
        assert_eq!(p.release(s, SimTime::new(2.0)), 0.0);
    }

    #[test]
    fn failed_reserve_rolls_back_earlier_links() {
        let links = [link(0, 100.0), link(1, 30.0)];
        let p = path(&links);
        let err = p
            .reserve(SessionId(1), 40.0, SimTime::new(1.0))
            .unwrap_err();
        // Error surfaces as the path resource.
        assert_eq!(err.resource(), ResourceId(100));
        assert!(matches!(err, ReserveError::Insufficient { available, .. } if available == 30.0));
        assert_eq!(links[0].available(), 100.0);
        assert_eq!(links[1].available(), 30.0);
    }

    #[test]
    fn shared_link_between_two_paths_of_one_session() {
        // Paths A (l0, shared) and B (shared, l2) of the same session:
        // releasing A must not disturb B's hold on the shared link.
        let l0 = link(0, 100.0);
        let shared = link(1, 100.0);
        let l2 = link(2, 100.0);
        let a = NetworkBroker::new(ResourceId(100), vec![l0.clone(), shared.clone()], 3.0);
        let b = NetworkBroker::new(ResourceId(101), vec![shared.clone(), l2.clone()], 3.0);
        let s = SessionId(1);
        a.reserve(s, 10.0, SimTime::new(1.0)).unwrap();
        b.reserve(s, 20.0, SimTime::new(1.0)).unwrap();
        assert_eq!(shared.available(), 70.0);
        assert_eq!(a.release(s, SimTime::new(2.0)), 10.0);
        assert_eq!(shared.available(), 80.0); // B's 20 still held
        assert_eq!(shared.reserved_for(s), 20.0);
        assert_eq!(b.release(s, SimTime::new(3.0)), 20.0);
        assert_eq!(shared.available(), 100.0);
    }

    #[test]
    fn partial_release_on_path() {
        let links = [link(0, 100.0)];
        let p = path(&links);
        let s = SessionId(1);
        p.reserve(s, 30.0, SimTime::new(1.0)).unwrap();
        assert_eq!(p.release_amount(s, 10.0, SimTime::new(2.0)), 10.0);
        assert_eq!(p.reserved_for(s), 20.0);
        assert_eq!(links[0].available(), 80.0);
        assert_eq!(p.release_amount(s, 999.0, SimTime::new(3.0)), 20.0);
        assert_eq!(links[0].available(), 100.0);
    }

    #[test]
    fn empty_route_is_unconstrained() {
        let p = path(&[]);
        assert_eq!(p.available(), f64::INFINITY);
        p.reserve(SessionId(1), 1.0e9, SimTime::ZERO).unwrap();
        assert_eq!(p.reserved_for(SessionId(1)), 1.0e9);
        assert_eq!(p.release(SessionId(1), SimTime::ZERO), 1.0e9);
    }

    #[test]
    fn rejects_invalid_amounts() {
        let links = [link(0, 10.0)];
        let p = path(&links);
        for bad in [0.0, -3.0, f64::NAN] {
            assert!(matches!(
                p.reserve(SessionId(1), bad, SimTime::ZERO),
                Err(ReserveError::InvalidAmount { .. })
            ));
        }
    }
}
