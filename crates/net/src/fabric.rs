//! Glue: registering link/path resources and caching path brokers.

use crate::{LinkBroker, LinkId, NetNode, NetworkBroker, Topology, TopologyError};
use qosr_broker::{LocalBrokerConfig, SimTime};
use qosr_model::{ResourceId, ResourceKind, ResourceSpace};
use std::collections::HashMap;
use std::sync::Arc;

/// A deployed network: the topology, one [`LinkBroker`] per link, and a
/// cache of end-to-end [`NetworkBroker`]s per endpoint pair.
///
/// Link resources are registered in the shared [`ResourceSpace`] as
/// `L1, L2, …` ([`ResourceKind::NetworkLink`]); end-to-end paths as
/// `path:A->B` ([`ResourceKind::NetworkPath`]). Paths are *directed* at
/// the reservation level (the pair `(from, to)` keys the cache) but ride
/// on undirected links, matching the paper's receiver-initiated
/// reservations over shared-capacity links.
pub struct NetworkFabric {
    topology: Topology,
    links: Vec<Arc<LinkBroker>>,
    paths: HashMap<(NetNode, NetNode), Arc<NetworkBroker>>,
    alpha_window: f64,
}

impl NetworkFabric {
    /// Deploys link brokers over `topology`. `capacities[i]` is the
    /// bandwidth of link `i`; link resources are registered in `space`.
    ///
    /// # Panics
    /// Panics if `capacities.len() != topology.n_links()`.
    pub fn new(
        topology: Topology,
        capacities: &[f64],
        space: &mut ResourceSpace,
        created: SimTime,
        config: LocalBrokerConfig,
    ) -> Self {
        assert_eq!(
            capacities.len(),
            topology.n_links(),
            "one capacity per link required"
        );
        let links: Vec<Arc<LinkBroker>> = capacities
            .iter()
            .enumerate()
            .map(|(i, &cap)| {
                let id = LinkId(i);
                let rid = space.register(id.to_string(), ResourceKind::NetworkLink);
                Arc::new(LinkBroker::new(id, rid, cap, created, config))
            })
            .collect();
        NetworkFabric {
            topology,
            links,
            paths: HashMap::new(),
            alpha_window: config.alpha_window,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The per-link broker of `link`.
    pub fn link_broker(&self, link: LinkId) -> &Arc<LinkBroker> {
        &self.links[link.0]
    }

    /// All link brokers, in link order.
    pub fn link_brokers(&self) -> &[Arc<LinkBroker>] {
        &self.links
    }

    /// Returns (creating and caching on first use) the end-to-end path
    /// broker from `from` to `to`, registering its resource in `space`.
    pub fn path_broker(
        &mut self,
        from: NetNode,
        to: NetNode,
        space: &mut ResourceSpace,
    ) -> Result<Arc<NetworkBroker>, TopologyError> {
        if let Some(b) = self.paths.get(&(from, to)) {
            return Ok(b.clone());
        }
        let route = self.topology.route(from, to)?;
        let rid = space.register(format!("path:{from}->{to}"), ResourceKind::NetworkPath);
        let brokers = route.iter().map(|&l| self.links[l.0].clone()).collect();
        let broker = Arc::new(NetworkBroker::new(rid, brokers, self.alpha_window));
        self.paths.insert((from, to), broker.clone());
        Ok(broker)
    }

    /// All path brokers created so far, in unspecified order.
    pub fn path_brokers(&self) -> impl Iterator<Item = &Arc<NetworkBroker>> {
        self.paths.values()
    }

    /// The resource id of the cached path `(from, to)`, if created.
    pub fn path_resource(&self, from: NetNode, to: NetNode) -> Option<ResourceId> {
        self.paths
            .get(&(from, to))
            .map(|b| qosr_broker::Broker::resource(b.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosr_broker::{Broker, SessionId};

    fn ring_fabric() -> (NetworkFabric, ResourceSpace) {
        let mut t = Topology::new(4, 1);
        for i in 0..4 {
            t.add_link(NetNode::Host(i), NetNode::Host((i + 1) % 4))
                .unwrap();
        }
        t.add_link(NetNode::Domain(0), NetNode::Host(0)).unwrap();
        let mut space = ResourceSpace::new();
        let fabric = NetworkFabric::new(
            t,
            &[100.0, 90.0, 80.0, 70.0, 60.0],
            &mut space,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        );
        (fabric, space)
    }

    #[test]
    fn registers_link_resources() {
        let (fabric, space) = ring_fabric();
        assert_eq!(space.len(), 5);
        assert_eq!(space.name(fabric.link_broker(LinkId(0)).resource()), "L1");
        assert_eq!(
            space.info(space.id("L3").unwrap()).kind,
            ResourceKind::NetworkLink
        );
        assert_eq!(fabric.link_brokers().len(), 5);
    }

    #[test]
    fn path_broker_spans_route_and_is_cached() {
        let (mut fabric, mut space) = ring_fabric();
        let p = fabric
            .path_broker(NetNode::Domain(0), NetNode::Host(2), &mut space)
            .unwrap();
        // D1 -> H1 -> H2 -> H3: links L5, L1, L2; min capacity = 60.
        assert_eq!(p.route().len(), 3);
        assert_eq!(p.capacity(), 60.0);
        assert_eq!(space.info(p.resource()).kind, ResourceKind::NetworkPath);
        // Cached: same Arc next time.
        let p2 = fabric
            .path_broker(NetNode::Domain(0), NetNode::Host(2), &mut space)
            .unwrap();
        assert!(Arc::ptr_eq(&p, &p2));
        assert_eq!(
            fabric.path_resource(NetNode::Domain(0), NetNode::Host(2)),
            Some(p.resource())
        );
        assert_eq!(fabric.path_brokers().count(), 1);
    }

    #[test]
    fn reservations_interact_through_shared_links() {
        let (mut fabric, mut space) = ring_fabric();
        let p_a = fabric
            .path_broker(NetNode::Host(0), NetNode::Host(1), &mut space)
            .unwrap();
        let p_b = fabric
            .path_broker(NetNode::Host(0), NetNode::Host(2), &mut space)
            .unwrap();
        // Both use L1.
        p_a.reserve(SessionId(1), 80.0, SimTime::new(1.0)).unwrap();
        assert_eq!(p_b.available(), 20.0);
        let err = p_b
            .reserve(SessionId(2), 30.0, SimTime::new(2.0))
            .unwrap_err();
        assert_eq!(err.resource(), p_b.resource());
        p_a.release(SessionId(1), SimTime::new(3.0));
        assert_eq!(p_b.available(), 90.0); // constrained by L2 (90)
    }
}

#[cfg(test)]
mod direction_tests {
    use super::*;
    use qosr_broker::{Broker, LocalBrokerConfig, SessionId, SimTime};

    #[test]
    fn opposite_directions_are_distinct_resources_sharing_links() {
        let mut t = Topology::new(2, 0);
        t.add_link(NetNode::Host(0), NetNode::Host(1)).unwrap();
        let mut space = ResourceSpace::new();
        let mut fabric = NetworkFabric::new(
            t,
            &[100.0],
            &mut space,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        );
        let ab = fabric
            .path_broker(NetNode::Host(0), NetNode::Host(1), &mut space)
            .unwrap();
        let ba = fabric
            .path_broker(NetNode::Host(1), NetNode::Host(0), &mut space)
            .unwrap();
        assert_ne!(ab.resource(), ba.resource());
        assert!(!Arc::ptr_eq(&ab, &ba));
        // Both ride the same link: reservations in one direction shrink
        // the other's availability (shared-capacity links, as in the
        // paper's simulation).
        ab.reserve(SessionId(1), 70.0, SimTime::new(1.0)).unwrap();
        assert_eq!(ba.available(), 30.0);
        assert!(ba.reserve(SessionId(2), 40.0, SimTime::new(2.0)).is_err());
        ab.release(SessionId(1), SimTime::new(3.0));
        assert_eq!(ba.available(), 100.0);
    }
}
