//! Network topologies: hosts, client domains, links, and routing.

use std::collections::VecDeque;
use std::fmt;

/// An endpoint in the network: a (server/proxy) host or a client domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetNode {
    /// High-performance host `H_{i+1}` (0-based index).
    Host(usize),
    /// Client domain `D_{i+1}` (0-based index).
    Domain(usize),
}

impl fmt::Display for NetNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetNode::Host(i) => write!(f, "H{}", i + 1),
            NetNode::Domain(i) => write!(f, "D{}", i + 1),
        }
    }
}

/// Index of a link within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0 + 1)
    }
}

/// Topology construction / routing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link endpoint references a host/domain outside the topology.
    NodeOutOfRange {
        /// The offending node.
        node: NetNode,
    },
    /// No route exists between the requested endpoints.
    NoRoute {
        /// Route origin.
        from: NetNode,
        /// Route destination.
        to: NetNode,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node } => {
                write!(f, "node {node} out of range for this topology")
            }
            TopologyError::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected network of hosts, client domains, and links.
///
/// Links are undirected (bandwidth is shared by both directions, as in
/// the paper's simulation where each link is one reservable resource).
/// Routing is shortest-hop breadth-first search with deterministic
/// tie-breaking (lowest link id explored first).
///
/// ```
/// use qosr_net::{NetNode, Topology};
/// let mut t = Topology::new(3, 0);
/// let l0 = t.add_link(NetNode::Host(0), NetNode::Host(1)).unwrap();
/// let l1 = t.add_link(NetNode::Host(1), NetNode::Host(2)).unwrap();
/// assert_eq!(t.route(NetNode::Host(0), NetNode::Host(2)).unwrap(), vec![l0, l1]);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    n_hosts: usize,
    n_domains: usize,
    links: Vec<(NetNode, NetNode)>,
    /// Adjacency: for each node, `(neighbor, link)` pairs in link order.
    adjacency: Vec<Vec<(NetNode, LinkId)>>,
}

impl Topology {
    /// Creates a topology with the given numbers of hosts and domains and
    /// no links.
    pub fn new(n_hosts: usize, n_domains: usize) -> Self {
        Topology {
            n_hosts,
            n_domains,
            links: Vec::new(),
            adjacency: vec![Vec::new(); n_hosts + n_domains],
        }
    }

    fn node_index(&self, node: NetNode) -> Result<usize, TopologyError> {
        match node {
            NetNode::Host(i) if i < self.n_hosts => Ok(i),
            NetNode::Domain(i) if i < self.n_domains => Ok(self.n_hosts + i),
            _ => Err(TopologyError::NodeOutOfRange { node }),
        }
    }

    /// Adds an undirected link between `a` and `b`, returning its id.
    pub fn add_link(&mut self, a: NetNode, b: NetNode) -> Result<LinkId, TopologyError> {
        let ia = self.node_index(a)?;
        let ib = self.node_index(b)?;
        let id = LinkId(self.links.len());
        self.links.push((a, b));
        self.adjacency[ia].push((b, id));
        self.adjacency[ib].push((a, id));
        Ok(id)
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of client domains.
    pub fn n_domains(&self) -> usize {
        self.n_domains
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// The endpoints of a link.
    pub fn link_endpoints(&self, id: LinkId) -> (NetNode, NetNode) {
        self.links[id.0]
    }

    /// All links, in id order.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, NetNode, NetNode)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (LinkId(i), a, b))
    }

    /// `(neighbor, link)` pairs of `node`.
    pub fn neighbors(&self, node: NetNode) -> Result<&[(NetNode, LinkId)], TopologyError> {
        Ok(&self.adjacency[self.node_index(node)?])
    }

    /// The links of a shortest-hop route from `from` to `to`, in path
    /// order. An empty route is returned when `from == to`.
    pub fn route(&self, from: NetNode, to: NetNode) -> Result<Vec<LinkId>, TopologyError> {
        let start = self.node_index(from)?;
        let goal = self.node_index(to)?;
        if start == goal {
            return Ok(Vec::new());
        }
        let mut prev: Vec<Option<(usize, LinkId)>> = vec![None; self.adjacency.len()];
        let mut visited = vec![false; self.adjacency.len()];
        visited[start] = true;
        let mut queue = VecDeque::from([start]);
        'bfs: while let Some(u) = queue.pop_front() {
            let u_node = self.index_node(u);
            for &(v_node, link) in &self.adjacency[self.node_index(u_node).unwrap()] {
                let v = self.node_index(v_node).unwrap();
                if visited[v] {
                    continue;
                }
                visited[v] = true;
                prev[v] = Some((u, link));
                if v == goal {
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
        if !visited[goal] {
            return Err(TopologyError::NoRoute { from, to });
        }
        let mut route = Vec::new();
        let mut v = goal;
        while let Some((u, link)) = prev[v] {
            route.push(link);
            v = u;
        }
        route.reverse();
        Ok(route)
    }

    fn index_node(&self, i: usize) -> NetNode {
        if i < self.n_hosts {
            NetNode::Host(i)
        } else {
            NetNode::Domain(i - self.n_hosts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring of 4 hosts plus one domain attached to H1.
    fn ring() -> Topology {
        let mut t = Topology::new(4, 1);
        for i in 0..4 {
            t.add_link(NetNode::Host(i), NetNode::Host((i + 1) % 4))
                .unwrap();
        }
        t.add_link(NetNode::Domain(0), NetNode::Host(0)).unwrap();
        t
    }

    #[test]
    fn construction() {
        let t = ring();
        assert_eq!(t.n_hosts(), 4);
        assert_eq!(t.n_domains(), 1);
        assert_eq!(t.n_links(), 5);
        assert_eq!(
            t.link_endpoints(LinkId(4)),
            (NetNode::Domain(0), NetNode::Host(0))
        );
        assert_eq!(t.neighbors(NetNode::Host(0)).unwrap().len(), 3);
        assert_eq!(t.links().count(), 5);
    }

    #[test]
    fn shortest_route_on_ring() {
        let t = ring();
        // H1 -> H2: one hop.
        assert_eq!(
            t.route(NetNode::Host(0), NetNode::Host(1)).unwrap(),
            vec![LinkId(0)]
        );
        // H1 -> H3: two hops; BFS tie-break takes the lowest-id first
        // neighbor expansion (via H2).
        let r = t.route(NetNode::Host(0), NetNode::Host(2)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r, vec![LinkId(0), LinkId(1)]);
        // Domain -> opposite host: three hops.
        assert_eq!(
            t.route(NetNode::Domain(0), NetNode::Host(2)).unwrap().len(),
            3
        );
        // Self route is empty.
        assert!(t
            .route(NetNode::Host(3), NetNode::Host(3))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn no_route_and_bad_nodes() {
        let mut t = Topology::new(2, 0);
        assert!(matches!(
            t.route(NetNode::Host(0), NetNode::Host(1)),
            Err(TopologyError::NoRoute { .. })
        ));
        assert!(matches!(
            t.add_link(NetNode::Host(0), NetNode::Host(7)),
            Err(TopologyError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            t.route(NetNode::Domain(0), NetNode::Host(0)),
            Err(TopologyError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn display_names_are_one_based() {
        assert_eq!(NetNode::Host(0).to_string(), "H1");
        assert_eq!(NetNode::Domain(7).to_string(), "D8");
        assert_eq!(LinkId(13).to_string(), "L14");
    }
}
