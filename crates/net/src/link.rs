//! The lower-level, per-link bandwidth broker (RSVP-style).

use crate::LinkId;
use qosr_broker::{
    Broker, BrokerReport, LocalBroker, LocalBrokerConfig, ReserveError, SessionId, SimTime,
};
use qosr_model::ResourceId;

/// Bandwidth broker for a single network link — the paper's lower level
/// of network resource management ("the RSVP-enabled bandwidth broker on
/// each router treats each network link as a separate resource").
///
/// Semantically a [`LocalBroker`] over the link's bandwidth, tagged with
/// the link it manages.
#[derive(Debug)]
pub struct LinkBroker {
    link: LinkId,
    inner: LocalBroker,
}

impl LinkBroker {
    /// Creates a bandwidth broker for `link` with the given capacity.
    pub fn new(
        link: LinkId,
        resource: ResourceId,
        capacity: f64,
        created: SimTime,
        config: LocalBrokerConfig,
    ) -> Self {
        LinkBroker {
            link,
            inner: LocalBroker::new(resource, capacity, created, config),
        }
    }

    /// The link this broker manages.
    pub fn link(&self) -> LinkId {
        self.link
    }
}

impl Broker for LinkBroker {
    fn resource(&self) -> ResourceId {
        self.inner.resource()
    }
    fn capacity(&self) -> f64 {
        self.inner.capacity()
    }
    fn available(&self) -> f64 {
        self.inner.available()
    }
    fn available_at(&self, t: SimTime) -> f64 {
        self.inner.available_at(t)
    }
    fn report_observed(&self, now: SimTime, observed_at: SimTime) -> BrokerReport {
        self.inner.report_observed(now, observed_at)
    }
    fn reserve(&self, session: SessionId, amount: f64, now: SimTime) -> Result<(), ReserveError> {
        self.inner.reserve(session, amount, now)
    }
    fn release(&self, session: SessionId, now: SimTime) -> f64 {
        self.inner.release(session, now)
    }
    fn release_amount(&self, session: SessionId, amount: f64, now: SimTime) -> f64 {
        self.inner.release_amount(session, amount, now)
    }
    fn reserved_for(&self, session: SessionId) -> f64 {
        self.inner.reserved_for(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegates_to_local_broker() {
        let b = LinkBroker::new(
            LinkId(3),
            ResourceId(9),
            100.0,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        );
        assert_eq!(b.link(), LinkId(3));
        assert_eq!(b.resource(), ResourceId(9));
        assert_eq!(b.capacity(), 100.0);
        b.reserve(SessionId(1), 25.0, SimTime::new(1.0)).unwrap();
        assert_eq!(b.available(), 75.0);
        assert_eq!(b.available_at(SimTime::new(0.5)), 100.0);
        assert_eq!(b.report(SimTime::new(1.0)).avail, 75.0);
        assert_eq!(b.release_amount(SessionId(1), 5.0, SimTime::new(2.0)), 5.0);
        assert_eq!(b.reserved_for(SessionId(1)), 20.0);
        assert_eq!(b.release(SessionId(1), SimTime::new(3.0)), 20.0);
    }
}
