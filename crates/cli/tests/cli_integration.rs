//! End-to-end tests of the CLI commands over the checked-in scenario
//! files.

use qosr_cli::commands::{dot, plan, validate, PlannerChoice};
use std::path::PathBuf;

fn data(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(file)
}

#[test]
fn video_tracking_scenario_plans_around_the_bottleneck() {
    let path = data("video_tracking.json");
    let summary = validate(&path).unwrap();
    assert!(summary.contains("3 components"));
    assert!(summary.contains("chain"));

    // The server->proxy path has only 26 units: the native high-quality
    // feed (24 in + intrapolation unavailable at that grade) forces the
    // planner to weigh intrapolation at the tracker (26 CPU, 12 bw)
    // against the heavy stream (16 CPU, 24 bw). Both reach the top
    // end-to-end level; the minimax plan picks the lower-psi one.
    let out = plan(&path, PlannerChoice::Basic, 0).unwrap();
    assert!(out.contains("rank 3 of 3"), "{out}");
    // Bottleneck must be reported with its resource name.
    assert!(out.contains("bottleneck"));

    let dot_out = dot(&path).unwrap();
    assert!(dot_out.contains("VideoSender"));
    assert!(dot_out.contains("digraph"));
}

#[test]
fn all_planners_run_on_the_simple_scenario() {
    let path = data("clip.json");
    for p in [
        PlannerChoice::Basic,
        PlannerChoice::Tradeoff,
        PlannerChoice::Random,
        PlannerChoice::Dag,
    ] {
        let out = plan(&path, p, 7).unwrap();
        assert!(out.contains("end-to-end QoS"), "{p:?}: {out}");
    }
}

#[test]
fn missing_file_is_an_io_error() {
    let err = validate(&data("nope.json")).unwrap_err();
    assert!(err.to_string().contains("I/O error"));
}

#[test]
fn explain_and_overrides() {
    use qosr_cli::commands::{explain, plan_with_overrides};
    let path = data("video_tracking.json");
    // Baseline: top level reachable.
    let out = explain(&path, &[]).unwrap();
    assert!(out.contains("reachable"));
    assert!(out.contains("committed plan"));

    // Starve the proxy CPU: the top levels become unreachable.
    let overrides = vec![("proxy.cpu".to_owned(), 6.0)];
    let out = explain(&path, &overrides).unwrap();
    assert!(out.contains("UNREACHABLE"), "{out}");

    // plan honours the same override.
    let out = plan_with_overrides(&path, PlannerChoice::Basic, 0, &overrides).unwrap();
    assert!(out.contains("frame_rate=15"), "{out}");

    // Unknown override name is a clear error.
    let err = explain(&path, &[("nope".to_owned(), 1.0)]).unwrap_err();
    assert!(err.to_string().contains("nope"));
}
