//! The JSON scenario format and its conversion into model objects.
//!
//! A *scenario* bundles everything one planning run needs: the service
//! definition (components, levels, translation tables, dependency
//! edges, end-to-end ranking), the environment's resources with their
//! current availability, the slot→resource bindings, and the session's
//! demand scale. Minimal example:
//!
//! ```json
//! {
//!   "name": "clip",
//!   "source_quality": [30],
//!   "resources": [
//!     { "name": "server.cpu", "kind": "compute", "available": 100.0 }
//!   ],
//!   "components": [
//!     {
//!       "name": "encoder",
//!       "output_params": ["frame_rate"],
//!       "outputs": [[15], [30]],
//!       "slots": [ { "name": "cpu", "kind": "compute", "resource": "server.cpu" } ],
//!       "table": [
//!         { "qin": 0, "qout": 0, "demand": [12.0] },
//!         { "qin": 0, "qout": 1, "demand": [25.0] }
//!       ]
//!     }
//!   ],
//!   "ranking": [1, 2]
//! }
//! ```
//!
//! Defaults: `edges` defaults to a chain in component order; a
//! component's `inputs` default to the source quality (source
//! component), the predecessor's outputs (single predecessor), or the
//! full cartesian product of the predecessors' outputs (fan-in);
//! `scale` defaults to 1; `alpha` defaults to 1.

use qosr_core::AvailabilityView;
use qosr_model::{
    ComponentBinding, ComponentSpec, DependencyGraph, ModelError, QosSchema, QosVector,
    ResourceKind, ResourceSpace, ServiceSpec, SessionInstance, SlotSpec, TableTranslation,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One reservable resource and its current state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceDto {
    /// Unique resource name.
    pub name: String,
    /// Resource kind: `compute`, `memory`, `disk-io`, `link`, `path`,
    /// or `other`.
    pub kind: String,
    /// Currently available amount.
    pub available: f64,
    /// Availability-change index α (default 1.0 = no trend).
    #[serde(default = "default_alpha")]
    pub alpha: f64,
}

fn default_alpha() -> f64 {
    1.0
}

/// One resource slot of a component, bound to a resource by name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotDto {
    /// Slot name (unique within the component).
    pub name: String,
    /// Expected resource kind (same strings as [`ResourceDto::kind`]).
    pub kind: String,
    /// Name of the resource this slot reserves from.
    pub resource: String,
}

/// One feasible `(input level, output level)` pair and its demand.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableEntryDto {
    /// Input level index.
    pub qin: usize,
    /// Output level index.
    pub qout: usize,
    /// Demand per slot, in slot order.
    pub demand: Vec<f64>,
}

/// One service component.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentDto {
    /// Component name.
    pub name: String,
    /// Names of the output QoS parameters.
    pub output_params: Vec<String>,
    /// Output QoS levels (each a value per output parameter).
    pub outputs: Vec<Vec<u32>>,
    /// Input QoS levels; see the module docs for the defaults.
    #[serde(default)]
    pub inputs: Option<Vec<Vec<u32>>>,
    /// Resource slots with inline bindings.
    pub slots: Vec<SlotDto>,
    /// The translation table (absent pairs are infeasible).
    pub table: Vec<TableEntryDto>,
}

/// A complete planning scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Service name.
    pub name: String,
    /// The original quality of the source data (the source component's
    /// single input level).
    pub source_quality: Vec<u32>,
    /// Parameter names of the source quality (defaults to `q0, q1, …`).
    #[serde(default)]
    pub source_params: Option<Vec<String>>,
    /// The environment's resources.
    pub resources: Vec<ResourceDto>,
    /// The service components.
    pub components: Vec<ComponentDto>,
    /// Dependency edges (defaults to a chain in component order).
    #[serde(default)]
    pub edges: Option<Vec<(usize, usize)>>,
    /// Rank of each sink output level (higher = better; all distinct).
    pub ranking: Vec<u32>,
    /// Demand scale factor (default 1.0).
    #[serde(default = "default_scale")]
    pub scale: f64,
}

fn default_scale() -> f64 {
    1.0
}

/// Errors loading or converting a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// JSON syntax / shape error.
    Json(serde_json::Error),
    /// I/O error reading the file.
    Io(std::io::Error),
    /// The scenario references something undefined or inconsistent.
    Invalid(String),
    /// The model rejected the converted service.
    Model(ModelError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json(e) => write!(f, "JSON error: {e}"),
            ScenarioError::Io(e) => write!(f, "I/O error: {e}"),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Model(e) => write!(f, "model validation failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<serde_json::Error> for ScenarioError {
    fn from(e: serde_json::Error) -> Self {
        ScenarioError::Json(e)
    }
}
impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e)
    }
}
impl From<ModelError> for ScenarioError {
    fn from(e: ModelError) -> Self {
        ScenarioError::Model(e)
    }
}

fn parse_kind(s: &str) -> Result<ResourceKind, ScenarioError> {
    Ok(match s {
        "compute" => ResourceKind::Compute,
        "memory" => ResourceKind::Memory,
        "disk-io" => ResourceKind::DiskIo,
        "link" => ResourceKind::NetworkLink,
        "path" => ResourceKind::NetworkPath,
        "other" => ResourceKind::Other,
        other => {
            return Err(ScenarioError::Invalid(format!(
                "unknown resource kind {other:?} (expected compute/memory/disk-io/link/path/other)"
            )))
        }
    })
}

/// Everything a scenario compiles into.
#[derive(Debug)]
pub struct CompiledScenario {
    /// The resource registry.
    pub space: ResourceSpace,
    /// The session to plan (service + bindings + scale).
    pub session: SessionInstance,
    /// The availability snapshot.
    pub view: AvailabilityView,
}

impl Scenario {
    /// Loads a scenario from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<Scenario, ScenarioError> {
        let text = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&text)?)
    }

    /// Compiles the scenario into model objects and an availability
    /// view.
    pub fn compile(&self) -> Result<CompiledScenario, ScenarioError> {
        // Resources.
        let mut space = ResourceSpace::new();
        let mut view = AvailabilityView::new();
        for r in &self.resources {
            if space.id(&r.name).is_some() {
                return Err(ScenarioError::Invalid(format!(
                    "duplicate resource {:?}",
                    r.name
                )));
            }
            let rid = space.register(&r.name, parse_kind(&r.kind)?);
            view.set_with_alpha(rid, r.available, r.alpha);
        }

        // Dependency graph (defaults to a chain).
        let k = self.components.len();
        let graph = match &self.edges {
            Some(edges) => DependencyGraph::new(k, edges.clone())?,
            None => DependencyGraph::chain(k)?,
        };

        // Output schemas first (needed for input defaulting).
        let out_schemas: Vec<Arc<QosSchema>> = self
            .components
            .iter()
            .map(|c| QosSchema::new(format!("{}.out", c.name), c.output_params.clone()))
            .collect();

        let source_params: Vec<String> = self.source_params.clone().unwrap_or_else(|| {
            (0..self.source_quality.len())
                .map(|i| format!("q{i}"))
                .collect()
        });
        let src_schema = QosSchema::new("source", source_params);

        let mut components = Vec::with_capacity(k);
        let mut bindings = Vec::with_capacity(k);
        for (c, dto) in self.components.iter().enumerate() {
            let outputs: Vec<QosVector> = dto
                .outputs
                .iter()
                .map(|vals| QosVector::try_new(out_schemas[c].clone(), vals.clone()))
                .collect::<Result<_, _>>()?;

            let inputs: Vec<QosVector> = match (&dto.inputs, graph.preds(c)) {
                (Some(levels), preds) => {
                    // Explicit inputs: typed with the single pred's
                    // schema, the source schema, or a concatenation.
                    let schema = match preds {
                        [] => src_schema.clone(),
                        [u] => out_schemas[*u].clone(),
                        many => QosSchema::concat(many.iter().map(|&u| &out_schemas[u])),
                    };
                    levels
                        .iter()
                        .map(|vals| QosVector::try_new(schema.clone(), vals.clone()))
                        .collect::<Result<_, _>>()?
                }
                (None, []) => vec![QosVector::try_new(
                    src_schema.clone(),
                    self.source_quality.clone(),
                )?],
                (None, [u]) => self.components[*u]
                    .outputs
                    .iter()
                    .map(|vals| QosVector::try_new(out_schemas[*u].clone(), vals.clone()))
                    .collect::<Result<_, _>>()?,
                (None, many) => {
                    // Fan-in default: full cartesian product of the
                    // predecessors' output levels.
                    let mut combos: Vec<Vec<&Vec<u32>>> = vec![vec![]];
                    for &u in many {
                        let mut next = Vec::new();
                        for combo in &combos {
                            for vals in &self.components[u].outputs {
                                let mut cc = combo.clone();
                                cc.push(vals);
                                next.push(cc);
                            }
                        }
                        combos = next;
                    }
                    let schema = QosSchema::concat(many.iter().map(|&u| &out_schemas[u]));
                    combos
                        .into_iter()
                        .map(|combo| {
                            let vals: Vec<u32> = combo.into_iter().flatten().copied().collect();
                            QosVector::try_new(schema.clone(), vals)
                        })
                        .collect::<Result<_, _>>()?
                }
            };

            // Slots and bindings.
            let mut slots = Vec::with_capacity(dto.slots.len());
            let mut bound = Vec::with_capacity(dto.slots.len());
            for s in &dto.slots {
                let kind = parse_kind(&s.kind)?;
                let rid = space.id(&s.resource).ok_or_else(|| {
                    ScenarioError::Invalid(format!(
                        "slot {:?} of component {:?} binds to unknown resource {:?}",
                        s.name, dto.name, s.resource
                    ))
                })?;
                slots.push(SlotSpec::new(&s.name, kind));
                bound.push(rid);
            }

            // Translation table.
            let mut builder = TableTranslation::builder(inputs.len(), outputs.len(), slots.len());
            for e in &dto.table {
                builder = builder.entry(e.qin, e.qout, e.demand.clone());
            }
            let table = builder.try_build()?;

            components.push(ComponentSpec::new(
                &dto.name,
                inputs,
                outputs,
                slots,
                Arc::new(table),
            ));
            bindings.push(ComponentBinding::new(bound));
        }

        let service = Arc::new(ServiceSpec::new(
            &self.name,
            components,
            graph,
            self.ranking.clone(),
        )?);
        let session = SessionInstance::new(service, bindings, self.scale)?;
        session.validate_kinds(&space)?;

        Ok(CompiledScenario {
            space,
            session,
            view,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosr_core::{plan_basic, Qrg, QrgOptions};

    fn minimal_json() -> &'static str {
        r#"{
          "name": "clip",
          "source_quality": [30],
          "resources": [
            { "name": "server.cpu", "kind": "compute", "available": 100.0 },
            { "name": "net", "kind": "path", "available": 50.0, "alpha": 0.9 }
          ],
          "components": [
            {
              "name": "encoder",
              "output_params": ["frame_rate"],
              "outputs": [[15], [30]],
              "slots": [ { "name": "cpu", "kind": "compute", "resource": "server.cpu" } ],
              "table": [
                { "qin": 0, "qout": 0, "demand": [12.0] },
                { "qin": 0, "qout": 1, "demand": [25.0] }
              ]
            },
            {
              "name": "player",
              "output_params": ["frame_rate"],
              "outputs": [[15], [30]],
              "slots": [ { "name": "bw", "kind": "path", "resource": "net" } ],
              "table": [
                { "qin": 0, "qout": 0, "demand": [8.0] },
                { "qin": 1, "qout": 1, "demand": [16.0] }
              ]
            }
          ],
          "ranking": [1, 2]
        }"#
    }

    #[test]
    fn parse_compile_and_plan() {
        let scenario: Scenario = serde_json::from_str(minimal_json()).unwrap();
        assert_eq!(scenario.scale, 1.0); // default
        let compiled = scenario.compile().unwrap();
        assert_eq!(compiled.space.len(), 2);
        assert_eq!(compiled.view.alpha(compiled.space.id("net").unwrap()), 0.9);
        let qrg = Qrg::build(&compiled.session, &compiled.view, &QrgOptions::default());
        let plan = plan_basic(&qrg).unwrap();
        assert_eq!(plan.rank, 2);
        assert!((plan.psi - 16.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_resource_is_reported() {
        let mut scenario: Scenario = serde_json::from_str(minimal_json()).unwrap();
        scenario.components[0].slots[0].resource = "nope".into();
        let err = scenario.compile().unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid(_)));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn unknown_kind_is_reported() {
        let mut scenario: Scenario = serde_json::from_str(minimal_json()).unwrap();
        scenario.resources[0].kind = "quantum".into();
        assert!(scenario.compile().is_err());
    }

    #[test]
    fn kind_mismatch_is_reported() {
        let mut scenario: Scenario = serde_json::from_str(minimal_json()).unwrap();
        scenario.components[0].slots[0].kind = "path".into();
        let err = scenario.compile().unwrap_err();
        assert!(matches!(err, ScenarioError::Model(_)), "{err}");
    }

    #[test]
    fn duplicate_resource_rejected() {
        let mut scenario: Scenario = serde_json::from_str(minimal_json()).unwrap();
        let dup = scenario.resources[0].clone();
        scenario.resources.push(dup);
        assert!(scenario.compile().is_err());
    }

    #[test]
    fn bad_table_entry_rejected() {
        let mut scenario: Scenario = serde_json::from_str(minimal_json()).unwrap();
        scenario.components[0].table[0].demand = vec![1.0, 2.0]; // 2 demands, 1 slot
        assert!(matches!(
            scenario.compile().unwrap_err(),
            ScenarioError::Model(_)
        ));
    }

    #[test]
    fn fan_in_default_is_cartesian_product() {
        let json = r#"{
          "name": "diamond",
          "source_quality": [1],
          "resources": [
            { "name": "r", "kind": "compute", "available": 1000.0 }
          ],
          "components": [
            { "name": "src", "output_params": ["g"], "outputs": [[1],[2]],
              "slots": [{ "name": "s", "kind": "compute", "resource": "r" }],
              "table": [ { "qin": 0, "qout": 0, "demand": [1.0] },
                         { "qin": 0, "qout": 1, "demand": [2.0] } ] },
            { "name": "a", "output_params": ["g"], "outputs": [[1],[2]],
              "slots": [{ "name": "s", "kind": "compute", "resource": "r" }],
              "table": [ { "qin": 0, "qout": 0, "demand": [1.0] },
                         { "qin": 1, "qout": 1, "demand": [2.0] } ] },
            { "name": "b", "output_params": ["g"], "outputs": [[1]],
              "slots": [{ "name": "s", "kind": "compute", "resource": "r" }],
              "table": [ { "qin": 0, "qout": 0, "demand": [1.0] },
                         { "qin": 1, "qout": 0, "demand": [1.0] } ] },
            { "name": "merge", "output_params": ["g"], "outputs": [[1],[2]],
              "slots": [{ "name": "s", "kind": "compute", "resource": "r" }],
              "table": [ { "qin": 0, "qout": 0, "demand": [1.0] },
                         { "qin": 1, "qout": 1, "demand": [2.0] } ] }
          ],
          "edges": [[0,1],[0,2],[1,3],[2,3]],
          "ranking": [1,2],
          "scale": 2.0
        }"#;
        let scenario: Scenario = serde_json::from_str(json).unwrap();
        let compiled = scenario.compile().unwrap();
        // merge inputs default to a out (2 levels) x b out (1 level) = 2.
        assert_eq!(
            compiled.session.service().component(3).input_levels().len(),
            2
        );
        assert_eq!(compiled.session.scale(), 2.0);
        let qrg = Qrg::build(&compiled.session, &compiled.view, &QrgOptions::default());
        let plan = qosr_core::plan_dag(&qrg).unwrap();
        assert_eq!(plan.rank, 2);
    }
}
