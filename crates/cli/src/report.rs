//! The `qosr trace` and `qosr report` subcommands: replay a JSONL trace
//! recorded by [`qosr_obs::JsonlSink`] into human-readable output.
//!
//! `report` reduces the whole trace to the run-level [`TraceSummary`] —
//! success rate, mean QoS level, bottleneck table — matching the
//! simulator's `RunMetrics` for the same run. `trace` prints a
//! per-session timeline so individual establishment attempts can be
//! audited event by event.

use crate::dto::ScenarioError;
use qosr_obs::{read_jsonl, session_timelines, EventKind, TraceEvent, TraceSummary};
use std::fmt::Write;
use std::path::Path;

fn load(path: &Path) -> Result<Vec<TraceEvent>, ScenarioError> {
    read_jsonl(path).map_err(ScenarioError::Io)
}

/// `report`: reduce a JSONL trace to the run-level summary table.
pub fn report(path: &Path) -> Result<String, ScenarioError> {
    let events = load(path)?;
    let summary = TraceSummary::from_events(&events);
    Ok(summary.render())
}

/// `trace`: print one timeline per session, then the unscoped events
/// (preamble and plan-phase records that precede a session id).
pub fn trace(path: &Path) -> Result<String, ScenarioError> {
    let events = load(path)?;
    let summary = TraceSummary::from_events(&events);
    let (by_session, unscoped) = session_timelines(&events);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} events, {} sessions",
        events.len(),
        by_session.len()
    );
    for (session, timeline) in &by_session {
        let _ = writeln!(out, "session {session}");
        for event in timeline {
            let _ = writeln!(out, "  {}", render_event(event, &summary));
        }
    }
    let lifecycle: Vec<&TraceEvent> = unscoped
        .iter()
        .filter(|e| e.kind != EventKind::ResourceName)
        .collect();
    if !lifecycle.is_empty() {
        let _ = writeln!(out, "unscoped");
        for event in lifecycle {
            let _ = writeln!(out, "  {}", render_event(event, &summary));
        }
    }
    Ok(out)
}

/// One timeline line: `t=<time> <kind> <relevant payload>`.
fn render_event(event: &TraceEvent, summary: &TraceSummary) -> String {
    let mut line = format!("t={:<10.3} {:<22}", event.time, format!("{:?}", event.kind));
    if let Some(service) = &event.service {
        let _ = write!(line, " service={service}");
    }
    if let Some(component) = event.component {
        let _ = write!(
            line,
            " pair=({component},{},{})",
            event.qin.unwrap_or(0),
            event.qout.unwrap_or(0)
        );
    }
    if let Some(feasible) = event.feasible {
        let _ = write!(line, " feasible={feasible}");
    }
    if let Some(level) = event.level {
        let _ = write!(line, " level={level}");
    }
    if let Some(psi) = event.psi {
        let _ = write!(line, " psi={psi:.4}");
    }
    if let Some(resource) = event.resource {
        let _ = write!(line, " resource={}", summary.resource_label(resource));
    }
    if let Some(alpha) = event.alpha {
        let _ = write!(line, " alpha={alpha:.2}");
    }
    if let Some(detail) = &event.detail {
        let _ = write!(line, " ({detail})");
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosr_obs::JsonlSink;
    use qosr_obs::TraceSink;

    fn sample_trace(dir: &Path) -> std::path::PathBuf {
        let path = dir.join("sample-trace.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        for event in [
            TraceEvent::new(0.0, EventKind::ResourceName)
                .with_resource(0)
                .with_name("h0.cpu"),
            TraceEvent::new(1.0, EventKind::PlanStarted).with_service("clip"),
            TraceEvent::new(1.0, EventKind::PlanCompleted)
                .with_service("clip")
                .with_level(2)
                .with_psi(0.4)
                .with_resource(0),
            TraceEvent::new(1.0, EventKind::ReservationCommitted)
                .with_session(1)
                .with_service("clip")
                .with_level(2)
                .with_psi(0.4)
                .with_resource(0),
            TraceEvent::new(9.0, EventKind::SessionReleased)
                .with_session(1)
                .with_detail("released 80"),
        ] {
            sink.emit(&event);
        }
        sink.into_inner().unwrap();
        path
    }

    #[test]
    fn report_renders_summary_table() {
        let dir = std::env::temp_dir().join("qosr-cli-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample_trace(&dir);
        let out = report(&path).unwrap();
        assert!(out.contains("establishment attempts : 1"));
        assert!(out.contains("sessions committed     : 1"));
        assert!(out.contains("success rate           : 1.0000"));
        assert!(out.contains("mean QoS level         : 2.0000"));
        assert!(out.contains("h0.cpu"));
        // No faults in the trace: the fault block is omitted entirely.
        assert!(!out.contains("faults injected"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_renders_fault_block_for_faulted_trace() {
        let dir = std::env::temp_dir().join("qosr-cli-fault-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faulted-trace.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        for event in [
            TraceEvent::new(1.0, EventKind::PlanStarted).with_service("clip"),
            TraceEvent::new(1.0, EventKind::EstablishRetry)
                .with_service("clip")
                .with_detail("commit failed on H2; retry 1/2 after backoff 0.25"),
            TraceEvent::new(1.0, EventKind::EstablishRollback)
                .with_session(7)
                .with_detail("released 2 prepared segment(s)"),
            TraceEvent::new(5.0, EventKind::FaultInjected)
                .with_name("H2")
                .with_detail("host crashed"),
            TraceEvent::new(6.0, EventKind::SessionLost)
                .with_session(7)
                .with_detail("released 120"),
            TraceEvent::new(9.0, EventKind::HostRecovered).with_name("H2"),
        ] {
            sink.emit(&event);
        }
        sink.into_inner().unwrap();

        let out = report(&path).unwrap();
        assert!(out.contains("faults injected        : 1"));
        assert!(out.contains("host recoveries        : 1"));
        assert!(out.contains("establish retries      : 1"));
        assert!(out.contains("rollbacks              : 1"));
        assert!(out.contains("sessions lost          : 1"));

        let timeline = trace(&path).unwrap();
        assert!(timeline.contains("SessionLost"));
        assert!(timeline.contains("(host crashed)"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_renders_session_timeline() {
        let dir = std::env::temp_dir().join("qosr-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample_trace(&dir);
        let out = trace(&path).unwrap();
        assert!(out.contains("5 events, 1 sessions"));
        assert!(out.contains("session 1"));
        assert!(out.contains("ReservationCommitted"));
        assert!(out.contains("resource=h0.cpu"));
        assert!(out.contains("(released 80)"));
        // Plan-phase events precede the session id, so they are unscoped.
        assert!(out.contains("unscoped"));
        assert!(out.contains("PlanStarted"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = report(Path::new("/nonexistent/trace.jsonl")).unwrap_err();
        assert!(matches!(err, ScenarioError::Io(_)));
    }
}
