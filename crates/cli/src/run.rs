//! The `qosr run` subcommand: execute, validate, or list scenario-DSL
//! files (`*.scenario.json`, see SCENARIOS.md and [`qosr_sim::dsl`]).
//!
//! `run <file>` loads the scenario, validates it, executes the
//! simulation, and prints a run report; `--trace PATH` additionally
//! streams the run's trace as JSONL (replayable with `qosr report`),
//! `--json` prints the raw [`qosr_sim::RunResult`] instead of the
//! report. `run --validate <file>` stops after validation; `run --list
//! [dir]` tabulates every scenario in a directory (default
//! `scenarios/`).

use crate::dto::ScenarioError;
use qosr_obs::TraceSink as _;
use qosr_sim::{run_scenario, run_scenario_traced, DslError, RunResult, ScenarioFile, Trigger};
use std::fmt::Write;
use std::path::Path;

/// Options for `qosr run <file>`.
#[derive(Debug, Default)]
pub struct RunOptions {
    /// Also stream the run's trace to this JSONL file.
    pub trace: Option<std::path::PathBuf>,
    /// Print the raw `RunResult` as JSON instead of the report.
    pub json: bool,
    /// Mint a trace id per admitted arrival so the event trace carries
    /// request span trees (`--trace-requests`). Run outcomes are
    /// bit-identical either way; only observability output changes.
    pub trace_requests: bool,
}

fn convert(e: DslError) -> ScenarioError {
    match e {
        DslError::Io(e) => ScenarioError::Io(e),
        DslError::Parse(msg) => ScenarioError::Invalid(msg),
        DslError::Invalid(msgs) => ScenarioError::Invalid(msgs.join("; ")),
    }
}

fn load(path: &Path) -> Result<ScenarioFile, ScenarioError> {
    let file = ScenarioFile::load(path).map_err(convert)?;
    file.validate().map_err(convert)?;
    Ok(file)
}

/// `run <file>`: execute one scenario file and report the run.
pub fn run(path: &Path, opts: &RunOptions) -> Result<String, ScenarioError> {
    let file = load(path)?;
    let mut config = file.to_config();
    if opts.trace_requests {
        config.trace_requests = true;
    }
    let result = match &opts.trace {
        Some(trace_path) => {
            let sink = std::sync::Arc::new(
                qosr_obs::JsonlSink::create(trace_path).map_err(ScenarioError::Io)?,
            );
            let result = run_scenario_traced(&config, sink.clone());
            sink.flush().map_err(ScenarioError::Io)?;
            result
        }
        None => run_scenario(&config),
    };
    if opts.json {
        let mut out = serde_json::to_string_pretty(&result)?;
        out.push('\n');
        return Ok(out);
    }
    Ok(render(&file, &result))
}

/// `run --validate <file>`: parse + validate only.
pub fn validate_only(path: &Path) -> Result<String, ScenarioError> {
    let file = load(path)?;
    Ok(format!(
        "ok: {} ({} rule{}, horizon {} TU)\n",
        file.name,
        file.rules.len(),
        if file.rules.len() == 1 { "" } else { "s" },
        file.to_config().horizon,
    ))
}

/// `run --list [dir]`: tabulate every `*.scenario.json` under `dir`.
pub fn list(dir: &Path) -> Result<String, ScenarioError> {
    let scenarios = ScenarioFile::load_dir(dir).map_err(convert)?;
    if scenarios.is_empty() {
        return Ok(format!("no *.scenario.json files in {}\n", dir.display()));
    }
    let mut out = String::new();
    for (path, file) in &scenarios {
        let stem = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{stem:<34} {:<2} rules  {}",
            file.rules.len(),
            file.description
        );
    }
    Ok(out)
}

/// The human-readable run report.
fn render(file: &ScenarioFile, result: &RunResult) -> String {
    let m = &result.metrics;
    let mut out = String::new();
    let _ = writeln!(out, "scenario {} — {}", file.name, file.description);
    let _ = writeln!(
        out,
        "  seed {}  planner {}  rate {}/60TU  horizon {} TU",
        result.config.seed,
        result.config.planner.label(),
        result.config.rate_per_60tu,
        result.config.horizon,
    );
    for (i, rule) in file.rules.iter().enumerate() {
        let events: Vec<&str> = rule.events.iter().map(|e| e.kind()).collect();
        let when = match &rule.trigger {
            Trigger::At(t) => format!("at {t}"),
            Trigger::Every { period, .. } => format!("every {period}"),
            Trigger::UtilizationAbove { threshold, .. } => format!("util > {threshold}"),
            Trigger::SessionsAbove { count, .. } => format!("sessions > {count}"),
        };
        let _ = writeln!(
            out,
            "  rule {:<24} {when:<16} -> {}",
            rule.label(i),
            events.join("+")
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "  sessions attempted     : {}", m.overall.attempts);
    let _ = writeln!(
        out,
        "  success rate           : {:.4} ({} committed)",
        m.overall.success_rate(),
        m.overall.successes
    );
    let _ = writeln!(
        out,
        "  avg end-to-end QoS     : {:.4}",
        m.overall.avg_qos_level()
    );
    let _ = writeln!(out, "  plan failures          : {}", m.plan_failures);
    if m.reserve_failures > 0 {
        let _ = writeln!(out, "  reserve failures       : {}", m.reserve_failures);
    }
    if m.fault_failures > 0 || m.faults_injected > 0 {
        let _ = writeln!(
            out,
            "  faults injected        : {} ({} fatal)",
            m.faults_injected, m.fault_failures
        );
    }
    if m.sessions_lost > 0 {
        let _ = writeln!(out, "  sessions lost          : {}", m.sessions_lost);
    }
    if m.scenario_triggers > 0 {
        let _ = writeln!(out, "  scenario triggers      : {}", m.scenario_triggers);
    }
    if m.burst_arrivals > 0 {
        let _ = writeln!(out, "  burst arrivals         : {}", m.burst_arrivals);
    }
    let classes = ["normal/short", "normal/long", "fat/short", "fat/long"];
    for (label, stats) in classes.iter().zip(&m.per_class) {
        let _ = writeln!(
            out,
            "    {label:<12} {:>6} attempts  {:.4} success",
            stats.attempts,
            stats.success_rate()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_scenario(name: &str, body: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qosr-cli-run-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path
    }

    const MINI: &str = r#"{
        "name": "mini",
        "description": "tiny smoke scenario",
        "config": { "horizon": 240.0, "rate_per_60tu": 60.0 },
        "rules": [
            { "name": "burst",
              "trigger": { "at": 60.0 },
              "events": [ { "flash_crowd": { "sessions": 10, "over": 5.0 } } ] }
        ]
    }"#;

    #[test]
    fn run_reports_the_scenario() {
        let path = write_scenario("mini.scenario.json", MINI);
        let out = run(&path, &RunOptions::default()).unwrap();
        assert!(out.contains("scenario mini"), "{out}");
        assert!(out.contains("burst"), "{out}");
        assert!(out.contains("scenario triggers      : 1"), "{out}");
        assert!(out.contains("burst arrivals         : 10"), "{out}");
    }

    #[test]
    fn run_json_emits_the_raw_result() {
        let path = write_scenario("mini-json.scenario.json", MINI);
        let out = run(
            &path,
            &RunOptions {
                json: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert!(out.contains("\"burst_arrivals\""), "{out}");
    }

    #[test]
    fn run_trace_writes_a_replayable_jsonl() {
        let path = write_scenario("mini-trace.scenario.json", MINI);
        let trace = std::env::temp_dir().join("qosr-cli-run-tests/mini.jsonl");
        run(
            &path,
            &RunOptions {
                trace: Some(trace.clone()),
                json: false,
                trace_requests: false,
            },
        )
        .unwrap();
        let report = crate::report::report(&trace).unwrap();
        assert!(report.contains("scenario triggers      : 1"), "{report}");
        std::fs::remove_file(trace).ok();
    }

    #[test]
    fn validate_only_catches_bad_rules() {
        let path = write_scenario(
            "bad.scenario.json",
            r#"{"name": "bad",
                "rules": [{"trigger": {"at": -1.0},
                           "events": [{"crash_host": {"host": 99}}]}]}"#,
        );
        let err = validate_only(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("host 99"), "{msg}");
        assert!(msg.contains(">= 0"), "{msg}");

        let good = write_scenario("good.scenario.json", MINI);
        let out = validate_only(&good).unwrap();
        assert!(out.starts_with("ok: mini (1 rule"), "{out}");
    }

    #[test]
    fn list_tabulates_a_directory() {
        let dir = std::env::temp_dir().join("qosr-cli-run-list");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("one.scenario.json"), MINI).unwrap();
        let out = list(&dir).unwrap();
        assert!(out.contains("one.scenario.json"), "{out}");
        assert!(out.contains("tiny smoke scenario"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
