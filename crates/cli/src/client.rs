//! Thin one-shot clients for a running `qosr serve`: the `qosr flight`
//! and `qosr slo` subcommands.
//!
//! Both open a fresh connection, send a single request frame, render
//! the answer, and hang up — the operator-facing incident loop:
//!
//! ```sh
//! qosr slo --addr 127.0.0.1:7464            # are we burning budget?
//! qosr flight --addr 127.0.0.1:7464 \
//!     --out flight.jsonl                    # what just happened?
//! qosr trace flight.jsonl                   # (then read the spans)
//! ```

use crate::dto::ScenarioError;
use crate::wire::{read_frame, write_frame, RequestFrame, ResponseFrame};
use qosr_obs::{RequestTrace, SloReport};
use std::fmt::Write as _;
use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;

/// Sends one request frame and returns the first response.
fn round_trip(addr: &str, request: &RequestFrame) -> Result<ResponseFrame, ScenarioError> {
    let mut stream = TcpStream::connect(addr).map_err(ScenarioError::Io)?;
    stream.set_nodelay(true).map_err(ScenarioError::Io)?;
    write_frame(&mut stream, request)
        .map_err(|e| ScenarioError::Invalid(format!("request failed: {e}")))?;
    stream.flush().map_err(ScenarioError::Io)?;
    let mut reader = BufReader::new(stream);
    match read_frame::<_, ResponseFrame>(&mut reader) {
        Ok(Some(frame)) => Ok(frame),
        Ok(None) => Err(ScenarioError::Invalid(
            "server closed the connection without answering".into(),
        )),
        Err(e) => Err(ScenarioError::Invalid(format!("response failed: {e}"))),
    }
}

/// `qosr flight`: dump the server's flight ring. With `out`, the span
/// trees are written there as canonical JSONL (one trace per line, the
/// same bytes a breach dump produces); without it they go to stdout.
pub fn flight(addr: &str, out: Option<&PathBuf>) -> Result<String, ScenarioError> {
    let response = round_trip(addr, &RequestFrame::Flight { id: 1 })?;
    let frame = match response {
        ResponseFrame::Flight(frame) => frame,
        ResponseFrame::Error { message, .. } => {
            return Err(ScenarioError::Invalid(format!("server error: {message}")))
        }
        other => {
            return Err(ScenarioError::Invalid(format!(
                "unexpected response: {other:?}"
            )))
        }
    };
    let mut lines = String::new();
    for trace in &frame.traces {
        lines.push_str(&trace.to_jsonl());
        lines.push('\n');
    }
    match out {
        Some(path) => {
            std::fs::write(path, &lines).map_err(ScenarioError::Io)?;
            Ok(format!(
                "qosr flight: wrote {} traces to {}\n{}",
                frame.traces.len(),
                path.display(),
                summarize(&frame.traces),
            ))
        }
        None => Ok(lines),
    }
}

/// A per-outcome tally over the dumped ring, so the operator sees the
/// shape before opening the JSONL.
fn summarize(traces: &[RequestTrace]) -> String {
    let mut committed = 0u64;
    let mut degraded = 0u64;
    let mut rejected = 0u64;
    let mut worst: Option<&RequestTrace> = None;
    for trace in traces {
        match trace.outcome.as_str() {
            "committed" => committed += 1,
            "degraded" => degraded += 1,
            _ => rejected += 1,
        }
        if worst.is_none_or(|w| trace.total_ns > w.total_ns) {
            worst = Some(trace);
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  outcomes   {committed} committed, {degraded} degraded, {rejected} rejected"
    );
    if let Some(worst) = worst {
        let _ = writeln!(
            out,
            "  slowest    trace {:016x} ({}, {} ns end-to-end)",
            worst.trace, worst.outcome, worst.total_ns
        );
    }
    out
}

/// `qosr slo`: fetch and render the server's current SLO report.
pub fn slo(addr: &str) -> Result<String, ScenarioError> {
    let response = round_trip(addr, &RequestFrame::Slo { id: 1 })?;
    let frame = match response {
        ResponseFrame::Slo(frame) => frame,
        ResponseFrame::Error { message, .. } => {
            return Err(ScenarioError::Invalid(format!("server error: {message}")))
        }
        other => {
            return Err(ScenarioError::Invalid(format!(
                "unexpected response: {other:?}"
            )))
        }
    };
    Ok(render_slo(&frame.report))
}

/// Renders one [`SloReport`] as the `qosr slo` table.
pub fn render_slo(report: &SloReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "qosr slo report — {}",
        if report.breached {
            "BREACHED"
        } else {
            "healthy"
        }
    );
    let _ = writeln!(
        out,
        "  requests    {} total ({} committed, {} degraded, {} rejected)",
        report.total, report.committed, report.degraded, report.rejected
    );
    let _ = writeln!(
        out,
        "  p99 latency {} ns (target {} ns) — burn {:.2} long / {:.2} short",
        report.p99_ns, report.target_p99_ns, report.latency_burn, report.short_latency_burn
    );
    let _ = writeln!(
        out,
        "  rejection   {:.4} (target {:.4}) — burn {:.2} long / {:.2} short",
        report.rejection_rate,
        report.target_rejection_rate,
        report.rejection_burn,
        report.short_rejection_burn
    );
    let _ = writeln!(
        out,
        "  degraded    {:.4} (target {:.4}) — burn {:.2} long / {:.2} short",
        report.degraded_rate,
        report.target_degraded_rate,
        report.degraded_burn,
        report.short_degraded_burn
    );
    let _ = writeln!(
        out,
        "  short win   {} requests, p99 {} ns",
        report.short_total, report.short_p99_ns
    );
    let _ = writeln!(out, "  breaches    {} entered so far", report.breaches);
    out
}
