//! `qosr` — plan end-to-end multi-resource reservations from JSON
//! scenario files.
//!
//! ```text
//! qosr validate <scenario.json>
//! qosr plan <scenario.json> [--planner basic|tradeoff|random|dag] [--seed N]
//! qosr dot <scenario.json>
//! qosr trace <trace.jsonl>
//! qosr report <trace.jsonl>
//! ```

use qosr_cli::commands::{dot, explain, plan_with_overrides, validate, PlannerChoice};
use qosr_cli::report::{report, trace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  qosr validate <scenario.json>
  qosr plan <scenario.json> [--planner basic|tradeoff|random|dag] [--seed N] [--avail name=value]...
  qosr explain <scenario.json> [--avail name=value]...
  qosr dot <scenario.json>
  qosr trace <trace.jsonl>
  qosr report <trace.jsonl>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command: Option<String> = None;
    let mut file: Option<PathBuf> = None;
    let mut planner = PlannerChoice::Basic;
    let mut seed = 0u64;
    let mut overrides: Vec<(String, f64)> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--planner" => {
                i += 1;
                match args.get(i).and_then(|s| PlannerChoice::parse(s)) {
                    Some(p) => planner = p,
                    None => {
                        eprintln!("invalid --planner value\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--avail" => {
                i += 1;
                let parsed = args.get(i).and_then(|s| {
                    let (name, value) = s.split_once('=')?;
                    Some((name.to_owned(), value.parse().ok()?))
                });
                match parsed {
                    Some(kv) => overrides.push(kv),
                    None => {
                        eprintln!("invalid --avail (expected name=value)\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => seed = s,
                    None => {
                        eprintln!("invalid --seed value\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            word if !word.starts_with('-') => {
                if command.is_none() {
                    command = Some(word.to_owned());
                } else if file.is_none() {
                    file = Some(word.into());
                } else {
                    eprintln!("unexpected argument {word:?}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let (Some(command), Some(file)) = (command, file) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let result = match command.as_str() {
        "validate" => validate(&file),
        "plan" => plan_with_overrides(&file, planner, seed, &overrides),
        "explain" => explain(&file, &overrides),
        "dot" => dot(&file),
        "trace" => trace(&file),
        "report" => report(&file),
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
