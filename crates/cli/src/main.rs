//! `qosr` — plan end-to-end multi-resource reservations from JSON
//! scenario files, replay traces, and run live-telemetry simulations.
//!
//! ```text
//! qosr validate <scenario.json>
//! qosr plan <scenario.json> [--planner basic|tradeoff|random|dag] [--seed N]
//! qosr dot <scenario.json>
//! qosr trace <trace.jsonl>
//! qosr report <trace.jsonl>
//! qosr metrics [--rate R] [--horizon H] [--metrics-addr HOST:PORT]
//! qosr top [--rates A,B,C] [--horizon H] [--metrics-addr HOST:PORT]
//! qosr serve [--addr HOST:PORT] [--world bench|paper]
//! qosr load [--addr HOST:PORT] [--rate R] [--duration S]
//! ```

use qosr_cli::commands::{dot, explain, plan_with_overrides, validate, PlannerChoice};
use qosr_cli::live::{self, LiveOptions};
use qosr_cli::load::{self, LoadOptions};
use qosr_cli::report::{report, trace};
use qosr_cli::run::{self, RunOptions};
use qosr_cli::serve::{self, ServeOptions, WorldKind};
use qosr_sim::PlannerKind;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  qosr validate <scenario.json>
  qosr plan <scenario.json> [--planner basic|tradeoff|random|dag] [--seed N] [--avail name=value]...
  qosr explain <scenario.json> [--avail name=value]...
  qosr dot <scenario.json>
  qosr trace <trace.jsonl>
  qosr report <trace.jsonl>
  qosr metrics [--planner basic|tradeoff|random] [--seed N] [--rate R] [--horizon H]
               [--batch N] [--sample P] [--metrics-addr HOST:PORT]
  qosr top     [--planner basic|tradeoff|random] [--seed N] [--rates A,B,C] [--horizon H]
               [--batch N] [--sample P] [--metrics-addr HOST:PORT]
  qosr run <file.scenario.json> [--trace out.jsonl] [--trace-requests] [--json]
  qosr run --validate <file.scenario.json>
  qosr run --list [dir]
  qosr serve [--addr HOST:PORT] [--world bench|paper] [--world-seed N] [--capacity LO,HI]
             [--workers N] [--max-batch N] [--max-replans N] [--seed N]
             [--addr-file FILE] [--metrics-addr HOST:PORT]
             [--slo-p99-ms MS] [--slo-max-rejection R] [--slo-max-degraded R]
             [--flight-capacity N] [--flight-dump FILE]
  qosr load  [--addr HOST:PORT] [--rate R] [--duration S] [--connections N] [--seed N]
             [--service I] [--domain I] [--scale X] [--out FILE] [--json] [--shutdown]
             [--attrib]
  qosr flight [--addr HOST:PORT] [--out FILE]
  qosr slo    [--addr HOST:PORT]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command: Option<String> = None;
    let mut file: Option<PathBuf> = None;
    let mut planner = PlannerChoice::Basic;
    let mut seed = 0u64;
    let mut overrides: Vec<(String, f64)> = Vec::new();
    let mut live = LiveOptions::default();
    let mut run_opts = RunOptions::default();
    let mut run_validate = false;
    let mut run_list = false;
    let mut serve_opts = ServeOptions::default();
    let mut load_opts = LoadOptions::default();

    macro_rules! flag_value {
        ($args:expr, $i:expr, $parse:expr, $what:expr) => {{
            $i += 1;
            match $args.get($i).and_then($parse) {
                Some(v) => v,
                None => {
                    eprintln!("invalid {} value\n{USAGE}", $what);
                    return ExitCode::FAILURE;
                }
            }
        }};
    }

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--planner" => {
                let choice = flag_value!(args, i, |s| PlannerChoice::parse(s), "--planner");
                planner = choice;
                live.planner = match choice {
                    PlannerChoice::Basic => PlannerKind::Basic,
                    PlannerChoice::Tradeoff => PlannerKind::Tradeoff,
                    PlannerChoice::Random => PlannerKind::Random,
                    // The sim environment has no DAG services; closest fit.
                    PlannerChoice::Dag => PlannerKind::Tradeoff,
                };
            }
            "--avail" => {
                let kv = flag_value!(
                    args,
                    i,
                    |s: &String| {
                        let (name, value) = s.split_once('=')?;
                        Some((name.to_owned(), value.parse().ok()?))
                    },
                    "--avail (expected name=value)"
                );
                overrides.push(kv);
            }
            "--seed" => {
                seed = flag_value!(args, i, |s: &String| s.parse().ok(), "--seed");
                live.seed = seed;
                serve_opts.seed = seed;
                load_opts.seed = seed;
            }
            "--rate" => {
                live.rate = flag_value!(args, i, |s: &String| s.parse().ok(), "--rate");
                load_opts.rate = live.rate;
            }
            "--rates" => {
                live.rates = flag_value!(
                    args,
                    i,
                    |s: &String| s
                        .split(',')
                        .map(|r| r.trim().parse().ok())
                        .collect::<Option<Vec<f64>>>()
                        .filter(|v| !v.is_empty()),
                    "--rates (expected A,B,C)"
                );
            }
            "--horizon" => {
                live.horizon = flag_value!(args, i, |s: &String| s.parse().ok(), "--horizon");
            }
            "--batch" => {
                live.batch = Some(flag_value!(args, i, |s: &String| s.parse().ok(), "--batch"));
            }
            "--sample" => {
                live.sample = flag_value!(args, i, |s: &String| s.parse().ok(), "--sample");
            }
            "--validate" => run_validate = true,
            "--list" => run_list = true,
            "--json" => {
                run_opts.json = true;
                load_opts.json = true;
            }
            "--addr" => {
                let addr: String = flag_value!(args, i, |s: &String| Some(s.clone()), "--addr");
                serve_opts.addr = addr.clone();
                load_opts.addr = addr;
            }
            "--world" => {
                serve_opts.world =
                    flag_value!(args, i, |s: &String| WorldKind::parse(s), "--world");
            }
            "--world-seed" => {
                serve_opts.world_seed =
                    flag_value!(args, i, |s: &String| s.parse().ok(), "--world-seed");
            }
            "--capacity" => {
                serve_opts.capacity = flag_value!(
                    args,
                    i,
                    |s: &String| {
                        let (lo, hi) = s.split_once(',')?;
                        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
                    },
                    "--capacity (expected LO,HI)"
                );
            }
            "--workers" => {
                serve_opts.workers = flag_value!(args, i, |s: &String| s.parse().ok(), "--workers");
            }
            "--max-batch" => {
                serve_opts.max_batch =
                    flag_value!(args, i, |s: &String| s.parse().ok(), "--max-batch");
            }
            "--max-replans" => {
                serve_opts.max_replans =
                    flag_value!(args, i, |s: &String| s.parse().ok(), "--max-replans");
            }
            "--addr-file" => {
                serve_opts.addr_file = Some(PathBuf::from(flag_value!(
                    args,
                    i,
                    |s: &String| Some(s.clone()),
                    "--addr-file"
                )));
            }
            "--duration" => {
                load_opts.duration =
                    flag_value!(args, i, |s: &String| s.parse().ok(), "--duration");
            }
            "--connections" => {
                load_opts.connections =
                    flag_value!(args, i, |s: &String| s.parse().ok(), "--connections");
            }
            "--service" => {
                load_opts.service = flag_value!(args, i, |s: &String| s.parse().ok(), "--service");
            }
            "--domain" => {
                load_opts.domain = flag_value!(args, i, |s: &String| s.parse().ok(), "--domain");
            }
            "--scale" => {
                load_opts.scale = flag_value!(args, i, |s: &String| s.parse().ok(), "--scale");
            }
            "--out" => {
                load_opts.out = Some(PathBuf::from(flag_value!(
                    args,
                    i,
                    |s: &String| Some(s.clone()),
                    "--out"
                )));
            }
            "--shutdown" => load_opts.shutdown = true,
            "--attrib" => load_opts.attrib = true,
            "--trace-requests" => run_opts.trace_requests = true,
            "--slo-p99-ms" => {
                let ms: f64 = flag_value!(
                    args,
                    i,
                    |s: &String| s.parse::<f64>().ok().filter(|v| *v > 0.0),
                    "--slo-p99-ms"
                );
                serve_opts.slo.p99_establish_ns = (ms * 1.0e6) as u64;
            }
            "--slo-max-rejection" => {
                serve_opts.slo.max_rejection_rate =
                    flag_value!(args, i, |s: &String| s.parse().ok(), "--slo-max-rejection");
            }
            "--slo-max-degraded" => {
                serve_opts.slo.max_degraded_rate =
                    flag_value!(args, i, |s: &String| s.parse().ok(), "--slo-max-degraded");
            }
            "--flight-capacity" => {
                serve_opts.flight_capacity =
                    flag_value!(args, i, |s: &String| s.parse().ok(), "--flight-capacity");
            }
            "--flight-dump" => {
                serve_opts.flight_dump = Some(PathBuf::from(flag_value!(
                    args,
                    i,
                    |s: &String| Some(s.clone()),
                    "--flight-dump"
                )));
            }
            "--trace" => {
                run_opts.trace = Some(PathBuf::from(flag_value!(
                    args,
                    i,
                    |s: &String| Some(s.clone()),
                    "--trace"
                )));
            }
            "--metrics-addr" => {
                let addr: String =
                    flag_value!(args, i, |s: &String| Some(s.clone()), "--metrics-addr");
                live.metrics_addr = Some(addr.clone());
                serve_opts.metrics_addr = Some(addr);
            }
            word if !word.starts_with('-') => {
                if command.is_none() {
                    command = Some(word.to_owned());
                } else if file.is_none() {
                    file = Some(word.into());
                } else {
                    eprintln!("unexpected argument {word:?}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let Some(command) = command else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    // The live-telemetry subcommands run the built-in paper environment
    // and take no scenario file.
    let result = match (command.as_str(), &file) {
        // `run` handles its own file-vs-no-file cases: `--list` defaults
        // to the shipped `scenarios/` directory.
        ("run", maybe_file) => {
            if run_list {
                let dir = maybe_file.clone().unwrap_or_else(|| "scenarios".into());
                run::list(&dir)
            } else if let Some(file) = maybe_file {
                if run_validate {
                    run::validate_only(file)
                } else {
                    run::run(file, &run_opts)
                }
            } else {
                eprintln!("run needs a scenario file\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        ("metrics", None) => live::metrics(&live),
        ("top", None) => live::top(&live, |line| println!("{line}")),
        ("serve", None) => serve::serve(&serve_opts),
        ("load", None) => load::run_load(&load_opts).and_then(|report| {
            if let Some(path) = &load_opts.out {
                let file = std::fs::File::create(path)?;
                serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)?;
            }
            if load_opts.json {
                Ok(serde_json::to_string_pretty(&report)? + "\n")
            } else {
                Ok(load::render_report(&report))
            }
        }),
        ("flight", None) => qosr_cli::client::flight(&load_opts.addr, load_opts.out.as_ref()),
        ("slo", None) => qosr_cli::client::slo(&load_opts.addr),
        ("metrics" | "top" | "serve" | "load" | "flight" | "slo", Some(_)) => {
            eprintln!("{command} takes no file argument\n{USAGE}");
            return ExitCode::FAILURE;
        }
        (_, None) => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
        (cmd, Some(file)) => match cmd {
            "validate" => validate(file),
            "plan" => plan_with_overrides(file, planner, seed, &overrides),
            "explain" => explain(file, &overrides),
            "dot" => dot(file),
            "trace" => trace(file),
            "report" => report(file),
            other => {
                eprintln!("unknown command {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        },
    };
    match result {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
