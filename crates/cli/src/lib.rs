//! # qosr-cli — JSON scenario front end
//!
//! Lets users describe a distributed service, its resources, and the
//! current availability in one JSON file and plan reservations from the
//! command line:
//!
//! ```sh
//! qosr validate scenario.json       # parse + structural validation
//! qosr plan scenario.json           # compute the reservation plan
//! qosr plan scenario.json --planner tradeoff
//! qosr dot scenario.json > qrg.dot  # Graphviz rendering of the QRG
//! ```
//!
//! See [`dto`] for the file format and `examples/data/*.json` for
//! complete scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod dto;

pub use dto::{Scenario, ScenarioError};
