//! # qosr-cli — JSON scenario front end
//!
//! Lets users describe a distributed service, its resources, and the
//! current availability in one JSON file and plan reservations from the
//! command line:
//!
//! ```sh
//! qosr validate scenario.json       # parse + structural validation
//! qosr plan scenario.json           # compute the reservation plan
//! qosr plan scenario.json --planner tradeoff
//! qosr dot scenario.json > qrg.dot  # Graphviz rendering of the QRG
//! qosr trace run.jsonl              # per-session timelines of a trace
//! qosr report run.jsonl             # run-level summary of a trace
//! ```
//!
//! See [`dto`] for the file format and `examples/data/*.json` for
//! complete scenarios. The `trace` / `report` subcommands (module
//! [`report`]) replay JSONL traces recorded by `qosr_obs::JsonlSink`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod dto;
pub mod report;

pub use dto::{Scenario, ScenarioError};
