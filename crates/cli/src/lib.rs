//! # qosr-cli — JSON scenario front end
//!
//! Lets users describe a distributed service, its resources, and the
//! current availability in one JSON file and plan reservations from the
//! command line:
//!
//! ```sh
//! qosr validate scenario.json       # parse + structural validation
//! qosr plan scenario.json           # compute the reservation plan
//! qosr plan scenario.json --planner tradeoff
//! qosr dot scenario.json > qrg.dot  # Graphviz rendering of the QRG
//! qosr trace run.jsonl              # per-session timelines of a trace
//! qosr report run.jsonl             # run-level summary of a trace
//! qosr metrics --rate 180           # Prometheus dump of a sim run
//! qosr top --rates 60,120,180,240   # live rate-sweep table
//! qosr run scenarios/flash-crowd.scenario.json   # run a scenario-DSL file
//! qosr run --list scenarios         # tabulate the scenario library
//! ```
//!
//! See [`dto`] for the file format and `examples/data/*.json` for
//! complete scenarios. The `trace` / `report` subcommands (module
//! [`report`]) replay JSONL traces recorded by `qosr_obs::JsonlSink`;
//! `metrics` / `top` (module [`live`]) run instrumented simulations
//! against the live telemetry layer and can serve the exposition over
//! HTTP with `--metrics-addr HOST:PORT`; `run` (module [`run`])
//! executes declarative `*.scenario.json` simulation scenarios — see
//! SCENARIOS.md for the DSL reference.
//!
//! The repo's admission pipeline is also reachable over the network:
//! `qosr serve` (module [`serve`]) exposes it as a TCP service speaking
//! the length-prefixed JSON frame protocol of module [`wire`], and
//! `qosr load` (module [`load`]) is the matching open-loop load
//! generator that measures request latency and throughput against a
//! running server:
//!
//! ```sh
//! qosr serve --addr 127.0.0.1:7464 --world bench
//! qosr load --addr 127.0.0.1:7464 --rate 50000 --duration 10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod commands;
pub mod dto;
pub mod live;
pub mod load;
pub mod report;
pub mod run;
pub mod serve;
pub mod wire;

pub use dto::{Scenario, ScenarioError};
