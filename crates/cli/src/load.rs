//! The `qosr load` subcommand: an open-loop load generator for
//! [`crate::serve`].
//!
//! Open-loop means the send schedule is fixed by `--rate` alone — a
//! sender never waits for responses before issuing the next request, so
//! a slow server accumulates queueing delay in the measured latency
//! instead of silently throttling the offered load (the coordinated-
//! omission trap closed-loop generators fall into).
//!
//! Each of `--connections` sender threads paces `rate / connections`
//! establishes per second (with seeded ±20% jitter so the senders do
//! not phase-lock into synchronized bursts), while a paired reader
//! thread timestamps every response against its send time and records
//! the nanosecond latency in a shared lock-free
//! [`Histogram`]. The final [`LoadReport`] is the
//! schema behind `BENCH_serve.json`.

use crate::dto::ScenarioError;
use crate::wire::{
    read_frame, read_response_frame, write_frame, write_request_frame, EstablishDef, RequestFrame,
    ResponseFrame,
};
use qosr_obs::Histogram;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Knobs for `qosr load`, all settable from the command line.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// The server to load (`--addr HOST:PORT`).
    pub addr: String,
    /// Aggregate offered load in requests per second (`--rate`).
    pub rate: f64,
    /// How long to offer it, in seconds (`--duration`).
    pub duration: f64,
    /// Concurrent connections, each with its own sender (`--connections`).
    pub connections: usize,
    /// Seed for the pacing jitter (`--seed`).
    pub seed: u64,
    /// Service template index sent with every establish (`--service`).
    pub service: usize,
    /// Domain template index sent with every establish (`--domain`).
    pub domain: usize,
    /// Demand scale factor sent with every establish (`--scale`).
    pub scale: f64,
    /// Write the report as JSON here (`--out FILE`).
    pub out: Option<PathBuf>,
    /// Print the report as JSON instead of a table (`--json`).
    pub json: bool,
    /// Send a `shutdown` frame when done and wait for the `bye`
    /// (`--shutdown`) — lets scripts tear the server down in one go.
    pub shutdown: bool,
    /// Request server-side latency attribution (`--attrib`): every
    /// establish carries a trace id, and the report splits the
    /// client-observed latency into the server's span-tree phases
    /// (queue/collect/plan/replan/commit) versus everything outside
    /// them (network plus client-side queueing).
    pub attrib: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            addr: "127.0.0.1:7464".into(),
            rate: 50_000.0,
            duration: 5.0,
            connections: 4,
            seed: 0,
            service: 0,
            domain: 0,
            scale: 1.0,
            out: None,
            json: false,
            shutdown: false,
            attrib: false,
        }
    }
}

/// What one load run measured; serialized verbatim into
/// `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Offered load the run asked for, requests per second.
    pub rate_target: f64,
    /// Connections (sender threads) used.
    pub connections: u64,
    /// Configured duration in seconds.
    pub duration_s: f64,
    /// Establish frames sent.
    pub requests: u64,
    /// Outcome frames received.
    pub responses: u64,
    /// Responses with status `committed`.
    pub committed: u64,
    /// Responses with status `degraded`.
    pub degraded: u64,
    /// Responses with status `rejected`.
    pub rejected: u64,
    /// `error` frames received (bad templates, protocol trouble).
    pub errors: u64,
    /// Wall-clock seconds from first send to last response.
    pub elapsed_s: f64,
    /// Completed requests per second (`responses / elapsed_s`).
    pub requests_per_sec: f64,
    /// Median request latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile request latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile request latency in nanoseconds.
    pub p999_ns: u64,
    /// Mean request latency in nanoseconds.
    pub mean_ns: f64,
    /// Worst observed request latency in nanoseconds.
    pub max_ns: u64,
    /// Server-side latency attribution — present only under `--attrib`.
    pub attribution: Option<AttribReport>,
}

/// Where traced requests spent their time, split between the server's
/// span tree and everything the server cannot see. All means are over
/// the responses that carried attribution.
#[derive(Debug, Clone, Serialize)]
pub struct AttribReport {
    /// Responses whose outcome frame carried a server span tree.
    pub matched: u64,
    /// Responses whose phase nanoseconds did **not** sum exactly to the
    /// server's `total_ns` — the span-tree accounting identity promises
    /// this stays 0.
    pub mismatches: u64,
    /// Mean client-observed latency (send to response decode), ns.
    pub client_mean_ns: f64,
    /// Mean server-side end-to-end latency (span-tree total), ns.
    pub server_mean_ns: f64,
    /// Mean latency outside the server's span tree: network transit
    /// plus client- and server-side socket queueing, ns.
    pub network_queue_mean_ns: f64,
    /// Mean server queue phase (ingress to round pickup), ns.
    pub queue_mean_ns: f64,
    /// Mean collect phase (phase-1 bid gathering share), ns.
    pub collect_mean_ns: f64,
    /// Mean plan phase (phase-2 relaxation), ns.
    pub plan_mean_ns: f64,
    /// Mean replan phase (conflict repair), ns.
    pub replan_mean_ns: f64,
    /// Mean commit phase (two-phase reserve/commit), ns.
    pub commit_mean_ns: f64,
}

/// Tallies shared by every connection.
#[derive(Default)]
struct Tallies {
    responses: AtomicU64,
    committed: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    // Attribution sums (populated only when outcomes carry span trees).
    attrib_matched: AtomicU64,
    attrib_mismatches: AtomicU64,
    attrib_client_ns: AtomicU64,
    attrib_server_ns: AtomicU64,
    attrib_queue_ns: AtomicU64,
    attrib_collect_ns: AtomicU64,
    attrib_plan_ns: AtomicU64,
    attrib_replan_ns: AtomicU64,
    attrib_commit_ns: AtomicU64,
}

/// How long the drain phase waits for stragglers after the offered
/// load stops.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// The sender's minimum nap between catch-up bursts (see the pacing
/// loop in [`connection_worker`]).
const MIN_NAP: Duration = Duration::from_micros(500);

/// Runs one open-loop load test against a running `qosr serve`.
pub fn run_load(opts: &LoadOptions) -> Result<LoadReport, ScenarioError> {
    if !(opts.rate.is_finite() && opts.rate > 0.0) {
        return Err(ScenarioError::Invalid(format!(
            "--rate must be finite and positive, got {}",
            opts.rate
        )));
    }
    if !(opts.duration.is_finite() && opts.duration > 0.0) {
        return Err(ScenarioError::Invalid(format!(
            "--duration must be finite and positive, got {}",
            opts.duration
        )));
    }
    let connections = opts.connections.max(1);
    let hist = Arc::new(Histogram::new());
    let tallies = Arc::new(Tallies::default());
    let started = Instant::now();

    let mut workers = Vec::with_capacity(connections);
    for conn in 0..connections {
        let opts = opts.clone();
        let hist = Arc::clone(&hist);
        let tallies = Arc::clone(&tallies);
        workers.push(
            std::thread::Builder::new()
                .name(format!("qosr-load-{conn}"))
                .spawn(move || connection_worker(conn, connections, &opts, hist, tallies))
                .map_err(ScenarioError::Io)?,
        );
    }

    let mut requests = 0u64;
    let mut failures: Vec<String> = Vec::new();
    for worker in workers {
        match worker.join() {
            Ok(Ok(sent)) => requests += sent,
            Ok(Err(e)) => failures.push(e.to_string()),
            Err(_) => failures.push("a load connection panicked".into()),
        }
    }
    if requests == 0 {
        let detail = failures
            .first()
            .cloned()
            .unwrap_or_else(|| "no connection could send".into());
        return Err(ScenarioError::Invalid(format!(
            "load run sent nothing: {detail}"
        )));
    }
    let elapsed_s = started.elapsed().as_secs_f64();

    if opts.shutdown {
        shutdown_server(&opts.addr)?;
    }

    let responses = tallies.responses.load(Ordering::Relaxed);
    Ok(LoadReport {
        rate_target: opts.rate,
        connections: connections as u64,
        duration_s: opts.duration,
        requests,
        responses,
        committed: tallies.committed.load(Ordering::Relaxed),
        degraded: tallies.degraded.load(Ordering::Relaxed),
        rejected: tallies.rejected.load(Ordering::Relaxed),
        errors: tallies.errors.load(Ordering::Relaxed),
        elapsed_s,
        requests_per_sec: if elapsed_s > 0.0 {
            responses as f64 / elapsed_s
        } else {
            0.0
        },
        p50_ns: hist.percentile(0.50).unwrap_or(0),
        p99_ns: hist.percentile(0.99).unwrap_or(0),
        p999_ns: hist.percentile(0.999).unwrap_or(0),
        mean_ns: hist.mean().unwrap_or(0.0),
        max_ns: hist.max().unwrap_or(0),
        attribution: attrib_report(&tallies),
    })
}

/// Folds the attribution sums into per-request means, when any outcome
/// carried a span tree.
fn attrib_report(tallies: &Tallies) -> Option<AttribReport> {
    let matched = tallies.attrib_matched.load(Ordering::Relaxed);
    if matched == 0 {
        return None;
    }
    let mean = |sum: &AtomicU64| sum.load(Ordering::Relaxed) as f64 / matched as f64;
    let client_mean_ns = mean(&tallies.attrib_client_ns);
    let server_mean_ns = mean(&tallies.attrib_server_ns);
    Some(AttribReport {
        matched,
        mismatches: tallies.attrib_mismatches.load(Ordering::Relaxed),
        client_mean_ns,
        server_mean_ns,
        network_queue_mean_ns: (client_mean_ns - server_mean_ns).max(0.0),
        queue_mean_ns: mean(&tallies.attrib_queue_ns),
        collect_mean_ns: mean(&tallies.attrib_collect_ns),
        plan_mean_ns: mean(&tallies.attrib_plan_ns),
        replan_mean_ns: mean(&tallies.attrib_replan_ns),
        commit_mean_ns: mean(&tallies.attrib_commit_ns),
    })
}

/// One connection: a paced sender on this thread, a latency-recording
/// reader on a helper thread. Returns the number of establishes sent.
fn connection_worker(
    conn: usize,
    connections: usize,
    opts: &LoadOptions,
    hist: Arc<Histogram>,
    tallies: Arc<Tallies>,
) -> Result<u64, ScenarioError> {
    let stream = TcpStream::connect(opts.addr.as_str()).map_err(ScenarioError::Io)?;
    stream.set_nodelay(true).map_err(ScenarioError::Io)?;
    let read_half = stream.try_clone().map_err(ScenarioError::Io)?;
    let write_half = stream.try_clone().map_err(ScenarioError::Io)?;
    // Buffered sends, flushed once per catch-up burst: the wire sees
    // one write per pacing tick, not two per frame.
    let mut out = BufWriter::new(write_half);

    // Send timestamps shared with the reader. A deque, not a map: the
    // server answers one connection's establishes in send order (one
    // admission thread, FIFO batches, an order-preserving writer
    // channel), so matching a response is a pop from the front —
    // `take_in_flight` falls back to a scan if order ever breaks.
    let in_flight: Arc<Mutex<VecDeque<(u64, Instant)>>> = Arc::new(Mutex::new(VecDeque::new()));

    let reader = {
        let in_flight = Arc::clone(&in_flight);
        std::thread::Builder::new()
            .name(format!("qosr-load-r{conn}"))
            .spawn(move || reader_worker(read_half, &in_flight, &hist, &tallies))
            .map_err(ScenarioError::Io)?
    };

    // Open-loop pacing: the k-th request of this connection is due at
    // `start + k * interval (± jitter)` whether or not responses came
    // back.
    let interval = Duration::from_secs_f64(connections as f64 / opts.rate);
    let mut rng = StdRng::seed_from_u64(opts.seed ^ (conn as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let deadline = Instant::now() + Duration::from_secs_f64(opts.duration);
    let mut next_due = Instant::now();
    let mut sent = 0u64;
    let mut io_error = None;
    'sending: while Instant::now() < deadline {
        // Send everything already due (catches up after oversleeping).
        while next_due <= Instant::now() {
            // Request ids are globally unique: connection in the high
            // bits, sequence in the low.
            let id = ((conn as u64) << 40) | sent;
            let mut def = EstablishDef::new(id);
            def.service = opts.service;
            def.domain = opts.domain;
            def.scale = opts.scale;
            if opts.attrib {
                // The request id is already globally unique — reuse it
                // as the trace id so dumps correlate with the report.
                def.trace = Some(id);
            }
            in_flight.lock().unwrap().push_back((id, Instant::now()));
            if write_request_frame(&mut out, &RequestFrame::Establish(def)).is_err() {
                io_error = Some("server closed the connection mid-run".to_string());
                break 'sending;
            }
            sent += 1;
            let jitter = 0.8 + 0.4 * rng.random::<f64>();
            next_due += interval.mul_secs_f64(jitter);
            if Instant::now() >= deadline {
                break 'sending;
            }
        }
        if out.flush().is_err() {
            io_error = Some("server closed the connection mid-run".to_string());
            break;
        }
        // Nap in coarse quanta: at high rates the inter-request gap is
        // microseconds — below sleep resolution — and waking per request
        // burns the core on scheduler churn. Oversleeping is harmless:
        // the catch-up loop above sends the accumulated burst, and the
        // open-loop schedule (`next_due`) never slips.
        let now = Instant::now();
        let until = next_due.max(now + MIN_NAP).min(deadline);
        if until > now {
            std::thread::sleep(until - now);
        }
    }
    let _ = out.flush();

    // Drain: wait for every response (bounded), then close the write
    // side so the server's reader sees EOF and releases our leases.
    let drain_deadline = Instant::now() + DRAIN_TIMEOUT;
    while !in_flight.lock().unwrap().is_empty() && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = stream.shutdown(Shutdown::Both);
    let _ = reader.join();
    match io_error {
        Some(e) if sent == 0 => Err(ScenarioError::Invalid(e)),
        _ => Ok(sent),
    }
}

/// `Instant + Duration * f64` without the unstable `Duration::mul_f64`
/// rounding differences mattering here.
trait MulSecs {
    fn mul_secs_f64(self, k: f64) -> Duration;
}

impl MulSecs for Duration {
    fn mul_secs_f64(self, k: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * k)
    }
}

/// Removes `id`'s send timestamp: the front in the common (in-order)
/// case, a linear scan if the server ever answered out of order.
fn take_in_flight(in_flight: &Mutex<VecDeque<(u64, Instant)>>, id: u64) -> Option<Instant> {
    let mut queue = in_flight.lock().unwrap();
    match queue.front() {
        Some(&(front, sent_at)) if front == id => {
            queue.pop_front();
            Some(sent_at)
        }
        _ => queue
            .iter()
            .position(|&(other, _)| other == id)
            .and_then(|i| queue.remove(i))
            .map(|(_, sent_at)| sent_at),
    }
}

fn reader_worker(
    stream: TcpStream,
    in_flight: &Mutex<VecDeque<(u64, Instant)>>,
    hist: &Histogram,
    tallies: &Tallies,
) {
    let mut reader = BufReader::new(stream);
    loop {
        match read_response_frame(&mut reader) {
            Ok(Some(ResponseFrame::Outcome(outcome))) => {
                if let Some(sent_at) = take_in_flight(in_flight, outcome.id) {
                    let client_ns = sent_at.elapsed().as_nanos() as u64;
                    hist.record(client_ns);
                    if let Some(total_ns) = outcome.total_ns {
                        let queue = outcome.queue_ns.unwrap_or(0);
                        let collect = outcome.collect_ns.unwrap_or(0);
                        let plan = outcome.plan_ns.unwrap_or(0);
                        let replan = outcome.replan_ns.unwrap_or(0);
                        let commit = outcome.commit_ns.unwrap_or(0);
                        tallies.attrib_matched.fetch_add(1, Ordering::Relaxed);
                        if queue + collect + plan + replan + commit != total_ns {
                            tallies.attrib_mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                        tallies
                            .attrib_client_ns
                            .fetch_add(client_ns, Ordering::Relaxed);
                        tallies
                            .attrib_server_ns
                            .fetch_add(total_ns, Ordering::Relaxed);
                        tallies.attrib_queue_ns.fetch_add(queue, Ordering::Relaxed);
                        tallies
                            .attrib_collect_ns
                            .fetch_add(collect, Ordering::Relaxed);
                        tallies.attrib_plan_ns.fetch_add(plan, Ordering::Relaxed);
                        tallies
                            .attrib_replan_ns
                            .fetch_add(replan, Ordering::Relaxed);
                        tallies
                            .attrib_commit_ns
                            .fetch_add(commit, Ordering::Relaxed);
                    }
                }
                tallies.responses.fetch_add(1, Ordering::Relaxed);
                match outcome.status.as_str() {
                    "committed" => tallies.committed.fetch_add(1, Ordering::Relaxed),
                    "degraded" => tallies.degraded.fetch_add(1, Ordering::Relaxed),
                    _ => tallies.rejected.fetch_add(1, Ordering::Relaxed),
                };
            }
            Ok(Some(ResponseFrame::Error { id, .. })) => {
                if let Some(id) = id {
                    take_in_flight(in_flight, id);
                }
                tallies.errors.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => break,
        }
    }
}

/// Sends a `shutdown` frame on a fresh connection and waits for the
/// `bye` acknowledging the drain.
fn shutdown_server(addr: &str) -> Result<(), ScenarioError> {
    let mut stream = TcpStream::connect(addr).map_err(ScenarioError::Io)?;
    stream.set_nodelay(true).map_err(ScenarioError::Io)?;
    write_frame(&mut stream, &RequestFrame::Shutdown)
        .map_err(|e| ScenarioError::Invalid(format!("shutdown frame failed: {e}")))?;
    stream.flush().map_err(ScenarioError::Io)?;
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame::<_, ResponseFrame>(&mut reader) {
            Ok(Some(ResponseFrame::Bye { .. })) | Ok(None) => return Ok(()),
            Ok(Some(_)) => continue,
            Err(e) => {
                return Err(ScenarioError::Invalid(format!(
                    "waiting for bye failed: {e}"
                )))
            }
        }
    }
}

/// Renders the report as the `qosr load` table.
pub fn render_report(report: &LoadReport) -> String {
    let mut out = String::new();
    out.push_str("qosr load report\n");
    out.push_str(&format!(
        "  offered       {:.0} req/s x {:.1}s over {} connections\n",
        report.rate_target, report.duration_s, report.connections
    ));
    out.push_str(&format!(
        "  sent          {} requests ({} answered)\n",
        report.requests, report.responses
    ));
    out.push_str(&format!(
        "  outcomes      {} committed, {} degraded, {} rejected, {} errors\n",
        report.committed, report.degraded, report.rejected, report.errors
    ));
    out.push_str(&format!(
        "  throughput    {:.0} req/s over {:.2}s\n",
        report.requests_per_sec, report.elapsed_s
    ));
    out.push_str(&format!(
        "  latency       p50 {} ns, p99 {} ns, p99.9 {} ns, mean {:.0} ns, max {} ns\n",
        report.p50_ns, report.p99_ns, report.p999_ns, report.mean_ns, report.max_ns
    ));
    if let Some(attrib) = &report.attribution {
        out.push_str(&format!(
            "  attribution   {} traced ({} accounting mismatches)\n",
            attrib.matched, attrib.mismatches
        ));
        out.push_str(&format!(
            "    client mean   {:.0} ns = network+socket {:.0} ns + server {:.0} ns\n",
            attrib.client_mean_ns, attrib.network_queue_mean_ns, attrib.server_mean_ns
        ));
        out.push_str(&format!(
            "    server mean   queue {:.0} ns, collect {:.0} ns, plan {:.0} ns, \
             replan {:.0} ns, commit {:.0} ns\n",
            attrib.queue_mean_ns,
            attrib.collect_mean_ns,
            attrib.plan_mean_ns,
            attrib.replan_mean_ns,
            attrib.commit_mean_ns
        ));
    }
    out
}
