//! The `qosr metrics` and `qosr top` subcommands: run instrumented
//! simulations and expose the live telemetry layer.
//!
//! `metrics` executes one paper-environment run with a
//! [`qosr_obs::MetricsRegistry`] attached and dumps the resulting
//! Prometheus text exposition to stdout — a one-shot scrape of the
//! counters, phase-timing summaries, the committed-Ψ histogram, and the
//! utilization gauges. `top` sweeps a list of arrival rates through the
//! same shared registry and prints one live table row per completed
//! rate, so a long sweep shows progress as it goes. Both accept
//! `--metrics-addr HOST:PORT` to additionally serve the exposition over
//! HTTP (via [`qosr_obs::serve`]) for the duration of the command.

use crate::dto::ScenarioError;
use qosr_obs::{serve, MetricsRegistry, MetricsServer, NullSink, Phase};
use qosr_sim::{run_scenario_instrumented, BatchArrivals, PlannerKind, ScenarioConfig};
use std::fmt::Write;
use std::sync::Arc;

/// Knobs for the live-telemetry subcommands, all settable from the
/// command line.
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// RNG seed (`--seed`).
    pub seed: u64,
    /// Arrival rate for `metrics`, sessions per 60 TU (`--rate`).
    pub rate: f64,
    /// The rates `top` sweeps, best-effort in order (`--rates a,b,c`).
    pub rates: Vec<f64>,
    /// Simulated horizon in TU (`--horizon`).
    pub horizon: f64,
    /// When set, admit arrivals through the concurrent batched pipeline
    /// in rounds of this size (`--batch N`).
    pub batch: Option<usize>,
    /// Gauge sampling period in TU (`--sample`).
    pub sample: f64,
    /// Serve the exposition over HTTP while running
    /// (`--metrics-addr HOST:PORT`).
    pub metrics_addr: Option<String>,
    /// The planning algorithm (`--planner`, same values as `plan`).
    pub planner: PlannerKind,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            seed: 1,
            rate: 120.0,
            rates: vec![60.0, 120.0, 180.0, 240.0],
            horizon: 1200.0,
            batch: None,
            sample: 30.0,
            metrics_addr: None,
            planner: PlannerKind::Tradeoff,
        }
    }
}

impl LiveOptions {
    fn config(&self, rate: f64) -> ScenarioConfig {
        ScenarioConfig {
            seed: self.seed,
            rate_per_60tu: rate,
            horizon: self.horizon,
            planner: self.planner,
            sample_period: Some(self.sample),
            batch_arrivals: self.batch.map(|size| BatchArrivals {
                size,
                ..BatchArrivals::default()
            }),
            ..ScenarioConfig::default()
        }
    }

    fn server(
        &self,
        registry: &Arc<MetricsRegistry>,
    ) -> Result<Option<MetricsServer>, ScenarioError> {
        match &self.metrics_addr {
            None => Ok(None),
            Some(addr) => serve(addr.as_str(), Arc::clone(registry))
                .map(Some)
                .map_err(ScenarioError::Io),
        }
    }
}

/// `metrics`: run one instrumented simulation and return the Prometheus
/// text exposition — nothing else, so the output can be scraped, piped,
/// or diffed directly.
pub fn metrics(opts: &LiveOptions) -> Result<String, ScenarioError> {
    let registry = Arc::new(MetricsRegistry::new());
    let server = opts.server(&registry)?;
    run_scenario_instrumented(&opts.config(opts.rate), Arc::new(NullSink), Some(&registry));
    let payload = registry.render();
    if let Some(server) = server {
        server.shutdown();
    }
    Ok(payload)
}

/// `top`: sweep the configured rates through one shared registry,
/// emitting a table row per completed rate through `row` (the caller
/// prints each immediately — that is the "live" part). Returns the
/// closing summary line.
pub fn top(opts: &LiveOptions, mut row: impl FnMut(&str)) -> Result<String, ScenarioError> {
    if opts.rates.is_empty() {
        return Err(ScenarioError::Invalid(
            "--rates needs at least one rate".into(),
        ));
    }
    let registry = Arc::new(MetricsRegistry::new());
    let server = opts.server(&registry)?;
    if let Some(server) = &server {
        row(&format!("serving /metrics on http://{}", server.addr()));
    }
    row(&format!(
        "{:>6}  {:>8}  {:>7}  {:>7}  {:>10}  {:>10}  {:>8}  {:>8}",
        "rate", "attempts", "succ", "qos", "plan p50", "plan p99", "util", "peak"
    ));

    let mut committed_total = 0;
    for &rate in &opts.rates {
        let result =
            run_scenario_instrumented(&opts.config(rate), Arc::new(NullSink), Some(&registry));
        committed_total += result.metrics.overall.successes;
        let timers = registry.timers().expect("registry has timers after a run");
        let plan = timers.histogram(Phase::Plan);
        let (p50, p99) = (
            plan.percentile(0.50).unwrap_or(0) as f64 / 1e3,
            plan.percentile(0.99).unwrap_or(0) as f64 / 1e3,
        );
        let (mean_util, peak_util) = host_utilization(&registry);
        row(&format!(
            "{rate:>6.0}  {:>8}  {:>6.1}%  {:>7.2}  {:>8.1}µs  {:>8.1}µs  {:>7.1}%  {:>7.1}%",
            result.metrics.overall.attempts,
            100.0 * result.metrics.overall.success_rate(),
            result.metrics.overall.avg_qos_level(),
            p50,
            p99,
            100.0 * mean_util,
            100.0 * peak_util,
        ));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "swept {} rates over horizon {} TU: {committed_total} sessions committed",
        opts.rates.len(),
        opts.horizon
    );
    if let Some(server) = server {
        server.shutdown();
    }
    Ok(out)
}

/// Mean and peak of the per-host utilization gauge series accumulated so
/// far (across every host label and sweep step).
fn host_utilization(registry: &MetricsRegistry) -> (f64, f64) {
    let (mut sum, mut n, mut peak) = (0.0, 0u64, 0.0f64);
    for (_, series) in registry.gauge_families("host_utilization") {
        for sample in series {
            sum += sample.value;
            n += 1;
            peak = peak.max(sample.value);
        }
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (sum / n as f64, peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> LiveOptions {
        LiveOptions {
            horizon: 240.0,
            sample: 60.0,
            ..LiveOptions::default()
        }
    }

    #[test]
    fn metrics_emits_prometheus_text() {
        let out = metrics(&quick()).unwrap();
        assert!(out.contains("# TYPE qosr_plans_started_total counter"));
        assert!(out.contains("# TYPE qosr_committed_psi histogram"));
        assert!(out.contains("# TYPE qosr_phase_duration_seconds summary"));
        assert!(out.contains("qosr_phase_duration_seconds_count{phase=\"plan\"}"));
        assert!(out.contains("# TYPE qosr_utilization gauge"));
        assert!(out.contains("qosr_active_sessions"));
    }

    #[test]
    fn top_emits_one_row_per_rate_plus_header() {
        let opts = LiveOptions {
            rates: vec![60.0, 120.0],
            ..quick()
        };
        let mut rows = Vec::new();
        let footer = top(&opts, |line| rows.push(line.to_owned())).unwrap();
        assert_eq!(rows.len(), 3, "header + 2 rates: {rows:?}");
        assert!(rows[0].contains("rate"));
        assert!(rows[1].trim_start().starts_with("60"));
        assert!(rows[2].trim_start().starts_with("120"));
        assert!(footer.contains("swept 2 rates"));
    }

    #[test]
    fn top_rejects_an_empty_sweep() {
        let opts = LiveOptions {
            rates: Vec::new(),
            ..quick()
        };
        let err = top(&opts, |_| {}).unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid(_)));
    }

    #[test]
    fn metrics_addr_serves_during_the_run() {
        use std::io::{Read as _, Write as _};
        let opts = LiveOptions {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..quick()
        };
        // The one-shot command shuts its server down before returning, so
        // exercise the serving path through the registry directly.
        let registry = Arc::new(MetricsRegistry::new());
        let server = opts.server(&registry).unwrap().unwrap();
        let addr = server.addr();
        run_scenario_instrumented(&opts.config(opts.rate), Arc::new(NullSink), Some(&registry));
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("qosr_plans_started_total"));
        server.shutdown();
    }
}
