//! The `qosr serve` subcommand: admission as a network service.
//!
//! Accepts [`crate::wire`] frames over plain `std::net` TCP and feeds
//! them into the batched
//! [`AdmissionQueue`], streaming one
//! [`crate::wire::ResponseFrame`] per request back as each sequential
//! commit lands (via `AdmissionQueue::admit_with`). No async runtime:
//! the same blocking accept-loop shape as the metrics exposition
//! server, plus one reader and one writer thread per connection and a
//! single *admission thread* that owns the world.
//!
//! ```text
//!   accept loop ──┬─ reader(conn 1) ─┐                   ┌─ writer(conn 1)
//!                 ├─ reader(conn 2) ─┼─» admission thread ┼─ writer(conn 2)
//!                 └─ …               ┘    (owns the world) └─ …
//! ```
//!
//! The admission thread coalesces consecutive `establish` frames — from
//! any connection — into one admission round (up to
//! [`ServeOptions::max_batch`]), so a hot server amortizes phase 1
//! exactly like the in-process pipeline. A `batch` frame always runs as
//! exactly one round at an explicit sim-time, which is what makes the
//! over-the-wire equivalence tests deterministic.
//!
//! Every admitted session is *leased* to the connection that admitted
//! it: when a client disconnects (cleanly or not), the admission thread
//! terminates everything that connection still holds, so capacity is
//! conserved no matter how clients die. A commit that lands for an
//! already-dead connection is released on the spot. Advance
//! reservations (the `advance` frame, booked on shadow
//! [`qosr_broker::TimelineBroker`] timelines mirroring the world's
//! capacities) are leased the same way — a disconnect cancels the
//! connection's remaining advance bookings.

use crate::dto::ScenarioError;
use crate::wire::{
    read_request_frame, write_response_frame, AdvanceDef, AdvanceOutcomeFrame, EstablishDef,
    FlightFrame, OutcomeFrame, RequestFrame, ResponseFrame, SloFrame, StatsFrame, WireError,
};
use qosr_bench::synth::synthetic_chain;
use qosr_broker::{
    AdmissionConfig, AdmissionQueue, AdvanceRegistry, AdvanceRequest, AlphaPolicy, BrokerRegistry,
    Coordinator, EstablishOptions, EstablishedSession, LocalBroker, LocalBrokerConfig, QosProxy,
    SessionId, SessionRequest, SimTime, TimelineBroker,
};
use qosr_core::Planner;
use qosr_model::{ResourceId, ResourceKind, ResourceVector, SessionInstance};
use qosr_obs::{
    Counters, MetricsRegistry, MetricsServer, SloEngine, SloOutcome, SloTargets, TraceId,
};
use qosr_sim::services::ServiceOptions;
use qosr_sim::PaperEnvironment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{BufWriter, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the admission thread waits for one more establish while
/// hot (see the gather window in [`admission_loop`]): long enough to
/// bridge high-rate inter-arrival gaps, short enough to be invisible
/// next to a round's own cost.
const GATHER_WINDOW: Duration = Duration::from_micros(100);

/// Which world the server admits into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorldKind {
    /// The admission-bench synthetic world: a 4×4 chain spread over 4
    /// hosts with a background broker fleet and effectively unbounded
    /// capacity — the throughput-measurement world.
    #[default]
    Bench,
    /// The paper's figure-9 environment (4 hosts, 8 domains, 4
    /// services), capacities drawn from `--capacity` under
    /// `--world-seed` — the world the equivalence tests mirror
    /// in-process.
    Paper,
}

impl WorldKind {
    /// Parses `bench` / `paper`.
    pub fn parse(s: &str) -> Option<WorldKind> {
        match s {
            "bench" => Some(WorldKind::Bench),
            "paper" => Some(WorldKind::Paper),
            _ => None,
        }
    }
}

/// Knobs for `qosr serve`, all settable from the command line.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (`--addr`, port 0 lets the OS pick).
    pub addr: String,
    /// The world to admit into (`--world bench|paper`).
    pub world: WorldKind,
    /// Seed for the paper world's capacity draws (`--world-seed`).
    pub world_seed: u64,
    /// Capacity range for the paper world (`--capacity LO,HI`).
    pub capacity: (f64, f64),
    /// Admission pipeline worker threads (`--workers`).
    pub workers: usize,
    /// Replan budget per conflicted request (`--max-replans`).
    pub max_replans: u32,
    /// Admission pipeline base seed (`--seed`).
    pub seed: u64,
    /// Most establishes coalesced into one round (`--max-batch`).
    pub max_batch: usize,
    /// Write the bound address here once listening (`--addr-file`) —
    /// how scripts find a port-0 server.
    pub addr_file: Option<PathBuf>,
    /// Also serve Prometheus metrics (`--metrics-addr HOST:PORT`).
    pub metrics_addr: Option<String>,
    /// Declared SLO targets, evaluated once per command sweep
    /// (`--slo-p99-ms`, `--slo-max-rejection`, `--slo-max-degraded`).
    pub slo: SloTargets,
    /// Flight-recorder ring capacity: how many recent request span
    /// trees a `flight` frame (or a breach dump) can return
    /// (`--flight-capacity`).
    pub flight_capacity: usize,
    /// Dump the flight ring to this JSONL file whenever the SLO engine
    /// *enters* breach (`--flight-dump PATH`). Each breach overwrites
    /// the file with the freshest evidence.
    pub flight_dump: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            world: WorldKind::Bench,
            world_seed: 42,
            capacity: (1000.0, 4000.0),
            workers: 4,
            max_replans: 2,
            seed: 0,
            max_batch: 256,
            addr_file: None,
            metrics_addr: None,
            slo: SloTargets::default(),
            flight_capacity: 256,
            flight_dump: None,
        }
    }
}

/// The world the admission thread owns: a coordinator plus a way to
/// instantiate sessions from the wire's `(service, domain, scale)`
/// template indices.
// One instance exists per server, owned by the admission thread for
// its whole life — the variant size imbalance cannot matter.
#[allow(clippy::large_enum_variant)]
enum ServerWorld {
    Bench {
        coordinator: Coordinator,
        template: SessionInstance,
    },
    Paper {
        // Boxed: the environment is an order of magnitude bigger than
        // the bench variant, and the enum lives on the admission
        // thread's stack.
        env: Box<PaperEnvironment>,
    },
}

/// Background resources per host in the bench world (mirrors
/// `benches/admission.rs`: a deployed proxy tracks every host resource,
/// not just the ones one service touches).
const BENCH_EXTRA_PER_HOST: usize = 30;

impl ServerWorld {
    fn build(opts: &ServeOptions) -> ServerWorld {
        match opts.world {
            WorldKind::Bench => {
                let (template, mut space) = synthetic_chain(4, 4);
                let chain_rids: Vec<_> = space.ids().collect();
                let hosts = 4;
                let mut registries: Vec<BrokerRegistry> =
                    (0..hosts).map(|_| BrokerRegistry::new()).collect();
                for (c, rid) in chain_rids.iter().enumerate() {
                    registries[c % hosts].register(Arc::new(LocalBroker::new(
                        *rid,
                        1.0e12,
                        SimTime::ZERO,
                        LocalBrokerConfig::default(),
                    )));
                }
                for (h, registry) in registries.iter_mut().enumerate() {
                    for i in 0..BENCH_EXTRA_PER_HOST {
                        let rid = space.register(format!("bg{h}_{i}"), ResourceKind::Compute);
                        registry.register(Arc::new(LocalBroker::new(
                            rid,
                            1.0e12,
                            SimTime::ZERO,
                            LocalBrokerConfig::default(),
                        )));
                    }
                }
                let proxies: Vec<_> = registries
                    .into_iter()
                    .enumerate()
                    .map(|(h, registry)| Arc::new(QosProxy::new(format!("H{h}"), registry)))
                    .collect();
                ServerWorld::Bench {
                    coordinator: Coordinator::new(proxies),
                    template,
                }
            }
            WorldKind::Paper => {
                let mut rng = StdRng::seed_from_u64(opts.world_seed);
                ServerWorld::Paper {
                    env: Box::new(PaperEnvironment::build(
                        &mut rng,
                        &ServiceOptions::default(),
                        opts.capacity,
                        LocalBrokerConfig::default(),
                    )),
                }
            }
        }
    }

    fn coordinator(&self) -> &Coordinator {
        match self {
            ServerWorld::Bench { coordinator, .. } => coordinator,
            ServerWorld::Paper { env } => &env.coordinator,
        }
    }

    fn coordinator_mut(&mut self) -> &mut Coordinator {
        match self {
            ServerWorld::Bench { coordinator, .. } => coordinator,
            ServerWorld::Paper { env } => &mut env.coordinator,
        }
    }

    /// Instantiates the session a templated establish names, or a
    /// client-facing error string.
    fn instantiate(&self, def: &EstablishDef) -> Result<SessionInstance, String> {
        if !(def.scale.is_finite() && def.scale > 0.0) {
            return Err(format!(
                "scale must be finite and positive, got {}",
                def.scale
            ));
        }
        match self {
            ServerWorld::Bench { template, .. } => {
                if def.service != 0 || def.domain != 0 {
                    return Err(format!(
                        "the bench world has a single template: service 0, domain 0 \
                         (got service {}, domain {})",
                        def.service, def.domain
                    ));
                }
                if def.scale == 1.0 {
                    Ok(template.clone())
                } else {
                    SessionInstance::new(
                        template.service().clone(),
                        template.bindings().to_vec(),
                        def.scale,
                    )
                    .map_err(|e| e.to_string())
                }
            }
            ServerWorld::Paper { env } => {
                if def.service >= 4 || def.domain >= 8 {
                    return Err(format!(
                        "the paper world has services 0..4 and domains 0..8 \
                         (got service {}, domain {})",
                        def.service, def.domain
                    ));
                }
                if def.service == def.domain / 2 {
                    return Err(format!(
                        "domain {} never requests its excluded service {}",
                        def.domain, def.service
                    ));
                }
                env.session(def.service, def.domain, def.scale)
                    .map_err(|e| e.to_string())
            }
        }
    }
}

fn parse_planner(s: &str) -> Result<Planner, String> {
    match s {
        "basic" => Ok(Planner::Basic),
        "tradeoff" => Ok(Planner::Tradeoff),
        "random" => Ok(Planner::Random),
        "dag" => Ok(Planner::Dag),
        other => Err(format!(
            "unknown planner `{other}` (expected basic, tradeoff, random, or dag)"
        )),
    }
}

/// Builds the `SessionRequest` a wire establish resolves to.
fn resolve(world: &ServerWorld, def: &EstablishDef) -> Result<SessionRequest, String> {
    let instance = world.instantiate(def)?;
    let mut request = SessionRequest::new(instance);
    if let Some(min) = def.qos_min {
        request = request.qos_min(min);
    }
    if let Some(deadline) = def.deadline {
        request = request.deadline(SimTime::new(deadline));
    }
    if let Some(planner) = &def.planner {
        request = request.planner(parse_planner(planner)?);
    }
    if let Some(trace) = def.trace {
        request = request.traced(TraceId(trace));
    }
    Ok(request)
}

/// Builds the `AdvanceRequest` a wire advance frame resolves to (or a
/// client-facing error string); `session` is the id the server will
/// book it under.
fn resolve_advance(def: &AdvanceDef, session: SessionId) -> Result<AdvanceRequest, String> {
    let policy = match def.policy.as_deref() {
        None | Some("ignore") => AlphaPolicy::Ignore,
        Some("tradeoff") => AlphaPolicy::Tradeoff,
        Some(other) => {
            return Err(format!(
                "unknown policy `{other}` (expected ignore or tradeoff)"
            ))
        }
    };
    let rid_of = |rid: u64| {
        u32::try_from(rid)
            .map(ResourceId)
            .map_err(|_| format!("resource id {rid} out of range"))
    };
    let rigid = def.demand.is_some() || def.from.is_some() || def.to.is_some();
    let malleable = def.resource.is_some() || def.volume.is_some() || def.deadline.is_some();
    let request = match (rigid, malleable) {
        (true, false) => {
            let (Some(demand), Some(from), Some(to)) = (&def.demand, def.from, def.to) else {
                return Err("a rigid advance frame needs demand, from, and to".into());
            };
            let mut pairs = Vec::with_capacity(demand.len());
            for &(rid, amount) in demand {
                pairs.push((rid_of(rid)?, amount));
            }
            let demand = ResourceVector::from_pairs(pairs).map_err(|e| e.to_string())?;
            AdvanceRequest::rigid(session, demand, SimTime::new(from), SimTime::new(to))
        }
        (false, true) => {
            let (Some(resource), Some(volume), Some(deadline)) =
                (def.resource, def.volume, def.deadline)
            else {
                return Err(
                    "a malleable advance frame needs resource, volume, and deadline".into(),
                );
            };
            let mut request = AdvanceRequest::malleable(
                session,
                rid_of(resource)?,
                volume,
                SimTime::new(deadline),
            );
            if let Some(earliest) = def.earliest {
                request = request.earliest(SimTime::new(earliest));
            }
            if let Some(rate) = def.min_rate {
                request = request.min_rate(rate);
            }
            if let Some(rate) = def.max_rate {
                request = request.max_rate(rate);
            }
            request
        }
        _ => {
            return Err(
                "an advance frame is either rigid (demand, from, to) or malleable \
                 (resource, volume, deadline), not both or neither"
                    .into(),
            )
        }
    };
    let mut request = request.alpha_policy(policy).allow_preempt(def.preempt);
    if let Some(trace) = def.trace {
        request = request.traced(TraceId(trace));
    }
    Ok(request)
}

/// What the per-connection reader threads feed the admission thread.
enum Cmd {
    /// A connection opened: its response channel and a control clone of
    /// the stream (used only to force-close it at server teardown).
    Connect {
        conn: u64,
        writer: Sender<Vec<ResponseFrame>>,
        writer_thread: JoinHandle<()>,
        control: TcpStream,
    },
    /// A decoded request frame.
    Frame { conn: u64, frame: RequestFrame },
    /// The connection's reader exited (EOF, error, or protocol error).
    Disconnect { conn: u64 },
    /// Internal stop (from [`Server::shutdown`]): drain and exit
    /// without a `bye` target.
    Stop,
}

/// One open connection, as the admission thread sees it.
struct Conn {
    writer: Sender<Vec<ResponseFrame>>,
    writer_thread: Option<JoinHandle<()>>,
    control: TcpStream,
}

/// One admitted session and the lease bookkeeping renegotiation and
/// disconnect-cleanup need.
struct LiveSession {
    conn: u64,
    est: EstablishedSession,
    instance: SessionInstance,
    options: EstablishOptions,
}

/// A running `qosr serve` instance. Dropping it (or calling
/// [`Server::shutdown`]) stops everything; [`Server::wait`] blocks
/// until a client-sent `shutdown` frame stops it instead.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    cmd_tx: Sender<Cmd>,
    accept: Option<JoinHandle<()>>,
    admission: Option<JoinHandle<()>>,
    metrics: Option<MetricsServer>,
}

impl Server {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops — i.e. until some client sends a
    /// `shutdown` frame. This is what `qosr serve` does after printing
    /// the address.
    pub fn wait(mut self) {
        self.join();
    }

    /// Stops the server from this process: drains queued requests,
    /// releases every live session, and joins all threads.
    pub fn shutdown(mut self) {
        self.request_stop();
        self.join();
    }

    fn request_stop(&self) {
        // Ignore send failure: the admission thread may already have
        // exited on a client-sent shutdown frame.
        let _ = self.cmd_tx.send(Cmd::Stop);
    }

    fn join(&mut self) {
        if let Some(handle) = self.admission.take() {
            let _ = handle.join();
        }
        // The admission thread's finale sets the stop flag; one
        // throwaway connection unblocks the accept loop (the
        // MetricsServer pattern).
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.metrics = None;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.admission.is_some() || self.accept.is_some() {
            self.request_stop();
            self.join();
        }
    }
}

/// Binds `opts.addr`, builds the world, and spawns the accept loop and
/// the admission thread. Returns as soon as the server is listening.
pub fn start(opts: &ServeOptions) -> Result<Server, ScenarioError> {
    let listener = TcpListener::bind(opts.addr.as_str()).map_err(ScenarioError::Io)?;
    let addr = listener.local_addr().map_err(ScenarioError::Io)?;
    if let Some(path) = &opts.addr_file {
        std::fs::write(path, format!("{addr}\n")).map_err(ScenarioError::Io)?;
    }

    let mut world = ServerWorld::build(opts);
    // The server always traces: flight and attribution are on-demand
    // per request (an establish without a `trace` id pays one relaxed
    // atomic load), so there is no flag to forget before an incident.
    let tracer = Arc::new(qosr_obs::Tracer::new(opts.flight_capacity.max(1)));
    tracer.set_enabled(true);
    world.coordinator_mut().set_tracer(Arc::clone(&tracer));
    let world = world;
    let slo = Arc::new(SloEngine::new(opts.slo));
    let counters = world.coordinator().counters_arc();
    let registry = Arc::new(MetricsRegistry::new());
    registry.attach_counters(Arc::clone(&counters));
    registry.attach_timers(Arc::clone(world.coordinator().phase_timers()));
    let metrics = match &opts.metrics_addr {
        None => None,
        Some(addr) => {
            Some(qosr_obs::serve(addr.as_str(), Arc::clone(&registry)).map_err(ScenarioError::Io)?)
        }
    };

    let stop = Arc::new(AtomicBool::new(false));
    let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();

    let accept = {
        let stop = Arc::clone(&stop);
        let cmd_tx = cmd_tx.clone();
        let counters = Arc::clone(&counters);
        std::thread::Builder::new()
            .name("qosr-serve-accept".into())
            .spawn(move || accept_loop(listener, stop, cmd_tx, counters))
            .map_err(ScenarioError::Io)?
    };

    let admission = {
        let config = AdmissionConfig {
            workers: opts.workers,
            max_replans: opts.max_replans,
            seed: opts.seed,
            ..AdmissionConfig::default()
        };
        let max_batch = opts.max_batch.max(1);
        let stop = Arc::clone(&stop);
        let registry = Arc::clone(&registry);
        let server_addr = addr;
        let slo = Arc::clone(&slo);
        let flight_dump = opts.flight_dump.clone();
        std::thread::Builder::new()
            .name("qosr-serve-admit".into())
            .spawn(move || {
                admission_loop(
                    world,
                    config,
                    max_batch,
                    cmd_rx,
                    stop,
                    registry,
                    server_addr,
                    slo,
                    flight_dump,
                )
            })
            .map_err(ScenarioError::Io)?
    };

    Ok(Server {
        addr,
        stop,
        cmd_tx,
        accept: Some(accept),
        admission: Some(admission),
        metrics,
    })
}

fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    cmd_tx: Sender<Cmd>,
    counters: Arc<Counters>,
) {
    let mut next_conn = 0u64;
    for stream in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let (Ok(write_half), Ok(control)) = (stream.try_clone(), stream.try_clone()) else {
            continue;
        };
        next_conn += 1;
        let conn = next_conn;
        let (writer_tx, writer_rx) = mpsc::channel::<Vec<ResponseFrame>>();
        let writer_thread = match std::thread::Builder::new()
            .name(format!("qosr-serve-w{conn}"))
            .spawn(move || writer_loop(write_half, writer_rx))
        {
            Ok(handle) => handle,
            Err(_) => continue,
        };
        if cmd_tx
            .send(Cmd::Connect {
                conn,
                writer: writer_tx.clone(),
                writer_thread,
                control,
            })
            .is_err()
        {
            break;
        }
        let reader_tx = cmd_tx.clone();
        let reader_counters = Arc::clone(&counters);
        let _ = std::thread::Builder::new()
            .name(format!("qosr-serve-r{conn}"))
            .spawn(move || reader_loop(stream, conn, writer_tx, reader_tx, reader_counters));
    }
}

/// Decodes frames off one connection. Pings are answered right here;
/// everything else goes to the admission thread. The first framing
/// error gets an `error` response and closes the connection (a peer
/// that desynchronized the length-prefix stream cannot be resynced).
fn reader_loop(
    stream: TcpStream,
    conn: u64,
    writer: Sender<Vec<ResponseFrame>>,
    cmd_tx: Sender<Cmd>,
    counters: Arc<Counters>,
) {
    // Buffered: a hot client sends thousands of tiny frames per read
    // syscall.
    let mut stream = std::io::BufReader::new(stream);
    loop {
        match read_request_frame(&mut stream) {
            Ok(Some(frame)) => {
                counters.record_serve_request();
                if let RequestFrame::Ping { id } = frame {
                    if writer.send(vec![ResponseFrame::Pong { id }]).is_err() {
                        break;
                    }
                    continue;
                }
                if cmd_tx.send(Cmd::Frame { conn, frame }).is_err() {
                    break;
                }
            }
            Ok(None) | Err(WireError::Io(_)) => break,
            Err(e) => {
                counters.record_serve_protocol_error();
                let _ = writer.send(vec![ResponseFrame::Error {
                    id: None,
                    message: e.to_string(),
                }]);
                break;
            }
        }
    }
    let _ = cmd_tx.send(Cmd::Disconnect { conn });
}

/// Serializes responses onto one connection. The channel carries whole
/// batches (an admission round sends all of a connection's outcomes as
/// one `Vec`), so a hot round costs one channel wake-up here, not one
/// per frame. Batches still coalesce greedily: write everything queued,
/// flush once when the queue runs dry.
fn writer_loop(stream: TcpStream, rx: Receiver<Vec<ResponseFrame>>) {
    let mut out = BufWriter::new(stream);
    'outer: while let Ok(first) = rx.recv() {
        for frame in &first {
            if write_response_frame(&mut out, frame).is_err() {
                break 'outer;
            }
        }
        loop {
            match rx.try_recv() {
                Ok(next) => {
                    for frame in &next {
                        if write_response_frame(&mut out, frame).is_err() {
                            break 'outer;
                        }
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'outer,
            }
        }
        if out.flush().is_err() {
            break;
        }
    }
    let _ = out.flush();
}

/// The admission thread: owns the world, the queue, the connection
/// table, and the session leases.
#[allow(clippy::too_many_arguments)]
fn admission_loop(
    world: ServerWorld,
    config: AdmissionConfig,
    max_batch: usize,
    cmd_rx: Receiver<Cmd>,
    stop: Arc<AtomicBool>,
    registry: Arc<MetricsRegistry>,
    server_addr: SocketAddr,
    slo: Arc<SloEngine>,
    flight_dump: Option<PathBuf>,
) {
    let coordinator = world.coordinator();
    let counters = coordinator.counters_arc();
    let queue = AdmissionQueue::new(coordinator, config);
    // Advance reservations live on shadow timelines mirroring every
    // broker's capacity. Advance sessions are leased to the connection
    // that booked them, exactly like admitted sessions.
    let advance = {
        let mut registry = AdvanceRegistry::new();
        for proxy in coordinator.proxies() {
            for broker in proxy.brokers().iter() {
                registry.register(Arc::new(TimelineBroker::new(
                    broker.resource(),
                    broker.capacity(),
                )));
            }
        }
        registry.set_counters(Arc::clone(&counters));
        // Advance bookings land in the same flight ring as establishes:
        // one `flight` frame reconstructs the whole recent timeline.
        registry.set_tracer(Arc::clone(coordinator.tracer()));
        registry
    };
    let mut next_advance_session = 0u64;
    // Advance session id → owning connection.
    let mut advance_leases: HashMap<u64, u64> = HashMap::new();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut sessions: HashMap<u64, LiveSession> = HashMap::new();
    let mut pending: std::collections::VecDeque<Cmd> = std::collections::VecDeque::new();
    let mut renegotiations = 0u64;
    // `drained` counts every request frame answered before the server
    // stopped — the `bye` reports it so a shutting-down client can see
    // that nothing it pipelined ahead of the shutdown was dropped.
    // `bye_to` remembers who asked.
    let mut draining = false;
    let mut drained = 0u64;
    let mut bye_to: Option<u64> = None;
    // Whether the last admission round coalesced multiple requests —
    // the signal that arms the gather window below.
    let mut hot = false;

    'serve: loop {
        if pending.is_empty() {
            match cmd_rx.recv() {
                Ok(cmd) => pending.push_back(cmd),
                Err(_) => break,
            }
        }
        while let Ok(cmd) = cmd_rx.try_recv() {
            pending.push_back(cmd);
        }

        while let Some(cmd) = pending.pop_front() {
            // The server's sim-clock: one tick per admission round.
            let clock = queue.rounds() as f64;
            match cmd {
                Cmd::Connect {
                    conn,
                    writer,
                    writer_thread,
                    control,
                } => {
                    conns.insert(
                        conn,
                        Conn {
                            writer,
                            writer_thread: Some(writer_thread),
                            control,
                        },
                    );
                }
                Cmd::Disconnect { conn } => {
                    counters.record_serve_disconnect();
                    release_leases(coordinator, &mut sessions, conn, SimTime::new(clock));
                    release_advance_leases(&advance, &mut advance_leases, conn);
                    close_conn(&mut conns, conn);
                }
                Cmd::Frame { conn, frame } => {
                    if !matches!(frame, RequestFrame::Shutdown) {
                        drained += 1;
                    }
                    match frame {
                        RequestFrame::Establish(def) => {
                            // Coalesce the run of consecutive
                            // establishes queued behind this one.
                            let mut batch = vec![(conn, def)];
                            while batch.len() < max_batch {
                                match pending.front() {
                                    Some(Cmd::Frame {
                                        frame: RequestFrame::Establish(_),
                                        ..
                                    }) => {
                                        let Some(Cmd::Frame {
                                            conn: c,
                                            frame: RequestFrame::Establish(d),
                                        }) = pending.pop_front()
                                        else {
                                            unreachable!("front() said establish");
                                        };
                                        drained += 1;
                                        batch.push((c, d));
                                    }
                                    _ => break,
                                }
                            }
                            // Gather window: a round has a fixed cost
                            // (epoch snapshot + worker dispatch), so
                            // running it per lone request caps
                            // throughput far below the pipeline's
                            // capacity. When the server is hot —
                            // requests already queuing faster than
                            // rounds complete — briefly wait for more
                            // before committing the round. A cold
                            // lockstep client never pays: `hot` only
                            // arms once a round actually coalesced.
                            if hot && !draining && pending.is_empty() {
                                while batch.len() < max_batch {
                                    match cmd_rx.recv_timeout(GATHER_WINDOW) {
                                        Ok(Cmd::Frame {
                                            conn: c,
                                            frame: RequestFrame::Establish(d),
                                        }) => {
                                            drained += 1;
                                            batch.push((c, d));
                                        }
                                        Ok(other) => {
                                            pending.push_back(other);
                                            break;
                                        }
                                        Err(_) => break,
                                    }
                                }
                            }
                            hot = batch.len() > 1;
                            run_round(&world, &queue, &mut conns, &mut sessions, batch, None, &slo);
                        }
                        RequestFrame::Batch { now, requests } => {
                            let batch: Vec<_> = requests.into_iter().map(|d| (conn, d)).collect();
                            run_round(&world, &queue, &mut conns, &mut sessions, batch, now, &slo);
                        }
                        RequestFrame::Advance(def) => {
                            let session = SessionId(next_advance_session + 1);
                            let response = match resolve_advance(&def, session) {
                                Ok(request) => {
                                    let outcome = advance.book(&request, SimTime::new(clock));
                                    if outcome.is_booked() {
                                        next_advance_session += 1;
                                        advance_leases.insert(session.0, conn);
                                    }
                                    ResponseFrame::Advance(AdvanceOutcomeFrame::from_outcome(
                                        def.id, session, &outcome,
                                    ))
                                }
                                Err(message) => ResponseFrame::Error {
                                    id: Some(def.id),
                                    message,
                                },
                            };
                            send_to(&conns, conn, response);
                        }
                        RequestFrame::AdvanceCancel { id, session } => {
                            let response = match advance_leases.get(&session) {
                                Some(&owner) if owner == conn => {
                                    advance_leases.remove(&session);
                                    let cancelled = advance.cancel_all(SessionId(session));
                                    ResponseFrame::AdvanceCancelled {
                                        id,
                                        session,
                                        released_volume: cancelled.released_volume,
                                        bookings_removed: cancelled.bookings_removed as u64,
                                    }
                                }
                                Some(_) => ResponseFrame::Error {
                                    id: Some(id),
                                    message: format!(
                                        "advance session {session} is leased to another connection"
                                    ),
                                },
                                None => ResponseFrame::Error {
                                    id: Some(id),
                                    message: format!("unknown advance session {session}"),
                                },
                            };
                            send_to(&conns, conn, response);
                        }
                        RequestFrame::Terminate { id, session } => {
                            let response = match sessions.get(&session) {
                                Some(lease) if lease.conn == conn => {
                                    let lease = sessions.remove(&session).expect("just found");
                                    let released =
                                        coordinator.terminate(&lease.est, SimTime::new(clock));
                                    ResponseFrame::Terminated {
                                        id,
                                        session,
                                        released,
                                    }
                                }
                                Some(_) => ResponseFrame::Error {
                                    id: Some(id),
                                    message: format!(
                                        "session {session} is leased to another connection"
                                    ),
                                },
                                None => ResponseFrame::Error {
                                    id: Some(id),
                                    message: format!("unknown session {session}"),
                                },
                            };
                            send_to(&conns, conn, response);
                        }
                        RequestFrame::Renegotiate { id, session } => {
                            let response = match sessions.get_mut(&session) {
                                Some(lease) if lease.conn == conn => {
                                    renegotiations += 1;
                                    let mut rng = StdRng::seed_from_u64(
                                        config.seed ^ renegotiations.wrapping_mul(0x9E37),
                                    );
                                    match coordinator.renegotiate(
                                        lease.est.clone(),
                                        &lease.instance,
                                        &lease.options,
                                        SimTime::new(clock),
                                        &mut rng,
                                    ) {
                                        Ok((est, upgraded)) => {
                                            let frame = ResponseFrame::Renegotiated {
                                                id,
                                                session: est.id.0,
                                                rank: est.plan.rank,
                                                psi: est.plan.psi,
                                                upgraded,
                                            };
                                            lease.est = est;
                                            frame
                                        }
                                        // The old plan was restored; the
                                        // lease stands.
                                        Err(e) => ResponseFrame::Error {
                                            id: Some(id),
                                            message: format!("renegotiation failed: {e}"),
                                        },
                                    }
                                }
                                Some(_) => ResponseFrame::Error {
                                    id: Some(id),
                                    message: format!(
                                        "session {session} is leased to another connection"
                                    ),
                                },
                                None => ResponseFrame::Error {
                                    id: Some(id),
                                    message: format!("unknown session {session}"),
                                },
                            };
                            send_to(&conns, conn, response);
                        }
                        RequestFrame::Stats { id } => {
                            let frame =
                                stats_frame(id, &queue, &counters, &conns, &sessions, &world);
                            send_to(&conns, conn, ResponseFrame::Stats(frame));
                        }
                        RequestFrame::Flight { id } => {
                            let traces = coordinator
                                .tracer()
                                .flight()
                                .dump()
                                .iter()
                                .map(|t| (**t).clone())
                                .collect();
                            send_to(
                                &conns,
                                conn,
                                ResponseFrame::Flight(FlightFrame { id, traces }),
                            );
                        }
                        RequestFrame::Slo { id } => {
                            let report = slo.report();
                            send_to(&conns, conn, ResponseFrame::Slo(SloFrame { id, report }));
                        }
                        RequestFrame::Ping { id } => {
                            // Normally answered by the reader; handle it
                            // anyway for robustness.
                            send_to(&conns, conn, ResponseFrame::Pong { id });
                        }
                        RequestFrame::Shutdown => {
                            if !draining {
                                draining = true;
                                bye_to = Some(conn);
                                // No new connections while draining.
                                stop.store(true, Ordering::Relaxed);
                                let _ = TcpStream::connect(server_addr);
                            }
                        }
                    }
                }
                Cmd::Stop => {
                    if !draining {
                        draining = true;
                        bye_to = None;
                        stop.store(true, Ordering::Relaxed);
                        let _ = TcpStream::connect(server_addr);
                    }
                }
            }
        }

        // Refresh the gauges once per sweep, not once per command — a
        // `set_gauge` locks and allocates, and a hot sweep processes
        // hundreds of frames.
        let clock = queue.rounds() as f64;
        registry.set_gauge("serve_connections", None, clock, conns.len() as f64);
        registry.set_gauge("serve_pending", None, clock, pending.len() as f64);
        registry.set_gauge("serve_live_sessions", None, clock, sessions.len() as f64);

        // Evaluate the SLO targets once per sweep. An evaluation that
        // *enters* breach dumps the flight ring: the span trees of the
        // requests that burned the budget, captured while they are
        // still in the ring.
        let (report, entered_breach) = slo.evaluate();
        registry.set_gauge("slo_latency_burn", None, clock, report.latency_burn);
        registry.set_gauge("slo_rejection_burn", None, clock, report.rejection_burn);
        registry.set_gauge("slo_degraded_burn", None, clock, report.degraded_burn);
        registry.set_gauge(
            "slo_breached",
            None,
            clock,
            if report.breached { 1.0 } else { 0.0 },
        );
        if entered_breach {
            eprintln!(
                "qosr serve: SLO breach #{} (latency burn {:.2}, rejection burn {:.2}, \
                 degraded burn {:.2})",
                report.breaches, report.latency_burn, report.rejection_burn, report.degraded_burn
            );
            if let Some(path) = &flight_dump {
                match std::fs::File::create(path) {
                    Ok(file) => {
                        let mut out = std::io::BufWriter::new(file);
                        match coordinator.tracer().flight().dump_jsonl(&mut out) {
                            Ok(n) => eprintln!(
                                "qosr serve: dumped {n} flight traces to {}",
                                path.display()
                            ),
                            Err(e) => eprintln!("qosr serve: flight dump failed: {e}"),
                        }
                    }
                    Err(e) => eprintln!(
                        "qosr serve: cannot open flight dump {}: {e}",
                        path.display()
                    ),
                }
            }
        }

        if draining {
            // The backlog (and anything that raced in behind it) is
            // processed; acknowledge and stop.
            while let Ok(cmd) = cmd_rx.try_recv() {
                pending.push_back(cmd);
            }
            if pending.is_empty() {
                break 'serve;
            }
        }
    }

    // Finale: acknowledge the shutdown, release every live session, and
    // tear the connections down writer-first so queued frames (the
    // `bye` included) reach the wire before the sockets die.
    if let Some(conn) = bye_to {
        send_to(&conns, conn, ResponseFrame::Bye { drained });
    }
    let clock = queue.rounds() as f64;
    let session_ids: Vec<u64> = sessions.keys().copied().collect();
    for id in session_ids {
        if let Some(lease) = sessions.remove(&id) {
            coordinator.terminate(&lease.est, SimTime::new(clock));
        }
    }
    let conn_ids: Vec<u64> = conns.keys().copied().collect();
    for conn in conn_ids {
        close_conn(&mut conns, conn);
    }
    registry.set_gauge("serve_connections", None, clock, 0.0);
    registry.set_gauge("serve_live_sessions", None, clock, 0.0);
}

/// Runs one admission round over `batch`, streaming each outcome to its
/// connection as the commit lands. Sessions committed for a connection
/// that died mid-round are released immediately.
///
/// Every outcome feeds the SLO engine. Traced requests report their
/// span tree's exact end-to-end latency; untraced ones fall back to
/// the round's elapsed wall-clock at commit time (queueing ahead of
/// the round is not attributed — tracing exists for that).
#[allow(clippy::too_many_arguments)]
fn run_round(
    world: &ServerWorld,
    queue: &AdmissionQueue<'_>,
    conns: &mut HashMap<u64, Conn>,
    sessions: &mut HashMap<u64, LiveSession>,
    batch: Vec<(u64, EstablishDef)>,
    explicit_now: Option<f64>,
    slo: &SloEngine,
) {
    let coordinator = queue.coordinator();
    let counters = coordinator.counters_arc();
    let now = SimTime::new(explicit_now.unwrap_or(queue.rounds() as f64));

    // Frames accumulate per connection and go out as one batch per
    // writer when the round ends: a channel send wakes the writer
    // thread, and a hot round has hundreds of outcomes — one wake per
    // connection per round, not one per frame.
    let mut outgoing: HashMap<u64, Vec<ResponseFrame>> = HashMap::new();

    // Resolve templates; invalid ones answer with an error and do not
    // join the round.
    let mut ids: Vec<u64> = Vec::with_capacity(batch.len());
    let mut owners: Vec<u64> = Vec::with_capacity(batch.len());
    let mut requests: Vec<SessionRequest> = Vec::with_capacity(batch.len());
    for (conn, def) in batch {
        match resolve(world, &def) {
            Ok(request) => {
                ids.push(def.id);
                owners.push(conn);
                requests.push(request);
            }
            Err(message) => outgoing
                .entry(conn)
                .or_default()
                .push(ResponseFrame::Error {
                    id: Some(def.id),
                    message,
                }),
        }
    }
    if !requests.is_empty() {
        counters.record_serve_batch();
        // Outcomes accumulate as each commit lands; lease bookkeeping is
        // deferred so the requests can be consumed afterward without
        // cloning their session instances.
        let mut leases: Vec<Option<(u64, EstablishedSession)>> =
            (0..requests.len()).map(|_| None).collect();
        let round_started = Instant::now();
        queue.admit_traced(&requests, now, |i, outcome, trace| {
            let mut frame = OutcomeFrame::from_outcome(ids[i], &outcome);
            if let Some(trace) = &trace {
                frame.attach_trace(trace);
            }
            let latency_ns = trace
                .as_ref()
                .map(|t| t.total_ns)
                .unwrap_or_else(|| round_started.elapsed().as_nanos() as u64);
            slo.observe(SloOutcome::from_label(&frame.status), latency_ns);
            let conn = owners[i];
            let alive = conns.contains_key(&conn);
            if let Some(est) = outcome.into_session() {
                if alive {
                    leases[i] = Some((conn, est));
                } else {
                    // The lease-holder died before its commit landed:
                    // nothing may stay reserved on behalf of a dead client.
                    coordinator.terminate(&est, now);
                }
            }
            if alive {
                outgoing
                    .entry(conn)
                    .or_default()
                    .push(ResponseFrame::Outcome(frame));
            }
        });
        for (lease, request) in leases.into_iter().zip(requests) {
            if let Some((conn, est)) = lease {
                let (instance, options) = request.into_parts();
                sessions.insert(
                    est.id.0,
                    LiveSession {
                        conn,
                        est,
                        instance,
                        options,
                    },
                );
            }
        }
    }
    for (conn, frames) in outgoing {
        if let Some(entry) = conns.get(&conn) {
            let _ = entry.writer.send(frames);
        }
    }
}

/// Terminates every session leased to `conn`.
fn release_leases(
    coordinator: &Coordinator,
    sessions: &mut HashMap<u64, LiveSession>,
    conn: u64,
    now: SimTime,
) {
    let owned: Vec<u64> = sessions
        .iter()
        .filter(|(_, lease)| lease.conn == conn)
        .map(|(&id, _)| id)
        .collect();
    for id in owned {
        if let Some(lease) = sessions.remove(&id) {
            coordinator.terminate(&lease.est, now);
        }
    }
}

/// Cancels every advance session leased to `conn` — the
/// reservation-timeline analogue of [`release_leases`].
fn release_advance_leases(advance: &AdvanceRegistry, leases: &mut HashMap<u64, u64>, conn: u64) {
    leases.retain(|&session, &mut owner| {
        if owner == conn {
            advance.cancel_all(SessionId(session));
            false
        } else {
            true
        }
    });
}

/// Removes `conn` from the table. Order matters: half-close the read
/// side first so a blocked reader sees EOF and drops its clone of the
/// response sender — only then can the writer's channel disconnect and
/// its thread drain the queued frames (a pending `bye` included), flush,
/// and exit. Full close comes last, after the writer is joined, so
/// nothing already written is torn out of the send buffer.
fn close_conn(conns: &mut HashMap<u64, Conn>, conn: u64) {
    if let Some(mut entry) = conns.remove(&conn) {
        let _ = entry.control.shutdown(Shutdown::Read);
        drop(entry.writer);
        if let Some(handle) = entry.writer_thread.take() {
            let _ = handle.join();
        }
        let _ = entry.control.shutdown(Shutdown::Both);
    }
}

fn send_to(conns: &HashMap<u64, Conn>, conn: u64, response: ResponseFrame) {
    if let Some(entry) = conns.get(&conn) {
        let _ = entry.writer.send(vec![response]);
    }
}

/// Snapshot for a `stats` frame: admission progress plus a capacity
/// audit over every broker of every proxy.
fn stats_frame(
    id: u64,
    queue: &AdmissionQueue<'_>,
    counters: &Counters,
    conns: &HashMap<u64, Conn>,
    sessions: &HashMap<u64, LiveSession>,
    world: &ServerWorld,
) -> StatsFrame {
    let snap = counters.snapshot();
    let mut total_available = 0.0;
    let mut total_capacity = 0.0;
    let mut over_committed = false;
    for proxy in world.coordinator().proxies() {
        for broker in proxy.brokers().iter() {
            let available = broker.available();
            total_available += available;
            total_capacity += broker.capacity();
            if available < -1e-9 {
                over_committed = true;
            }
        }
    }
    StatsFrame {
        id,
        rounds: queue.rounds(),
        requests: snap.serve_requests,
        establishments: snap.establishments,
        releases: snap.sessions_released,
        live_sessions: sessions.len() as u64,
        connections: conns.len() as u64,
        total_available,
        total_capacity,
        over_committed,
    }
}

/// `qosr serve`: start, announce, and block until a client-sent
/// `shutdown` frame (the subcommand's whole lifetime).
pub fn serve(opts: &ServeOptions) -> Result<String, ScenarioError> {
    let server = start(opts)?;
    let addr = server.addr();
    eprintln!("qosr serve: admitting on {addr} (world: {:?})", opts.world);
    if let Some(metrics) = &opts.metrics_addr {
        eprintln!("qosr serve: metrics on http://{metrics}");
    }
    server.wait();
    Ok(format!("qosr serve: stopped ({addr})\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, write_frame};
    use std::io::BufReader;

    struct Client {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).unwrap();
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            Client { stream, reader }
        }

        fn send(&mut self, frame: &RequestFrame) {
            write_frame(&mut self.stream, frame).expect("send");
            self.stream.flush().unwrap();
        }

        fn recv(&mut self) -> ResponseFrame {
            read_frame(&mut self.reader)
                .expect("recv")
                .expect("open stream")
        }
    }

    #[test]
    fn bench_world_commits_over_the_wire() {
        let server = start(&ServeOptions::default()).expect("start");
        let mut client = Client::connect(server.addr());

        client.send(&RequestFrame::Ping { id: 99 });
        assert_eq!(client.recv(), ResponseFrame::Pong { id: 99 });

        client.send(&RequestFrame::Establish(EstablishDef::new(1)));
        let ResponseFrame::Outcome(outcome) = client.recv() else {
            panic!("expected an outcome frame");
        };
        assert_eq!(outcome.id, 1);
        assert_eq!(outcome.status, "committed");
        let session = outcome.session.expect("committed outcomes name a session");

        client.send(&RequestFrame::Terminate { id: 2, session });
        let ResponseFrame::Terminated {
            id: 2, released, ..
        } = client.recv()
        else {
            panic!("expected a terminated frame");
        };
        assert!(released > 0.0, "terminate releases held capacity");

        client.send(&RequestFrame::Stats { id: 3 });
        let ResponseFrame::Stats(stats) = client.recv() else {
            panic!("expected a stats frame");
        };
        assert_eq!(stats.live_sessions, 0);
        assert!(!stats.over_committed);
        assert!(stats.requests >= 4);

        server.shutdown();
    }

    #[test]
    fn invalid_templates_answer_with_errors() {
        let server = start(&ServeOptions::default()).expect("start");
        let mut client = Client::connect(server.addr());

        let mut def = EstablishDef::new(7);
        def.service = 3; // bench world has only service 0
        client.send(&RequestFrame::Establish(def));
        let ResponseFrame::Error { id, message } = client.recv() else {
            panic!("expected an error frame");
        };
        assert_eq!(id, Some(7));
        assert!(message.contains("bench world"));

        client.send(&RequestFrame::Terminate {
            id: 8,
            session: 424242,
        });
        let ResponseFrame::Error { id, .. } = client.recv() else {
            panic!("expected an error frame");
        };
        assert_eq!(id, Some(8));

        server.shutdown();
    }

    #[test]
    fn advance_frames_book_cancel_and_reject_over_the_wire() {
        let server = start(&ServeOptions::default()).expect("start");
        let mut client = Client::connect(server.addr());

        // A malleable transfer on resource 0 (bench capacities are huge).
        let mut def = AdvanceDef::malleable(1, 0, 500.0, 100.0);
        def.max_rate = Some(25.0);
        def.policy = Some("tradeoff".into());
        client.send(&RequestFrame::Advance(def));
        let ResponseFrame::Advance(outcome) = client.recv() else {
            panic!("expected an advance outcome frame");
        };
        assert_eq!(outcome.id, 1);
        assert_eq!(outcome.status, "booked");
        assert_eq!(outcome.volume, Some(500.0));
        let session = outcome.session.expect("booked outcomes name a session");

        // A rigid window booking alongside it.
        client.send(&RequestFrame::Advance(AdvanceDef::rigid(
            2,
            vec![(0, 10.0), (1, 5.0)],
            0.0,
            4.0,
        )));
        let ResponseFrame::Advance(outcome) = client.recv() else {
            panic!("expected an advance outcome frame");
        };
        assert_eq!(outcome.status, "booked");

        // Cancelling the transfer reports what it released.
        client.send(&RequestFrame::AdvanceCancel { id: 3, session });
        let ResponseFrame::AdvanceCancelled {
            id: 3,
            released_volume,
            bookings_removed,
            ..
        } = client.recv()
        else {
            panic!("expected an advance-cancelled frame");
        };
        assert!(released_volume >= 500.0 - 1e-6);
        assert!(bookings_removed >= 1);

        // Cancelling it again: the lease is gone.
        client.send(&RequestFrame::AdvanceCancel { id: 4, session });
        let ResponseFrame::Error { id, message } = client.recv() else {
            panic!("expected an error frame");
        };
        assert_eq!(id, Some(4));
        assert!(message.contains("unknown advance session"));

        // A malformed def (both shapes at once) answers with an error.
        let mut bad = AdvanceDef::rigid(5, vec![(0, 1.0)], 0.0, 1.0);
        bad.volume = Some(10.0);
        client.send(&RequestFrame::Advance(bad));
        let ResponseFrame::Error { id, .. } = client.recv() else {
            panic!("expected an error frame");
        };
        assert_eq!(id, Some(5));

        // An unknown resource rejects cleanly, keeping the connection.
        client.send(&RequestFrame::Advance(AdvanceDef::malleable(
            6, 999_999, 10.0, 50.0,
        )));
        let ResponseFrame::Advance(outcome) = client.recv() else {
            panic!("expected an advance outcome frame");
        };
        assert_eq!(outcome.status, "rejected");
        assert!(outcome.error.is_some());

        server.shutdown();
    }

    #[test]
    fn disconnects_release_advance_leases() {
        let server = start(&ServeOptions::default()).expect("start");

        // Client 1 books resource 0's full bench capacity over [0, 5).
        let mut holder = Client::connect(server.addr());
        holder.send(&RequestFrame::Advance(AdvanceDef::rigid(
            1,
            vec![(0, 1.0e12)],
            0.0,
            5.0,
        )));
        let ResponseFrame::Advance(outcome) = holder.recv() else {
            panic!("expected an advance outcome frame");
        };
        assert_eq!(outcome.status, "booked");

        // Client 2 cannot book the same window while the lease stands…
        let mut rival = Client::connect(server.addr());
        rival.send(&RequestFrame::Advance(AdvanceDef::rigid(
            2,
            vec![(0, 1.0e12)],
            0.0,
            5.0,
        )));
        let ResponseFrame::Advance(outcome) = rival.recv() else {
            panic!("expected an advance outcome frame");
        };
        assert_eq!(outcome.status, "rejected");

        // …but once client 1 dies, its advance bookings are cancelled.
        drop(holder);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut id = 3;
        loop {
            rival.send(&RequestFrame::Advance(AdvanceDef::rigid(
                id,
                vec![(0, 1.0e12)],
                0.0,
                5.0,
            )));
            let ResponseFrame::Advance(outcome) = rival.recv() else {
                panic!("expected an advance outcome frame");
            };
            if outcome.status == "booked" {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "the dead client's advance lease was never released"
            );
            std::thread::sleep(Duration::from_millis(10));
            id += 1;
        }

        server.shutdown();
    }

    #[test]
    fn shutdown_frame_stops_the_server_with_a_bye() {
        let server = start(&ServeOptions::default()).expect("start");
        let mut client = Client::connect(server.addr());
        client.send(&RequestFrame::Shutdown);
        assert!(matches!(client.recv(), ResponseFrame::Bye { .. }));
        // wait() returns because the client-sent shutdown drained it.
        server.wait();
    }
}
