//! The CLI commands, exposed as functions so they can be tested without
//! spawning a process.

use crate::dto::{CompiledScenario, Scenario, ScenarioError};
use qosr_core::{
    plan_basic, plan_dag, plan_random, plan_tradeoff, relax, Qrg, QrgOptions, ReservationPlan,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write;
use std::path::Path;

/// Which planner the `plan` command runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerChoice {
    /// The basic algorithm (chains only).
    #[default]
    Basic,
    /// The tradeoff policy.
    Tradeoff,
    /// The contention-unaware baseline (chains only).
    Random,
    /// The two-pass heuristic (chains and DAGs).
    Dag,
}

impl PlannerChoice {
    /// Parses a `--planner` value.
    pub fn parse(s: &str) -> Option<PlannerChoice> {
        Some(match s {
            "basic" => PlannerChoice::Basic,
            "tradeoff" => PlannerChoice::Tradeoff,
            "random" => PlannerChoice::Random,
            "dag" => PlannerChoice::Dag,
            _ => None?,
        })
    }
}

fn compile(path: &Path) -> Result<(Scenario, CompiledScenario), ScenarioError> {
    compile_with(path, &[])
}

/// Compiles a scenario, applying `name=value` availability overrides.
fn compile_with(
    path: &Path,
    overrides: &[(String, f64)],
) -> Result<(Scenario, CompiledScenario), ScenarioError> {
    let scenario = Scenario::load(path)?;
    let mut compiled = scenario.compile()?;
    for (name, value) in overrides {
        let rid = compiled.space.id(name).ok_or_else(|| {
            ScenarioError::Invalid(format!("--avail references unknown resource {name:?}"))
        })?;
        let alpha = compiled.view.alpha(rid);
        compiled.view.set_with_alpha(rid, *value, alpha);
    }
    Ok((scenario, compiled))
}

/// `validate`: parse + compile, then summarize the scenario.
pub fn validate(path: &Path) -> Result<String, ScenarioError> {
    let (scenario, compiled) = compile(path)?;
    let service = compiled.session.service();
    let mut out = String::new();
    let _ = writeln!(out, "scenario {:?}: OK", scenario.name);
    let _ = writeln!(
        out,
        "  {} components, {} resources, dependency graph is a {}",
        service.components().len(),
        compiled.space.len(),
        if service.graph().is_chain() {
            "chain"
        } else {
            "DAG"
        },
    );
    for (c, comp) in service.components().iter().enumerate() {
        let _ = writeln!(
            out,
            "  [{c}] {:<16} {} input / {} output levels, {} slots, {} feasible pairs",
            comp.name(),
            comp.input_levels().len(),
            comp.output_levels().len(),
            comp.slots().len(),
            (0..comp.input_levels().len())
                .flat_map(|i| (0..comp.output_levels().len()).map(move |o| (i, o)))
                .filter(|&(i, o)| comp.translate(i, o).is_some())
                .count(),
        );
    }
    let _ = writeln!(
        out,
        "  end-to-end levels ranked best-first: {:?}",
        service.sink_rank_order()
    );
    Ok(out)
}

/// `plan`: compute and pretty-print the reservation plan.
pub fn plan(path: &Path, planner: PlannerChoice, seed: u64) -> Result<String, ScenarioError> {
    plan_with_overrides(path, planner, seed, &[])
}

/// `plan` with `name=value` availability overrides (`--avail`).
pub fn plan_with_overrides(
    path: &Path,
    planner: PlannerChoice,
    seed: u64,
    overrides: &[(String, f64)],
) -> Result<String, ScenarioError> {
    let (_, compiled) = compile_with(path, overrides)?;
    let qrg = Qrg::build(&compiled.session, &compiled.view, &QrgOptions::default());
    let result: Result<ReservationPlan, _> = match planner {
        PlannerChoice::Basic => plan_basic(&qrg),
        PlannerChoice::Tradeoff => plan_tradeoff(&qrg),
        PlannerChoice::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            plan_random(&qrg, &mut rng)
        }
        PlannerChoice::Dag => plan_dag(&qrg),
    };
    let plan = result.map_err(|e| ScenarioError::Invalid(format!("planning failed: {e}")))?;

    let service = compiled.session.service();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "end-to-end QoS: {} (rank {} of {})",
        plan.end_to_end,
        plan.rank,
        service.sink_ranking().len()
    );
    for a in &plan.assignments {
        let comp = service.component(a.component);
        let _ = writeln!(
            out,
            "  {:<16} {} -> {}",
            comp.name(),
            comp.input_levels()[a.qin],
            comp.output_levels()[a.qout]
        );
        for (rid, amount) in a.demand.iter() {
            let _ = writeln!(
                out,
                "    reserve {amount:>8.2} of {}",
                compiled.space.name(rid)
            );
        }
    }
    let _ = writeln!(out, "bottleneck Ψ = {:.4}", plan.psi);
    if let Some(b) = plan.bottleneck {
        let _ = writeln!(
            out,
            "  on {} (ψ = {:.4}, α = {:.2})",
            compiled.space.name(b.resource),
            b.psi,
            b.alpha
        );
    }
    Ok(out)
}

/// `explain`: show what the minimax relaxation sees — every end-to-end
/// level's reachability and bottleneck index ψ, best level first — then
/// the plan that would be committed.
pub fn explain(path: &Path, overrides: &[(String, f64)]) -> Result<String, ScenarioError> {
    let (_, compiled) = compile_with(path, overrides)?;
    let qrg = Qrg::build(&compiled.session, &compiled.view, &QrgOptions::default());
    let relaxation = relax(&qrg);
    let service = compiled.session.service();

    let mut out = String::new();
    let _ = writeln!(out, "end-to-end levels (best first):");
    for level in service.sink_rank_order() {
        let node = qrg.sink_node(level);
        let lvl = &service.end_to_end_levels()[level];
        if relaxation.reachable(node) {
            let _ = writeln!(
                out,
                "  {lvl}  reachable, bottleneck ψ = {:.4}",
                relaxation.dist[node]
            );
        } else {
            let _ = writeln!(out, "  {lvl}  UNREACHABLE under current availability");
        }
    }
    let _ = writeln!(
        out,
        "{} of {} (Q^in, Q^out) pairs feasible across {} components",
        qrg.n_translation_edges(),
        service
            .components()
            .iter()
            .map(|c| c.input_levels().len() * c.output_levels().len())
            .sum::<usize>(),
        service.components().len(),
    );
    match plan_dag(&qrg) {
        Ok(plan) => {
            let _ = writeln!(
                out,
                "committed plan: {} at Ψ = {:.4}",
                plan.end_to_end, plan.psi
            );
            if let Some(b) = plan.bottleneck {
                let _ = writeln!(
                    out,
                    "  bottleneck {} (ψ = {:.4}, α = {:.2})",
                    compiled.space.name(b.resource),
                    b.psi,
                    b.alpha
                );
            }
        }
        Err(e) => {
            let _ = writeln!(out, "no plan: {e}");
        }
    }
    Ok(out)
}

/// `dot`: emit the QRG in Graphviz format.
pub fn dot(path: &Path) -> Result<String, ScenarioError> {
    let (_, compiled) = compile(path)?;
    let qrg = Qrg::build(&compiled.session, &compiled.view, &QrgOptions::default());
    Ok(qrg.to_dot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scenario_file() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/clip.json")
    }

    #[test]
    fn planner_choice_parses() {
        assert_eq!(PlannerChoice::parse("basic"), Some(PlannerChoice::Basic));
        assert_eq!(PlannerChoice::parse("dag"), Some(PlannerChoice::Dag));
        assert_eq!(PlannerChoice::parse("nope"), None);
    }

    #[test]
    fn commands_run_on_the_sample_scenario() {
        let path = scenario_file();
        let v = validate(&path).unwrap();
        assert!(v.contains("OK"));
        assert!(v.contains("encoder"));

        let p = plan(&path, PlannerChoice::Basic, 1).unwrap();
        assert!(p.contains("end-to-end QoS"));
        assert!(p.contains("reserve"));

        let d = dot(&path).unwrap();
        assert!(d.starts_with("digraph qrg {"));
    }
}
