//! The `qosr serve` wire protocol: length-prefixed JSON frames.
//!
//! Every message on a connection — in either direction — is one
//! *frame*: a 4-byte big-endian payload length followed by that many
//! bytes of compact JSON. The JSON value is an externally-tagged
//! single-key object naming the frame kind (the same convention the
//! scenario DSL uses), e.g.
//!
//! ```text
//! {"establish":{"id":1,"service":0,"domain":3,"scale":1.0}}
//! {"outcome":{"id":1,"status":"committed","session":17,"rank":4,"psi":0.31}}
//! ```
//!
//! Clients send [`RequestFrame`]s, the server answers with
//! [`ResponseFrame`]s. Responses carry the request's client-chosen
//! `id`, so a pipelined client can match them up; the server answers
//! every request, in per-connection FIFO order.
//!
//! [`read_frame`] never panics on hostile input: an oversized length
//! prefix is rejected *before* allocating, a short read mid-frame is a
//! clean [`WireError::Truncated`], undecodable payload bytes are a
//! clean [`WireError::Json`], and an EOF on a frame boundary is
//! `Ok(None)` (the peer hung up politely).

use qosr_broker::{AdvanceOutcome, EstablishOutcome, SessionId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's JSON payload, enforced on both encode
/// and decode (decode rejects the length prefix before allocating).
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// A codec failure: transport, framing, or payload.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The peer hung up (or stopped) in the middle of a frame.
    Truncated {
        /// Bytes the frame header (or prefix) promised.
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// A length prefix beyond [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed payload length.
        len: usize,
    },
    /// The payload was not valid JSON, or not a known frame.
    Json(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "I/O error: {e}"),
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            WireError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes (limit {MAX_FRAME_LEN})")
            }
            WireError::Json(msg) => write!(f, "bad frame payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Encodes `frame` as one length-prefixed compact-JSON frame onto `w`.
/// Does not flush — callers batching frames flush once per burst.
pub fn write_frame<W: Write + ?Sized, T: Serialize>(w: &mut W, frame: &T) -> Result<(), WireError> {
    let body = serde_json::to_string(frame).map_err(|e| WireError::Json(e.to_string()))?;
    write_raw(w, body.as_bytes())
}

/// Length-prefixes and writes an already-encoded payload.
fn write_raw<W: Write + ?Sized>(w: &mut W, bytes: &[u8]) -> Result<(), WireError> {
    if bytes.len() > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len: bytes.len() });
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    Ok(())
}

/// [`write_frame`] specialised to [`RequestFrame`], formatting the
/// plain establish shape (no QoS floor, deadline, or planner override)
/// directly instead of via a value tree. Output is byte-identical to
/// the generic path — a property test holds the two together.
pub fn write_request_frame<W: Write + ?Sized>(
    w: &mut W,
    frame: &RequestFrame,
) -> Result<(), WireError> {
    use std::fmt::Write as _;
    if let RequestFrame::Establish(def) = frame {
        if def.qos_min.is_none()
            && def.deadline.is_none()
            && def.planner.is_none()
            && def.scale.is_finite()
        {
            let mut body = String::with_capacity(64);
            let _ = write!(body, "{{\"establish\":{{\"id\":{}", def.id);
            if def.service != 0 {
                let _ = write!(body, ",\"service\":{}", def.service);
            }
            if def.domain != 0 {
                let _ = write!(body, ",\"domain\":{}", def.domain);
            }
            if def.scale != 1.0 {
                body.push_str(",\"scale\":");
                push_float(&mut body, def.scale);
            }
            if let Some(t) = def.trace {
                let _ = write!(body, ",\"trace\":{t}");
            }
            body.push_str("}}");
            return write_raw(w, body.as_bytes());
        }
    }
    write_frame(w, frame)
}

/// [`write_frame`] specialised to [`ResponseFrame`], formatting the
/// committed/degraded outcome shapes directly (see
/// [`write_request_frame`] for the contract).
pub fn write_response_frame<W: Write + ?Sized>(
    w: &mut W,
    frame: &ResponseFrame,
) -> Result<(), WireError> {
    use std::fmt::Write as _;
    if let ResponseFrame::Outcome(o) = frame {
        if (o.status == "committed" || o.status == "degraded")
            && o.error.is_none()
            && o.miss_resource.is_none()
            && o.miss_ratio.is_none()
            && !o.has_attribution()
            && o.from.is_some() == o.to.is_some()
        {
            if let (Some(session), Some(rank), Some(psi)) = (o.session, o.rank, o.psi) {
                if psi.is_finite() {
                    let mut body = String::with_capacity(96);
                    let _ = write!(
                        body,
                        "{{\"outcome\":{{\"id\":{},\"status\":\"{}\",\"session\":{},\
                         \"rank\":{},\"psi\":",
                        o.id, o.status, session, rank
                    );
                    push_float(&mut body, psi);
                    if let (Some(from), Some(to)) = (o.from, o.to) {
                        let _ = write!(body, ",\"from\":{from},\"to\":{to}");
                    }
                    body.push_str("}}");
                    return write_raw(w, body.as_bytes());
                }
            }
        }
    }
    write_frame(w, frame)
}

/// Appends a finite float exactly as the generic serializer would
/// (integral values keep a trailing `.0`), so the fast encoders stay
/// byte-identical to the value-tree path.
fn push_float(body: &mut String, f: f64) {
    use std::fmt::Write as _;
    let start = body.len();
    let _ = write!(body, "{f}");
    if !body[start..].contains(['.', 'e', 'E']) {
        body.push_str(".0");
    }
}

/// A strict cursor over the compact JSON our own encoders emit: no
/// whitespace, fixed field order, JSON number grammar. Any deviation
/// makes the fast parsers return `None` and the caller falls back to
/// the generic (value-tree) parser, so hostile or merely unusual input
/// behaves exactly as before.
struct Scan<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Scan<'a> {
    fn new(text: &'a str) -> Self {
        Scan {
            s: text.as_bytes(),
            i: 0,
        }
    }

    /// Consumes `lit` if it is next, reporting whether it was.
    fn eat(&mut self, lit: &str) -> bool {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn digits(&mut self) -> &'a [u8] {
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
            self.i += 1;
        }
        &self.s[start..self.i]
    }

    /// Scans a JSON unsigned integer (no sign, no leading zeros).
    fn u64(&mut self) -> Option<u64> {
        let digits = self.digits();
        if digits.is_empty() || (digits.len() > 1 && digits[0] == b'0') {
            return None;
        }
        std::str::from_utf8(digits).ok()?.parse().ok()
    }

    /// Scans a JSON number into an `f64`, enforcing JSON's grammar so
    /// the fast path accepts exactly what the generic parser would.
    fn f64(&mut self) -> Option<f64> {
        let start = self.i;
        if self.i < self.s.len() && self.s[self.i] == b'-' {
            self.i += 1;
        }
        let int = self.digits();
        if int.is_empty() || (int.len() > 1 && int[0] == b'0') {
            return None;
        }
        if self.eat(".") && self.digits().is_empty() {
            return None;
        }
        if self.i < self.s.len() && matches!(self.s[self.i], b'e' | b'E') {
            self.i += 1;
            if self.i < self.s.len() && matches!(self.s[self.i], b'+' | b'-') {
                self.i += 1;
            }
            if self.digits().is_empty() {
                return None;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()?
            .parse()
            .ok()
    }

    fn done(&self) -> bool {
        self.i == self.s.len()
    }
}

/// Parses the establish shape [`write_request_frame`] emits; `None`
/// (anything else, or any syntax deviation) falls back to the generic
/// parser.
fn fast_parse_establish(text: &str) -> Option<RequestFrame> {
    let mut s = Scan::new(text);
    if !s.eat("{\"establish\":{\"id\":") {
        return None;
    }
    let mut def = EstablishDef::new(s.u64()?);
    if s.eat(",\"service\":") {
        def.service = usize::try_from(s.u64()?).ok()?;
    }
    if s.eat(",\"domain\":") {
        def.domain = usize::try_from(s.u64()?).ok()?;
    }
    if s.eat(",\"scale\":") {
        def.scale = s.f64()?;
    }
    if s.eat(",\"trace\":") {
        def.trace = Some(s.u64()?);
    }
    if s.eat("}}") && s.done() {
        Some(RequestFrame::Establish(def))
    } else {
        None
    }
}

/// Parses the committed/degraded outcome shapes
/// [`write_response_frame`] emits; `None` falls back to the generic
/// parser (rejections carry arbitrary error strings, so they always
/// take the generic path).
fn fast_parse_outcome(text: &str) -> Option<ResponseFrame> {
    let mut s = Scan::new(text);
    if !s.eat("{\"outcome\":{\"id\":") {
        return None;
    }
    let id = s.u64()?;
    let status = if s.eat(",\"status\":\"committed\"") {
        "committed"
    } else if s.eat(",\"status\":\"degraded\"") {
        "degraded"
    } else {
        return None;
    };
    if !s.eat(",\"session\":") {
        return None;
    }
    let session = s.u64()?;
    if !s.eat(",\"rank\":") {
        return None;
    }
    let rank = u32::try_from(s.u64()?).ok()?;
    if !s.eat(",\"psi\":") {
        return None;
    }
    let psi = s.f64()?;
    let (mut from, mut to) = (None, None);
    if s.eat(",\"from\":") {
        from = Some(u32::try_from(s.u64()?).ok()?);
        if !s.eat(",\"to\":") {
            return None;
        }
        to = Some(u32::try_from(s.u64()?).ok()?);
    }
    if !(s.eat("}}") && s.done()) {
        return None;
    }
    Some(ResponseFrame::Outcome(OutcomeFrame {
        id,
        status: status.to_owned(),
        session: Some(session),
        rank: Some(rank),
        psi: Some(psi),
        from,
        to,
        error: None,
        miss_resource: None,
        miss_ratio: None,
        trace: None,
        queue_ns: None,
        collect_ns: None,
        plan_ns: None,
        replan_ns: None,
        commit_ns: None,
        total_ns: None,
    }))
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean EOF before
/// the first byte (`Ok(false)`) from one mid-buffer (`Truncated`).
fn read_exact_or_eof<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut [u8],
    frame_len: Option<usize>,
) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && frame_len.is_none() {
                    return Ok(false);
                }
                return Err(WireError::Truncated {
                    expected: frame_len.unwrap_or(buf.len()),
                    got: frame_len.map_or(filled, |_| filled),
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame's payload text. `Ok(None)` is a clean EOF on a
/// frame boundary; all framing and UTF-8 trouble maps to an error.
fn read_payload<R: Read + ?Sized>(r: &mut R) -> Result<Option<String>, WireError> {
    let mut prefix = [0u8; 4];
    if !read_exact_or_eof(r, &mut prefix, None)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len });
    }
    let mut body = vec![0u8; len];
    read_exact_or_eof(r, &mut body, Some(len))?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|e| WireError::Json(format!("invalid UTF-8: {e}")))
}

/// Decodes the next frame from `r`. `Ok(None)` means the peer closed
/// the stream cleanly on a frame boundary; every malformed input maps
/// to an error, never a panic or an unbounded allocation.
pub fn read_frame<R: Read + ?Sized, T: Deserialize>(r: &mut R) -> Result<Option<T>, WireError> {
    match read_payload(r)? {
        None => Ok(None),
        Some(text) => serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| WireError::Json(e.to_string())),
    }
}

/// [`read_frame`] specialised to [`RequestFrame`], with a fast-path
/// scanner for the establish shape the load generator emits. Identical
/// observable behaviour to the generic path (a property test holds the
/// two to byte-for-byte agreement); the scanner just skips the
/// intermediate value tree on the ~100k-frames/s hot path.
pub fn read_request_frame<R: Read + ?Sized>(r: &mut R) -> Result<Option<RequestFrame>, WireError> {
    match read_payload(r)? {
        None => Ok(None),
        Some(text) => match fast_parse_establish(&text) {
            Some(frame) => Ok(Some(frame)),
            None => serde_json::from_str(&text)
                .map(Some)
                .map_err(|e| WireError::Json(e.to_string())),
        },
    }
}

/// [`read_frame`] specialised to [`ResponseFrame`], with a fast-path
/// scanner for the committed/degraded outcome shapes the server emits
/// (see [`read_request_frame`] for the contract).
pub fn read_response_frame<R: Read + ?Sized>(
    r: &mut R,
) -> Result<Option<ResponseFrame>, WireError> {
    match read_payload(r)? {
        None => Ok(None),
        Some(text) => match fast_parse_outcome(&text) {
            Some(frame) => Ok(Some(frame)),
            None => serde_json::from_str(&text)
                .map(Some)
                .map_err(|e| WireError::Json(e.to_string())),
        },
    }
}

/// One templated establish request: the server instantiates the session
/// from its own world (`service`/`domain` indices into the serve
/// world's roster), so clients never ship a full `SessionInstance`.
///
/// `Serialize` is manual: fields at their default (`service`/`domain`
/// 0, `scale` 1, absent options) are omitted from the wire form — the
/// decode side fills them back in, and the hot path (one establish
/// per load-generator request) shrinks to a ~20-byte payload.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct EstablishDef {
    /// Client-chosen correlation id, echoed on the outcome frame.
    pub id: u64,
    /// Service index in the server's world (0 on the bench world).
    #[serde(default)]
    pub service: usize,
    /// Client domain index (0 on the bench world).
    #[serde(default)]
    pub domain: usize,
    /// Demand scale ("fat" factor), default 1.
    #[serde(default = "default_scale")]
    pub scale: f64,
    /// Optional QoS floor (1-based rank).
    #[serde(default)]
    pub qos_min: Option<u32>,
    /// Optional admission deadline in server sim-time.
    #[serde(default)]
    pub deadline: Option<f64>,
    /// Planner override: `basic`, `tradeoff`, `random`, or `dag`
    /// (default `basic`).
    #[serde(default)]
    pub planner: Option<String>,
    /// Client-minted trace id: when present (and the server traces),
    /// the admission records a span tree under this id and the outcome
    /// frame echoes it with per-phase latency attribution.
    #[serde(default)]
    pub trace: Option<u64>,
}

fn default_scale() -> f64 {
    1.0
}

impl Serialize for EstablishDef {
    fn to_value(&self) -> Value {
        let mut fields = vec![("id".to_owned(), self.id.to_value())];
        if self.service != 0 {
            fields.push(("service".to_owned(), self.service.to_value()));
        }
        if self.domain != 0 {
            fields.push(("domain".to_owned(), self.domain.to_value()));
        }
        if self.scale != 1.0 {
            fields.push(("scale".to_owned(), self.scale.to_value()));
        }
        if let Some(q) = self.qos_min {
            fields.push(("qos_min".to_owned(), q.to_value()));
        }
        if let Some(d) = self.deadline {
            fields.push(("deadline".to_owned(), d.to_value()));
        }
        if let Some(p) = &self.planner {
            fields.push(("planner".to_owned(), p.to_value()));
        }
        if let Some(t) = self.trace {
            fields.push(("trace".to_owned(), t.to_value()));
        }
        Value::Object(fields)
    }
}

impl EstablishDef {
    /// A minimal establish for `id` on the bench world's one template.
    pub fn new(id: u64) -> Self {
        EstablishDef {
            id,
            service: 0,
            domain: 0,
            scale: 1.0,
            qos_min: None,
            deadline: None,
            planner: None,
            trace: None,
        }
    }
}

/// One advance-reservation request: either a *rigid* future-window
/// booking (a fixed per-resource demand held over `[from, to)`) or a
/// *malleable* bulk transfer (a volume to move over one resource
/// before a deadline — the server picks start, duration, and rate).
/// Exactly one of the two field groups must be present.
///
/// `Serialize` is manual: absent options and a default `preempt` are
/// omitted from the wire form, mirroring [`EstablishDef`].
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct AdvanceDef {
    /// Client-chosen correlation id, echoed on the outcome frame.
    pub id: u64,
    /// Rigid: per-resource demand as `[resource, amount]` pairs.
    #[serde(default)]
    pub demand: Option<Vec<(u64, f64)>>,
    /// Rigid: window start, in server sim-time.
    #[serde(default)]
    pub from: Option<f64>,
    /// Rigid: window end (exclusive), in server sim-time.
    #[serde(default)]
    pub to: Option<f64>,
    /// Malleable: the resource the volume moves over.
    #[serde(default)]
    pub resource: Option<u64>,
    /// Malleable: total volume to move (amount × time units).
    #[serde(default)]
    pub volume: Option<f64>,
    /// Malleable: completion deadline, in server sim-time.
    #[serde(default)]
    pub deadline: Option<f64>,
    /// Malleable: earliest admissible start (default: now).
    #[serde(default)]
    pub earliest: Option<f64>,
    /// Malleable: lowest useful transfer rate (default 0).
    #[serde(default)]
    pub min_rate: Option<f64>,
    /// Malleable: transfer-rate cap (default unbounded).
    #[serde(default)]
    pub max_rate: Option<f64>,
    /// Rigid: allow preempting malleable sessions to make room.
    #[serde(default)]
    pub preempt: bool,
    /// Start-vs-contention policy: `ignore` (default) or `tradeoff`.
    #[serde(default)]
    pub policy: Option<String>,
    /// Client-minted trace id: asks the server to assemble this
    /// booking's span tree into its flight ring (mirrors
    /// [`EstablishDef::trace`]).
    #[serde(default)]
    pub trace: Option<u64>,
}

impl AdvanceDef {
    /// A rigid window booking of `demand` over `[from, to)`.
    pub fn rigid(id: u64, demand: Vec<(u64, f64)>, from: f64, to: f64) -> Self {
        AdvanceDef {
            id,
            demand: Some(demand),
            from: Some(from),
            to: Some(to),
            resource: None,
            volume: None,
            deadline: None,
            earliest: None,
            min_rate: None,
            max_rate: None,
            preempt: false,
            policy: None,
            trace: None,
        }
    }

    /// A malleable transfer of `volume` over `resource` by `deadline`.
    pub fn malleable(id: u64, resource: u64, volume: f64, deadline: f64) -> Self {
        AdvanceDef {
            id,
            demand: None,
            from: None,
            to: None,
            resource: Some(resource),
            volume: Some(volume),
            deadline: Some(deadline),
            earliest: None,
            min_rate: None,
            max_rate: None,
            preempt: false,
            policy: None,
            trace: None,
        }
    }
}

impl Serialize for AdvanceDef {
    fn to_value(&self) -> Value {
        let mut fields = vec![("id".to_owned(), self.id.to_value())];
        if let Some(d) = &self.demand {
            fields.push(("demand".to_owned(), d.to_value()));
        }
        if let Some(f) = self.from {
            fields.push(("from".to_owned(), f.to_value()));
        }
        if let Some(t) = self.to {
            fields.push(("to".to_owned(), t.to_value()));
        }
        if let Some(r) = self.resource {
            fields.push(("resource".to_owned(), r.to_value()));
        }
        if let Some(v) = self.volume {
            fields.push(("volume".to_owned(), v.to_value()));
        }
        if let Some(d) = self.deadline {
            fields.push(("deadline".to_owned(), d.to_value()));
        }
        if let Some(e) = self.earliest {
            fields.push(("earliest".to_owned(), e.to_value()));
        }
        if let Some(r) = self.min_rate {
            fields.push(("min_rate".to_owned(), r.to_value()));
        }
        if let Some(r) = self.max_rate {
            fields.push(("max_rate".to_owned(), r.to_value()));
        }
        if self.preempt {
            fields.push(("preempt".to_owned(), true.to_value()));
        }
        if let Some(p) = &self.policy {
            fields.push(("policy".to_owned(), p.to_value()));
        }
        if let Some(t) = self.trace {
            fields.push(("trace".to_owned(), t.to_value()));
        }
        Value::Object(fields)
    }
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestFrame {
    /// Admit one session; the server may coalesce consecutive
    /// establishes from any connection into one admission round.
    Establish(EstablishDef),
    /// Admit this exact request list as **one** admission round, at an
    /// explicit sim-time if given — the deterministic-round verb the
    /// equivalence tests drive.
    Batch {
        /// Explicit round sim-time (defaults to the server's round
        /// counter).
        now: Option<f64>,
        /// The round's requests, in arrival order.
        requests: Vec<EstablishDef>,
    },
    /// Book an advance reservation (rigid window or malleable
    /// transfer) on the server's reservation timelines.
    Advance(AdvanceDef),
    /// Cancel an advance session's bookings ahead of its window.
    AdvanceCancel {
        /// Correlation id.
        id: u64,
        /// The session id a prior advance-outcome frame reported.
        session: u64,
    },
    /// Release an admitted session's reservations.
    Terminate {
        /// Correlation id.
        id: u64,
        /// The session id a prior outcome frame reported.
        session: u64,
    },
    /// Try to upgrade an admitted session to a better plan (rank up, or
    /// equal rank at lower Ψ); a no-op answer if nothing better exists.
    Renegotiate {
        /// Correlation id.
        id: u64,
        /// The session id a prior outcome frame reported.
        session: u64,
    },
    /// Ask for a server snapshot: rounds, live sessions, capacity.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Dump the flight recorder: the server's ring of recently
    /// completed request span trees, most recent last.
    Flight {
        /// Correlation id.
        id: u64,
    },
    /// Ask for the current SLO report: per-target compliance and
    /// multi-window burn rates.
    Slo {
        /// Correlation id.
        id: u64,
    },
    /// Liveness probe, answered directly by the connection's reader.
    Ping {
        /// Correlation id.
        id: u64,
    },
    /// Drain everything queued, answer [`ResponseFrame::Bye`], and stop
    /// the server.
    Shutdown,
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseFrame {
    /// The structured result of one establish.
    Outcome(OutcomeFrame),
    /// The structured result of one advance request.
    Advance(AdvanceOutcomeFrame),
    /// An advance cancel completed (possibly releasing nothing).
    AdvanceCancelled {
        /// Correlation id of the cancel request.
        id: u64,
        /// The cancelled advance session id.
        session: u64,
        /// Total volume released — Σ amount × duration over the
        /// removed bookings.
        released_volume: f64,
        /// How many bookings were removed.
        bookings_removed: u64,
    },
    /// A terminate completed, releasing `released` capacity units.
    Terminated {
        /// Correlation id of the terminate request.
        id: u64,
        /// The released session id.
        session: u64,
        /// Total capacity units released across all resources.
        released: f64,
    },
    /// A renegotiate completed (upgraded or kept as-is).
    Renegotiated {
        /// Correlation id of the renegotiate request.
        id: u64,
        /// The session id (unchanged by renegotiation).
        session: u64,
        /// The session's current end-to-end rank.
        rank: u32,
        /// The session's current bottleneck Ψ.
        psi: f64,
        /// Whether the session was swapped to a better plan.
        upgraded: bool,
    },
    /// The server snapshot a [`RequestFrame::Stats`] asked for.
    Stats(StatsFrame),
    /// The flight-recorder dump a [`RequestFrame::Flight`] asked for.
    Flight(FlightFrame),
    /// The SLO evaluation a [`RequestFrame::Slo`] asked for.
    Slo(SloFrame),
    /// Answer to a ping.
    Pong {
        /// Correlation id of the ping.
        id: u64,
    },
    /// The request could not be honoured (unknown session, invalid
    /// indices, malformed frame, …). The connection stays usable unless
    /// the error was a framing error.
    Error {
        /// Correlation id of the offending request, when decodable.
        id: Option<u64>,
        /// Human-readable explanation.
        message: String,
    },
    /// The server acknowledged a shutdown after draining its queue.
    Bye {
        /// Request frames the server answered before stopping — proof
        /// to a shutting-down client that nothing it pipelined ahead
        /// of the shutdown was dropped.
        drained: u64,
    },
}

/// The wire form of one [`EstablishOutcome`], flattened to scalars.
///
/// `Serialize` is manual: `None` fields are omitted rather than sent
/// as `null` — a committed outcome (the overwhelmingly common frame
/// under load) carries five fields instead of ten.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct OutcomeFrame {
    /// Correlation id of the establish request.
    pub id: u64,
    /// `committed`, `degraded`, or `rejected`.
    pub status: String,
    /// The admitted session id (absent when rejected).
    #[serde(default)]
    pub session: Option<u64>,
    /// Committed end-to-end rank (absent when rejected).
    #[serde(default)]
    pub rank: Option<u32>,
    /// Committed bottleneck Ψ (absent when rejected).
    #[serde(default)]
    pub psi: Option<f64>,
    /// First-planned rank (degraded outcomes only).
    #[serde(default)]
    pub from: Option<u32>,
    /// Committed rank after degradation (degraded outcomes only).
    #[serde(default)]
    pub to: Option<u32>,
    /// The rejection error, rendered (rejected outcomes only).
    #[serde(default)]
    pub error: Option<String>,
    /// The nearest-miss blocking resource id (some rejections).
    #[serde(default)]
    pub miss_resource: Option<u64>,
    /// The nearest-miss `req/avail` overshoot ratio (some rejections).
    #[serde(default)]
    pub miss_ratio: Option<f64>,
    /// Echo of the request's trace id (traced establishes only; the
    /// remaining `*_ns` attribution fields ride along with it).
    #[serde(default)]
    pub trace: Option<u64>,
    /// Server-side queue residual: socket read, gather-window wait,
    /// scheduling — everything before the admission round touched the
    /// request.
    #[serde(default)]
    pub queue_ns: Option<u64>,
    /// Phase-1 availability collection time.
    #[serde(default)]
    pub collect_ns: Option<u64>,
    /// Pass-II planning time (including replans' nested plans).
    #[serde(default)]
    pub plan_ns: Option<u64>,
    /// Conflict-replan time (zero when the commit was clean).
    #[serde(default)]
    pub replan_ns: Option<u64>,
    /// Two-phase reserve/commit dispatch time.
    #[serde(default)]
    pub commit_ns: Option<u64>,
    /// End-to-end server-side latency, ingress to outcome. The root
    /// span durations (`queue/collect/plan/replan/commit`) sum to
    /// exactly this.
    #[serde(default)]
    pub total_ns: Option<u64>,
}

impl Serialize for OutcomeFrame {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".to_owned(), self.id.to_value()),
            ("status".to_owned(), self.status.to_value()),
        ];
        if let Some(s) = self.session {
            fields.push(("session".to_owned(), s.to_value()));
        }
        if let Some(r) = self.rank {
            fields.push(("rank".to_owned(), r.to_value()));
        }
        if let Some(p) = self.psi {
            fields.push(("psi".to_owned(), p.to_value()));
        }
        if let Some(f) = self.from {
            fields.push(("from".to_owned(), f.to_value()));
        }
        if let Some(t) = self.to {
            fields.push(("to".to_owned(), t.to_value()));
        }
        if let Some(e) = &self.error {
            fields.push(("error".to_owned(), e.to_value()));
        }
        if let Some(m) = self.miss_resource {
            fields.push(("miss_resource".to_owned(), m.to_value()));
        }
        if let Some(m) = self.miss_ratio {
            fields.push(("miss_ratio".to_owned(), m.to_value()));
        }
        if let Some(t) = self.trace {
            fields.push(("trace".to_owned(), t.to_value()));
        }
        if let Some(n) = self.queue_ns {
            fields.push(("queue_ns".to_owned(), n.to_value()));
        }
        if let Some(n) = self.collect_ns {
            fields.push(("collect_ns".to_owned(), n.to_value()));
        }
        if let Some(n) = self.plan_ns {
            fields.push(("plan_ns".to_owned(), n.to_value()));
        }
        if let Some(n) = self.replan_ns {
            fields.push(("replan_ns".to_owned(), n.to_value()));
        }
        if let Some(n) = self.commit_ns {
            fields.push(("commit_ns".to_owned(), n.to_value()));
        }
        if let Some(n) = self.total_ns {
            fields.push(("total_ns".to_owned(), n.to_value()));
        }
        Value::Object(fields)
    }
}

impl OutcomeFrame {
    /// Flattens an in-process [`EstablishOutcome`] to its wire form —
    /// the one conversion both the server and the over-the-wire
    /// equivalence tests use, so frame equality *is* outcome equality.
    pub fn from_outcome(id: u64, outcome: &EstablishOutcome) -> Self {
        let mut frame = OutcomeFrame {
            id,
            status: String::new(),
            session: None,
            rank: None,
            psi: None,
            from: None,
            to: None,
            error: None,
            miss_resource: None,
            miss_ratio: None,
            trace: None,
            queue_ns: None,
            collect_ns: None,
            plan_ns: None,
            replan_ns: None,
            commit_ns: None,
            total_ns: None,
        };
        match outcome {
            EstablishOutcome::Committed(est) => {
                frame.status = "committed".into();
                frame.session = Some(est.id.0);
                frame.rank = Some(est.plan.rank);
                frame.psi = Some(est.plan.psi);
            }
            EstablishOutcome::Degraded { session, from, to } => {
                frame.status = "degraded".into();
                frame.session = Some(session.id.0);
                frame.rank = Some(session.plan.rank);
                frame.psi = Some(session.plan.psi);
                frame.from = Some(*from);
                frame.to = Some(*to);
            }
            EstablishOutcome::Rejected {
                error,
                nearest_miss,
            } => {
                frame.status = "rejected".into();
                frame.error = Some(error.to_string());
                if let Some(miss) = nearest_miss {
                    frame.miss_resource = Some(u64::from(miss.resource.0));
                    frame.miss_ratio = Some(miss.ratio);
                }
            }
        }
        frame
    }

    /// `true` for `committed` and `degraded` outcomes.
    pub fn is_admitted(&self) -> bool {
        self.status != "rejected"
    }

    /// `true` when the frame carries any per-request latency
    /// attribution fields — such frames take the generic encoder so
    /// the untraced hot path stays free of the extra branches.
    pub fn has_attribution(&self) -> bool {
        self.trace.is_some()
            || self.queue_ns.is_some()
            || self.collect_ns.is_some()
            || self.plan_ns.is_some()
            || self.replan_ns.is_some()
            || self.commit_ns.is_some()
            || self.total_ns.is_some()
    }

    /// Copies the span-tree attribution of a finished [`RequestTrace`](qosr_obs::RequestTrace)
    /// into the frame: one nanosecond bucket per phase, plus the total
    /// they sum to exactly.
    pub fn attach_trace(&mut self, trace: &qosr_obs::RequestTrace) {
        self.trace = Some(trace.trace);
        self.queue_ns = Some(trace.span_ns(qosr_obs::SpanKind::Queue));
        self.collect_ns = Some(trace.span_ns(qosr_obs::SpanKind::Collect));
        self.plan_ns = Some(trace.span_ns(qosr_obs::SpanKind::Plan));
        self.replan_ns = Some(trace.span_ns(qosr_obs::SpanKind::Replan));
        self.commit_ns = Some(trace.span_ns(qosr_obs::SpanKind::Commit));
        self.total_ns = Some(trace.total_ns);
    }
}

/// The wire form of one [`AdvanceOutcome`], flattened to scalars.
///
/// `Serialize` is manual: `None` fields are omitted rather than sent
/// as `null`, mirroring [`OutcomeFrame`].
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct AdvanceOutcomeFrame {
    /// Correlation id of the advance request.
    pub id: u64,
    /// `booked`, `repacked`, or `rejected`.
    pub status: String,
    /// The advance session id (absent when rejected) — the handle a
    /// later `advance_cancel` frame names.
    #[serde(default)]
    pub session: Option<u64>,
    /// When the booked plan starts (absent when rejected).
    #[serde(default)]
    pub start: Option<f64>,
    /// When the booked plan completes (absent when rejected).
    #[serde(default)]
    pub end: Option<f64>,
    /// Total volume booked (absent when rejected).
    #[serde(default)]
    pub volume: Option<f64>,
    /// The plan's contention share ψ (absent when rejected).
    #[serde(default)]
    pub psi: Option<f64>,
    /// Constant-rate pieces in the plan (absent when rejected).
    #[serde(default)]
    pub segments: Option<u64>,
    /// Malleable sessions moved to make room (repacked outcomes only).
    #[serde(default)]
    pub moved: Option<Vec<u64>>,
    /// The rejection error, rendered (rejected outcomes only).
    #[serde(default)]
    pub error: Option<String>,
    /// For rejected malleable requests: the earliest deadline under
    /// which the same transfer would fit today, when one exists.
    #[serde(default)]
    pub nearest_deadline: Option<f64>,
}

impl Serialize for AdvanceOutcomeFrame {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".to_owned(), self.id.to_value()),
            ("status".to_owned(), self.status.to_value()),
        ];
        if let Some(s) = self.session {
            fields.push(("session".to_owned(), s.to_value()));
        }
        if let Some(s) = self.start {
            fields.push(("start".to_owned(), s.to_value()));
        }
        if let Some(e) = self.end {
            fields.push(("end".to_owned(), e.to_value()));
        }
        if let Some(v) = self.volume {
            fields.push(("volume".to_owned(), v.to_value()));
        }
        if let Some(p) = self.psi {
            fields.push(("psi".to_owned(), p.to_value()));
        }
        if let Some(s) = self.segments {
            fields.push(("segments".to_owned(), s.to_value()));
        }
        if let Some(m) = &self.moved {
            fields.push(("moved".to_owned(), m.to_value()));
        }
        if let Some(e) = &self.error {
            fields.push(("error".to_owned(), e.to_value()));
        }
        if let Some(n) = self.nearest_deadline {
            fields.push(("nearest_deadline".to_owned(), n.to_value()));
        }
        Value::Object(fields)
    }
}

impl AdvanceOutcomeFrame {
    /// Flattens an in-process [`AdvanceOutcome`] to its wire form —
    /// the one conversion the server and its tests share, so frame
    /// equality *is* outcome equality. `session` is the id the server
    /// booked the request under (ignored for rejections).
    pub fn from_outcome(id: u64, session: SessionId, outcome: &AdvanceOutcome) -> Self {
        let mut frame = AdvanceOutcomeFrame {
            id,
            status: String::new(),
            session: None,
            start: None,
            end: None,
            volume: None,
            psi: None,
            segments: None,
            moved: None,
            error: None,
            nearest_deadline: None,
        };
        let mut fill = |profile: &qosr_broker::AdvanceProfile| {
            frame.session = Some(session.0);
            frame.start = Some(profile.start.value());
            frame.end = Some(profile.end.value());
            frame.volume = Some(profile.volume);
            frame.psi = Some(profile.psi);
            frame.segments = Some(profile.segments.len() as u64);
        };
        match outcome {
            AdvanceOutcome::Booked { profile } => {
                fill(profile);
                frame.status = "booked".into();
            }
            AdvanceOutcome::Repacked { profile, moved } => {
                fill(profile);
                frame.status = "repacked".into();
                frame.moved = Some(moved.iter().map(|s| s.0).collect());
            }
            AdvanceOutcome::Rejected {
                error,
                nearest_feasible_deadline,
            } => {
                frame.status = "rejected".into();
                frame.error = Some(error.to_string());
                frame.nearest_deadline = nearest_feasible_deadline.map(|t| t.value());
            }
        }
        frame
    }

    /// `true` for `booked` and `repacked` outcomes.
    pub fn is_booked(&self) -> bool {
        self.status != "rejected"
    }
}

/// One server snapshot: admission progress and capacity accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsFrame {
    /// Correlation id of the stats request.
    pub id: u64,
    /// Admission rounds run so far.
    pub rounds: u64,
    /// Request frames decoded so far (all verbs).
    pub requests: u64,
    /// Establish requests that committed (possibly degraded).
    pub establishments: u64,
    /// Sessions terminated so far.
    pub releases: u64,
    /// Sessions currently holding reservations.
    pub live_sessions: u64,
    /// Connections currently open.
    pub connections: u64,
    /// Sum of available capacity across every broker.
    pub total_available: f64,
    /// Sum of configured capacity across every broker.
    pub total_capacity: f64,
    /// `true` if any broker's available capacity is negative — must
    /// never happen; the concurrent-client oracle asserts on it.
    pub over_committed: bool,
}

/// A flight-recorder dump: the span trees of the most recent requests,
/// oldest first — the server-side answer to "what just happened".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightFrame {
    /// Correlation id of the flight request.
    pub id: u64,
    /// The recorded traces, oldest first. Each re-encodes to the same
    /// canonical JSONL line the server would write to a dump file.
    pub traces: Vec<qosr_obs::RequestTrace>,
}

/// The server's current SLO evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloFrame {
    /// Correlation id of the slo request.
    pub id: u64,
    /// Per-target observed values and burn rates over both windows.
    pub report: qosr_obs::SloReport,
}

/// Wraps `body` in the externally-tagged single-key object form.
fn tagged(key: &str, body: Value) -> Value {
    Value::Object(vec![(key.to_owned(), body)])
}

/// Splits a tagged value back into `(kind, body)`.
fn untag<'a>(v: &'a Value, what: &str, known: &str) -> Result<(&'a str, &'a Value), DeError> {
    let fields = v
        .as_object()
        .ok_or_else(|| DeError::custom(format!("expected a {what} object, got {}", v.kind())))?;
    if fields.len() != 1 {
        return Err(DeError::custom(format!(
            "a {what} must be a single-key object naming its kind (one of {known}), got {} keys",
            fields.len()
        )));
    }
    let (key, body) = &fields[0];
    Ok((key.as_str(), body))
}

const REQUEST_KINDS: &str = "establish, batch, advance, advance_cancel, terminate, renegotiate, \
     stats, flight, slo, ping, shutdown";
const RESPONSE_KINDS: &str = "outcome, advance, advance_cancelled, terminated, renegotiated, \
     stats, flight, slo, pong, error, bye";

#[derive(Serialize, Deserialize)]
struct BatchDef {
    #[serde(default)]
    now: Option<f64>,
    requests: Vec<EstablishDef>,
}

#[derive(Serialize, Deserialize)]
struct SessionRef {
    id: u64,
    session: u64,
}

#[derive(Serialize, Deserialize)]
struct IdRef {
    id: u64,
}

impl Serialize for RequestFrame {
    fn to_value(&self) -> Value {
        match self {
            RequestFrame::Establish(def) => tagged("establish", def.to_value()),
            RequestFrame::Batch { now, requests } => tagged(
                "batch",
                BatchDef {
                    now: *now,
                    requests: requests.clone(),
                }
                .to_value(),
            ),
            RequestFrame::Advance(def) => tagged("advance", def.to_value()),
            RequestFrame::AdvanceCancel { id, session } => tagged(
                "advance_cancel",
                SessionRef {
                    id: *id,
                    session: *session,
                }
                .to_value(),
            ),
            RequestFrame::Terminate { id, session } => tagged(
                "terminate",
                SessionRef {
                    id: *id,
                    session: *session,
                }
                .to_value(),
            ),
            RequestFrame::Renegotiate { id, session } => tagged(
                "renegotiate",
                SessionRef {
                    id: *id,
                    session: *session,
                }
                .to_value(),
            ),
            RequestFrame::Stats { id } => tagged("stats", IdRef { id: *id }.to_value()),
            RequestFrame::Flight { id } => tagged("flight", IdRef { id: *id }.to_value()),
            RequestFrame::Slo { id } => tagged("slo", IdRef { id: *id }.to_value()),
            RequestFrame::Ping { id } => tagged("ping", IdRef { id: *id }.to_value()),
            RequestFrame::Shutdown => tagged("shutdown", Value::Object(Vec::new())),
        }
    }
}

impl Deserialize for RequestFrame {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (key, body) = untag(v, "request frame", REQUEST_KINDS)?;
        let in_key = |e: DeError| e.in_field(key);
        match key {
            "establish" => Ok(RequestFrame::Establish(
                EstablishDef::from_value(body).map_err(in_key)?,
            )),
            "batch" => {
                let d = BatchDef::from_value(body).map_err(in_key)?;
                Ok(RequestFrame::Batch {
                    now: d.now,
                    requests: d.requests,
                })
            }
            "advance" => Ok(RequestFrame::Advance(
                AdvanceDef::from_value(body).map_err(in_key)?,
            )),
            "advance_cancel" => {
                let d = SessionRef::from_value(body).map_err(in_key)?;
                Ok(RequestFrame::AdvanceCancel {
                    id: d.id,
                    session: d.session,
                })
            }
            "terminate" => {
                let d = SessionRef::from_value(body).map_err(in_key)?;
                Ok(RequestFrame::Terminate {
                    id: d.id,
                    session: d.session,
                })
            }
            "renegotiate" => {
                let d = SessionRef::from_value(body).map_err(in_key)?;
                Ok(RequestFrame::Renegotiate {
                    id: d.id,
                    session: d.session,
                })
            }
            "stats" => {
                let d = IdRef::from_value(body).map_err(in_key)?;
                Ok(RequestFrame::Stats { id: d.id })
            }
            "flight" => {
                let d = IdRef::from_value(body).map_err(in_key)?;
                Ok(RequestFrame::Flight { id: d.id })
            }
            "slo" => {
                let d = IdRef::from_value(body).map_err(in_key)?;
                Ok(RequestFrame::Slo { id: d.id })
            }
            "ping" => {
                let d = IdRef::from_value(body).map_err(in_key)?;
                Ok(RequestFrame::Ping { id: d.id })
            }
            "shutdown" => Ok(RequestFrame::Shutdown),
            other => Err(DeError::custom(format!(
                "unknown request frame `{other}` (expected one of {REQUEST_KINDS})"
            ))),
        }
    }
}

#[derive(Serialize, Deserialize)]
struct AdvanceCancelledDef {
    id: u64,
    session: u64,
    released_volume: f64,
    bookings_removed: u64,
}

#[derive(Serialize, Deserialize)]
struct TerminatedDef {
    id: u64,
    session: u64,
    released: f64,
}

#[derive(Serialize, Deserialize)]
struct RenegotiatedDef {
    id: u64,
    session: u64,
    rank: u32,
    psi: f64,
    upgraded: bool,
}

#[derive(Serialize, Deserialize)]
struct ErrorDef {
    #[serde(default)]
    id: Option<u64>,
    message: String,
}

#[derive(Serialize, Deserialize)]
struct ByeDef {
    drained: u64,
}

impl Serialize for ResponseFrame {
    fn to_value(&self) -> Value {
        match self {
            ResponseFrame::Outcome(frame) => tagged("outcome", frame.to_value()),
            ResponseFrame::Advance(frame) => tagged("advance", frame.to_value()),
            ResponseFrame::AdvanceCancelled {
                id,
                session,
                released_volume,
                bookings_removed,
            } => tagged(
                "advance_cancelled",
                AdvanceCancelledDef {
                    id: *id,
                    session: *session,
                    released_volume: *released_volume,
                    bookings_removed: *bookings_removed,
                }
                .to_value(),
            ),
            ResponseFrame::Terminated {
                id,
                session,
                released,
            } => tagged(
                "terminated",
                TerminatedDef {
                    id: *id,
                    session: *session,
                    released: *released,
                }
                .to_value(),
            ),
            ResponseFrame::Renegotiated {
                id,
                session,
                rank,
                psi,
                upgraded,
            } => tagged(
                "renegotiated",
                RenegotiatedDef {
                    id: *id,
                    session: *session,
                    rank: *rank,
                    psi: *psi,
                    upgraded: *upgraded,
                }
                .to_value(),
            ),
            ResponseFrame::Stats(frame) => tagged("stats", frame.to_value()),
            ResponseFrame::Flight(frame) => tagged("flight", frame.to_value()),
            ResponseFrame::Slo(frame) => tagged("slo", frame.to_value()),
            ResponseFrame::Pong { id } => tagged("pong", IdRef { id: *id }.to_value()),
            ResponseFrame::Error { id, message } => tagged(
                "error",
                ErrorDef {
                    id: *id,
                    message: message.clone(),
                }
                .to_value(),
            ),
            ResponseFrame::Bye { drained } => {
                tagged("bye", ByeDef { drained: *drained }.to_value())
            }
        }
    }
}

impl Deserialize for ResponseFrame {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (key, body) = untag(v, "response frame", RESPONSE_KINDS)?;
        let in_key = |e: DeError| e.in_field(key);
        match key {
            "outcome" => Ok(ResponseFrame::Outcome(
                OutcomeFrame::from_value(body).map_err(in_key)?,
            )),
            "advance" => Ok(ResponseFrame::Advance(
                AdvanceOutcomeFrame::from_value(body).map_err(in_key)?,
            )),
            "advance_cancelled" => {
                let d = AdvanceCancelledDef::from_value(body).map_err(in_key)?;
                Ok(ResponseFrame::AdvanceCancelled {
                    id: d.id,
                    session: d.session,
                    released_volume: d.released_volume,
                    bookings_removed: d.bookings_removed,
                })
            }
            "terminated" => {
                let d = TerminatedDef::from_value(body).map_err(in_key)?;
                Ok(ResponseFrame::Terminated {
                    id: d.id,
                    session: d.session,
                    released: d.released,
                })
            }
            "renegotiated" => {
                let d = RenegotiatedDef::from_value(body).map_err(in_key)?;
                Ok(ResponseFrame::Renegotiated {
                    id: d.id,
                    session: d.session,
                    rank: d.rank,
                    psi: d.psi,
                    upgraded: d.upgraded,
                })
            }
            "stats" => Ok(ResponseFrame::Stats(
                StatsFrame::from_value(body).map_err(in_key)?,
            )),
            "flight" => Ok(ResponseFrame::Flight(
                FlightFrame::from_value(body).map_err(in_key)?,
            )),
            "slo" => Ok(ResponseFrame::Slo(
                SloFrame::from_value(body).map_err(in_key)?,
            )),
            "pong" => {
                let d = IdRef::from_value(body).map_err(in_key)?;
                Ok(ResponseFrame::Pong { id: d.id })
            }
            "error" => {
                let d = ErrorDef::from_value(body).map_err(in_key)?;
                Ok(ResponseFrame::Error {
                    id: d.id,
                    message: d.message,
                })
            }
            "bye" => {
                let d = ByeDef::from_value(body).map_err(in_key)?;
                Ok(ResponseFrame::Bye { drained: d.drained })
            }
            other => Err(DeError::custom(format!(
                "unknown response frame `{other}` (expected one of {RESPONSE_KINDS})"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(frame: RequestFrame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut cursor = Cursor::new(buf);
        let back: RequestFrame = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, frame);
        assert!(
            read_frame::<_, RequestFrame>(&mut cursor)
                .unwrap()
                .is_none(),
            "clean EOF after the frame"
        );
    }

    #[test]
    fn request_frames_roundtrip() {
        roundtrip_request(RequestFrame::Establish(EstablishDef {
            id: 7,
            service: 2,
            domain: 5,
            scale: 1.5,
            qos_min: Some(3),
            deadline: Some(12.5),
            planner: Some("tradeoff".into()),
            trace: Some(91),
        }));
        roundtrip_request(RequestFrame::Batch {
            now: Some(4.0),
            requests: vec![EstablishDef::new(1), EstablishDef::new(2)],
        });
        roundtrip_request(RequestFrame::Advance(AdvanceDef::rigid(
            10,
            vec![(0, 25.0), (3, 4.5)],
            5.0,
            9.0,
        )));
        let mut malleable = AdvanceDef::malleable(11, 2, 500.0, 40.0);
        malleable.earliest = Some(8.0);
        malleable.min_rate = Some(1.0);
        malleable.max_rate = Some(25.0);
        malleable.policy = Some("tradeoff".into());
        malleable.trace = Some(17);
        roundtrip_request(RequestFrame::Advance(malleable));
        let mut preempting = AdvanceDef::rigid(12, vec![(1, 10.0)], 0.0, 2.0);
        preempting.preempt = true;
        roundtrip_request(RequestFrame::Advance(preempting));
        roundtrip_request(RequestFrame::AdvanceCancel { id: 13, session: 4 });
        roundtrip_request(RequestFrame::Terminate { id: 3, session: 9 });
        roundtrip_request(RequestFrame::Renegotiate { id: 4, session: 9 });
        roundtrip_request(RequestFrame::Stats { id: 5 });
        roundtrip_request(RequestFrame::Flight { id: 7 });
        roundtrip_request(RequestFrame::Slo { id: 8 });
        roundtrip_request(RequestFrame::Ping { id: 6 });
        roundtrip_request(RequestFrame::Shutdown);
    }

    fn roundtrip_response(frame: ResponseFrame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut cursor = Cursor::new(buf);
        let back: ResponseFrame = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn advance_response_frames_roundtrip() {
        roundtrip_response(ResponseFrame::Advance(AdvanceOutcomeFrame {
            id: 1,
            status: "repacked".into(),
            session: Some(7),
            start: Some(3.0),
            end: Some(9.5),
            volume: Some(130.0),
            psi: Some(0.4),
            segments: Some(2),
            moved: Some(vec![3, 5]),
            error: None,
            nearest_deadline: None,
        }));
        roundtrip_response(ResponseFrame::Advance(AdvanceOutcomeFrame {
            id: 2,
            status: "rejected".into(),
            session: None,
            start: None,
            end: None,
            volume: None,
            psi: None,
            segments: None,
            moved: None,
            error: Some("insufficient capacity".into()),
            nearest_deadline: Some(62.5),
        }));
        roundtrip_response(ResponseFrame::AdvanceCancelled {
            id: 3,
            session: 7,
            released_volume: 130.0,
            bookings_removed: 2,
        });
    }

    #[test]
    fn advance_outcome_frames_flatten_like_their_outcomes() {
        use qosr_broker::{AdvanceRegistry, AdvanceRequest, SimTime, TimelineBroker};
        use qosr_model::{ResourceId, ResourceVector};
        use std::sync::Arc;

        let rid = ResourceId(0);
        let mut registry = AdvanceRegistry::new();
        registry.register(Arc::new(TimelineBroker::new(rid, 10.0)));

        let transfer = AdvanceRequest::malleable(SessionId(1), rid, 40.0, SimTime::new(8.0));
        let frame = AdvanceOutcomeFrame::from_outcome(
            5,
            SessionId(1),
            &registry.book(&transfer, SimTime::ZERO),
        );
        assert!(frame.is_booked());
        assert_eq!(frame.status, "booked");
        assert_eq!(frame.session, Some(1));
        assert_eq!(frame.volume, Some(40.0));
        assert_eq!(frame.segments, Some(1));

        let demand = ResourceVector::from_pairs([(rid, 10.0)]).expect("demand");
        let rigid = AdvanceRequest::rigid(SessionId(2), demand, SimTime::ZERO, SimTime::new(4.0))
            .allow_preempt(true);
        let frame = AdvanceOutcomeFrame::from_outcome(
            6,
            SessionId(2),
            &registry.book(&rigid, SimTime::ZERO),
        );
        assert_eq!(frame.status, "repacked");
        assert_eq!(frame.moved, Some(vec![1]));

        let hopeless = AdvanceRequest::malleable(SessionId(3), rid, 1.0e9, SimTime::new(9.0));
        let frame = AdvanceOutcomeFrame::from_outcome(
            7,
            SessionId(3),
            &registry.book(&hopeless, SimTime::ZERO),
        );
        assert!(!frame.is_booked());
        assert_eq!(frame.session, None);
        assert!(frame.error.is_some());
        assert!(frame.nearest_deadline.is_some());
    }

    #[test]
    fn establish_defaults_fill_in() {
        let text = r#"{"establish":{"id":1}}"#;
        let mut buf = (text.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(text.as_bytes());
        let frame: RequestFrame = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(frame, RequestFrame::Establish(EstablishDef::new(1)));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocating() {
        let mut buf = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"x");
        let err = read_frame::<_, RequestFrame>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::Oversized { len } if len == MAX_FRAME_LEN + 1));
    }

    #[test]
    fn truncated_payload_is_a_clean_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &RequestFrame::Ping { id: 1 }).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame::<_, RequestFrame>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn garbage_payload_is_a_clean_error() {
        let text = b"not json at all";
        let mut buf = (text.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(text);
        let err = read_frame::<_, RequestFrame>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::Json(_)));
    }
}
