//! End-to-end service throughput: `qosr load` against an in-process
//! `qosr serve` on a loopback socket — real frames, real TCP, real
//! per-connection threads, so the number is what a deployment would
//! see, not a function-call microbenchmark.
//!
//! The criterion display benches a single synchronous
//! establish/terminate round trip (the latency floor: two frames each
//! way through the reader → admission → writer pipeline). `--bench`
//! mode then runs the open-loop generator at `RATE` for `SECS` seconds
//! over `CONNECTIONS` connections on the bench world and writes the
//! resulting [`LoadReport`] into `BENCH_serve.json` at the workspace
//! root; `--quick` shortens the run for CI smoke and never rewrites the
//! committed artifact.

use criterion::Criterion;
use qosr_cli::load::{run_load, LoadOptions, LoadReport};
use qosr_cli::serve::{start, ServeOptions};
use qosr_cli::wire::{read_frame, write_frame, EstablishDef, RequestFrame, ResponseFrame};
use serde::Serialize;
use std::io::{BufReader, Write as _};
use std::net::TcpStream;

/// Offered aggregate load in `--bench` mode, requests per second.
/// Matched to the measured capacity of the reference host, not far
/// above it: an open-loop generator that offers well beyond capacity
/// spends the (single) core enqueueing requests that only age in the
/// backlog, and the sustained number *drops*.
const RATE: f64 = 110_000.0;
/// Measured window in `--bench` mode, seconds.
const SECS: f64 = 5.0;
/// Load-generator connections. One: this host is small, and every
/// extra connection adds four threads (client sender/reader, server
/// reader/writer) competing with the admission thread for the core.
const CONNECTIONS: usize = 1;
/// Admission pipeline workers. One: `BENCH_admission.json` shows the
/// pipeline's ns/session is lowest single-worker on this host, and the
/// serve path's bottleneck is frame codec work, not planning.
const WORKERS: usize = 1;

#[derive(Serialize)]
struct ServeBenchReport {
    bench: &'static str,
    unit: &'static str,
    world: &'static str,
    admission_workers: usize,
    max_batch: usize,
    load: LoadReport,
}

fn bench_serve(c: &mut Criterion) {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let quick = std::env::args().any(|a| a == "--quick");

    let opts = ServeOptions {
        workers: WORKERS,
        ..ServeOptions::default()
    };
    let server = start(&opts).expect("start serve on 127.0.0.1:0");
    let addr = server.addr();

    // Latency floor: one client, strict request/response lockstep.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut next_id = 0u64;
        c.bench_function("serve/roundtrip", |b| {
            b.iter(|| {
                next_id += 1;
                write_frame(
                    &mut writer,
                    &RequestFrame::Establish(EstablishDef::new(next_id)),
                )
                .expect("send establish");
                writer.flush().expect("flush");
                let outcome = loop {
                    match read_frame::<_, ResponseFrame>(&mut reader).expect("recv") {
                        Some(ResponseFrame::Outcome(o)) => break o,
                        Some(_) => continue,
                        None => panic!("server closed mid-bench"),
                    }
                };
                let session = outcome.session.expect("bench world always commits");
                write_frame(
                    &mut writer,
                    &RequestFrame::Terminate {
                        id: next_id,
                        session,
                    },
                )
                .expect("send terminate");
                writer.flush().expect("flush");
                loop {
                    match read_frame::<_, ResponseFrame>(&mut reader).expect("recv") {
                        Some(ResponseFrame::Terminated { .. }) => break,
                        Some(_) => continue,
                        None => panic!("server closed mid-bench"),
                    }
                }
            })
        });
    }

    if !bench_mode {
        server.shutdown();
        return; // smoke run (cargo test / CI): no JSON
    }

    let load = LoadOptions {
        addr: addr.to_string(),
        rate: RATE,
        duration: if quick { 0.5 } else { SECS },
        connections: CONNECTIONS,
        seed: 0x5eed,
        ..LoadOptions::default()
    };
    let report = run_load(&load).expect("load run");
    println!(
        "serve: {:.0} req/s sustained ({} of {} answered), p50 {} ns, p99 {} ns, p99.9 {} ns",
        report.requests_per_sec,
        report.responses,
        report.requests,
        report.p50_ns,
        report.p99_ns,
        report.p999_ns
    );
    server.shutdown();

    if quick {
        return; // smoke numbers are not representative; keep the artifact
    }
    let out = ServeBenchReport {
        bench: "serve",
        unit: "requests/s",
        world: "bench",
        admission_workers: opts.workers,
        max_batch: opts.max_batch,
        load: report,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let file = std::fs::File::create(path).expect("create BENCH_serve.json");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &out)
        .expect("serialize bench report");
    println!("-> {path}");
}

criterion::criterion_group!(benches, bench_serve);
criterion::criterion_main!(benches);
