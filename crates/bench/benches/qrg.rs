//! QRG construction benchmarks: building the QoS-Resource Graph for the
//! paper's type-A and type-B sessions (and a fat variant) under a full
//! availability snapshot.

use criterion::{criterion_group, criterion_main, Criterion};
use qosr_broker::LocalBrokerConfig;
use qosr_core::{AvailabilityView, Qrg, QrgOptions};
use qosr_sim::{services::ServiceOptions, PaperEnvironment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_qrg_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let env = PaperEnvironment::build(
        &mut rng,
        &ServiceOptions::default(),
        (1000.0, 4000.0),
        LocalBrokerConfig::default(),
    );
    let view = AvailabilityView::from_fn(env.space.ids(), |_| 2000.0);
    let opts = QrgOptions::default();

    let mut group = c.benchmark_group("qrg_build");
    // S1 (type A) requested from D3; S2 (type B) from D1.
    let session_a = env.session(0, 2, 1.0).unwrap();
    let session_b = env.session(1, 0, 1.0).unwrap();
    let session_fat = env.session(0, 2, 10.0).unwrap();

    group.bench_function("type_a", |b| {
        b.iter(|| Qrg::build(black_box(&session_a), black_box(&view), &opts))
    });
    group.bench_function("type_b", |b| {
        b.iter(|| Qrg::build(black_box(&session_b), black_box(&view), &opts))
    });
    group.bench_function("type_a_fat10", |b| {
        b.iter(|| Qrg::build(black_box(&session_fat), black_box(&view), &opts))
    });
    group.finish();
}

criterion_group!(benches, bench_qrg_build);
criterion_main!(benches);
