//! Telemetry overhead: the admission pipeline of `benches/admission.rs`
//! measured with the live telemetry layer in each of its states —
//! disabled (the default: every span is one relaxed atomic load),
//! phase timers enabled recording into histograms, and timers enabled
//! with a JSONL trace streaming to a discarding writer.
//!
//! The world, batch size, and round driver are identical to the
//! admission bench, so the disabled-mode figure is directly comparable
//! to `BENCH_admission.json`'s 4-worker pipeline number: disabled
//! telemetry must sit within noise of it (the zero-cost claim), and the
//! committed `BENCH_obs.json` records the ratio so CI can hold the
//! line. `--bench` writes the JSON; `--quick` shortens the measurement
//! window (CI smoke).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosr_bench::synth::synthetic_chain;
use qosr_broker::{
    AdmissionConfig, AdmissionQueue, BrokerRegistry, Coordinator, LocalBroker, LocalBrokerConfig,
    QosProxy, SessionRequest, SimTime,
};
use qosr_model::{ResourceKind, SessionInstance};
use qosr_obs::{JsonlSink, TraceSink};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Chain shape: components × levels per component (as admission.rs).
const CHAIN: (usize, usize) = (4, 4);
/// Requests per admission round (as admission.rs).
const BATCH: usize = 128;
/// Hosts (QoSProxies) the chain's resources are spread across.
const HOSTS: usize = 4;
/// Background resources per host (as admission.rs).
const EXTRA_PER_HOST: usize = 30;
/// Pipeline workers: the admission bench's acceptance configuration.
const WORKERS: usize = 4;
/// Disabled-mode throughput must stay within this factor of the
/// reference admission throughput. Tightened from 1.25 once the
/// request-tracing layer landed: the disabled path is a single relaxed
/// atomic load per request, so only machine noise separates the runs.
const NOISE_FACTOR: f64 = 1.10;

/// Builds the admission bench's world, optionally tracing to `sink`.
fn build_world(sink: Option<Arc<dyn TraceSink>>) -> (Coordinator, SessionInstance) {
    let (session, mut space) = synthetic_chain(CHAIN.0, CHAIN.1);
    let chain_rids: Vec<_> = space.ids().collect();
    let mut registries: Vec<BrokerRegistry> = (0..HOSTS).map(|_| BrokerRegistry::new()).collect();
    for (c, rid) in chain_rids.iter().enumerate() {
        registries[c % HOSTS].register(Arc::new(LocalBroker::new(
            *rid,
            1.0e12,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        )));
    }
    for (h, registry) in registries.iter_mut().enumerate() {
        for i in 0..EXTRA_PER_HOST {
            let rid = space.register(format!("bg{h}_{i}"), ResourceKind::Compute);
            registry.register(Arc::new(LocalBroker::new(
                rid,
                1.0e12,
                SimTime::ZERO,
                LocalBrokerConfig::default(),
            )));
        }
    }
    let proxies: Vec<_> = registries
        .into_iter()
        .enumerate()
        .map(|(h, reg)| Arc::new(QosProxy::new(format!("H{h}"), reg)))
        .collect();
    let coordinator = match sink {
        Some(sink) => Coordinator::with_trace(proxies, sink),
        None => Coordinator::new(proxies),
    };
    (coordinator, session)
}

fn requests(session: &SessionInstance) -> Vec<SessionRequest> {
    (0..BATCH)
        .map(|_| SessionRequest::new(session.clone()))
        .collect()
}

/// One admission round: admit the batch, assert full success, release.
fn pipeline_round(queue: &AdmissionQueue<'_>, reqs: &[SessionRequest], now: SimTime) {
    let world = queue.coordinator();
    let mut held: Vec<_> = queue
        .admit(reqs, now)
        .into_iter()
        .filter_map(|o| o.into_session())
        .collect();
    assert_eq!(held.len(), reqs.len(), "unbounded capacity must admit all");
    for est in held.drain(..) {
        world.terminate(&est, now);
    }
}

/// Measures `f` with doubling calibration up to `target`, returning
/// mean ns per call.
fn time_ns(mut f: impl FnMut(), target: Duration) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= u64::MAX / 4 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        let per_iter = (elapsed.as_nanos() / u128::from(iters)).max(1);
        iters = ((target.as_nanos() / per_iter) as u64).max(iters * 2);
    }
}

/// ns/session for one telemetry mode. `enable_timers` flips the phase
/// timers on the fresh coordinator; `traced` streams JSONL to a
/// discarding writer; `trace_requests` enables the request tracer and
/// marks every request with a trace id, so each admission builds and
/// records a full causal span tree into the flight ring.
fn measure_mode(enable_timers: bool, traced: bool, trace_requests: bool, target: Duration) -> f64 {
    let sink: Option<Arc<dyn TraceSink>> =
        traced.then(|| Arc::new(JsonlSink::new(std::io::sink())) as Arc<dyn TraceSink>);
    let (mut coordinator, session) = build_world(sink);
    coordinator.phase_timers().set_enabled(enable_timers);
    if trace_requests {
        let tracer = Arc::new(qosr_obs::Tracer::new(256));
        tracer.set_enabled(true);
        coordinator.set_tracer(tracer);
    }
    let coordinator = coordinator;
    let mut reqs = requests(&session);
    if trace_requests {
        reqs = reqs
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.traced(qosr_obs::TraceId(i as u64 + 1)))
            .collect();
    }
    let queue = AdmissionQueue::new(
        &coordinator,
        AdmissionConfig {
            workers: WORKERS,
            seed: 0x5eed,
            ..AdmissionConfig::default()
        },
    );
    let mut t = 0.0f64;
    let round_ns = time_ns(
        || {
            t += 1.0;
            pipeline_round(&queue, &reqs, black_box(SimTime::new(t)));
        },
        target,
    );
    round_ns / BATCH as f64
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    unit: &'static str,
    chain: String,
    batch: usize,
    workers: usize,
    disabled_ns_per_session: f64,
    enabled_ns_per_session: f64,
    traced_ns_per_session: f64,
    request_traced_ns_per_session: f64,
    /// `enabled / disabled` — the cost of live phase histograms.
    enabled_overhead_ratio: f64,
    /// `traced / disabled` — histograms plus JSONL serialization.
    traced_overhead_ratio: f64,
    /// `request_traced / disabled` — full causal span trees recorded
    /// into the flight ring for every request.
    request_traced_overhead_ratio: f64,
    /// The 4-worker pipeline figure from `BENCH_admission.json`, when
    /// present (the non-telemetry reference measured on that machine).
    reference_admission_ns_per_session: Option<f64>,
    /// `disabled / reference` — the zero-cost-when-disabled claim.
    disabled_vs_reference_ratio: Option<f64>,
    /// Whether `disabled` sits within the noise envelope of the
    /// reference (always true when no reference is committed).
    disabled_within_noise: bool,
}

/// The subset of `BENCH_admission.json` the overhead comparison needs.
#[derive(serde::Deserialize)]
struct ReferenceWorker {
    workers: usize,
    ns_per_session: f64,
}

#[derive(serde::Deserialize)]
struct ReferenceReport {
    pipeline: Vec<ReferenceWorker>,
}

/// The 4-worker `ns_per_session` from the committed admission report.
fn reference_throughput() -> Option<f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_admission.json");
    let text = std::fs::read_to_string(path).ok()?;
    let report: ReferenceReport = serde_json::from_str(&text).ok()?;
    report
        .pipeline
        .iter()
        .find(|r| r.workers == WORKERS)
        .map(|r| r.ns_per_session)
}

fn bench_obs_overhead(c: &mut Criterion) {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let quick = std::env::args().any(|a| a == "--quick");
    let target = if quick {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(400)
    };

    // Criterion display: per-round cost of each telemetry state.
    let mut group = c.benchmark_group("obs_overhead");
    for (label, enable, traced) in [
        ("disabled", false, false),
        ("timers", true, false),
        ("timers+jsonl", true, true),
    ] {
        let sink: Option<Arc<dyn TraceSink>> =
            traced.then(|| Arc::new(JsonlSink::new(std::io::sink())) as Arc<dyn TraceSink>);
        let (coordinator, session) = build_world(sink);
        coordinator.phase_timers().set_enabled(enable);
        let reqs = requests(&session);
        let queue = AdmissionQueue::new(
            &coordinator,
            AdmissionConfig {
                workers: WORKERS,
                seed: 0x5eed,
                ..AdmissionConfig::default()
            },
        );
        let mut t = 0.0f64;
        group.bench_function(BenchmarkId::new("pipeline", label), |b| {
            b.iter(|| {
                t += 1.0;
                pipeline_round(&queue, &reqs, black_box(SimTime::new(t)));
            })
        });
    }
    group.finish();

    if !bench_mode {
        return; // smoke run (cargo test / CI): no JSON
    }

    let disabled = measure_mode(false, false, false, target);
    let enabled = measure_mode(true, false, false, target);
    let traced = measure_mode(true, true, false, target);
    let request_traced = measure_mode(false, false, true, target);
    println!(
        "telemetry ns/session: disabled {disabled:.0}, timers {enabled:.0}, \
         timers+jsonl {traced:.0}, request-traced {request_traced:.0}"
    );

    let reference = reference_throughput();
    let ratio = reference.map(|r| disabled / r);
    let within = ratio.is_none_or(|r| r <= NOISE_FACTOR);
    if let (Some(reference), Some(ratio)) = (reference, ratio) {
        println!(
            "disabled vs BENCH_admission reference: {disabled:.0} / {reference:.0} = {ratio:.3} \
             (noise bound {NOISE_FACTOR})"
        );
    }
    // Quick (CI smoke) windows are too short to hold the noise bound
    // honestly; the committed full-mode run enforces it.
    assert!(
        within || quick,
        "disabled telemetry must be within noise of the reference admission throughput"
    );

    let report = BenchReport {
        bench: "obs_overhead",
        unit: "ns/session",
        chain: format!("{}x{}", CHAIN.0, CHAIN.1),
        batch: BATCH,
        workers: WORKERS,
        disabled_ns_per_session: disabled,
        enabled_ns_per_session: enabled,
        traced_ns_per_session: traced,
        request_traced_ns_per_session: request_traced,
        enabled_overhead_ratio: enabled / disabled,
        traced_overhead_ratio: traced / disabled,
        request_traced_overhead_ratio: request_traced / disabled,
        reference_admission_ns_per_session: reference,
        disabled_vs_reference_ratio: ratio,
        disabled_within_noise: within,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let file = std::fs::File::create(path).expect("create BENCH_obs.json");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
        .expect("serialize bench report");
    println!(
        "enabled overhead {:.3}x, traced {:.3}x -> {path}",
        report.enabled_overhead_ratio, report.traced_overhead_ratio
    );
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
