//! End-to-end simulation throughput: full discrete-event runs of the
//! paper environment (sessions planned + reserved + released per
//! second). One short run per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosr_sim::{run_scenario, PlannerKind, ScenarioConfig};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_run_600tu");
    group.sample_size(10);
    for planner in [
        PlannerKind::Basic,
        PlannerKind::Tradeoff,
        PlannerKind::Random,
    ] {
        let cfg = ScenarioConfig {
            seed: 1,
            rate_per_60tu: 120.0,
            horizon: 600.0,
            planner,
            ..ScenarioConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(planner.label()),
            &cfg,
            |b, cfg| b.iter(|| black_box(run_scenario(cfg))),
        );
    }
    // Stale observations add history queries to every establishment.
    let cfg = ScenarioConfig {
        seed: 1,
        rate_per_60tu: 120.0,
        horizon: 600.0,
        planner: PlannerKind::Basic,
        staleness: 8.0,
        ..ScenarioConfig::default()
    };
    group.bench_function("basic_stale_e8", |b| {
        b.iter(|| black_box(run_scenario(&cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
