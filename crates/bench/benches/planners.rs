//! Planner benchmarks: the four planning algorithms over one prepared
//! QRG (the QRG build itself is measured separately in `qrg.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use qosr_bench::synth::synthetic_chain;
use qosr_broker::LocalBrokerConfig;
use qosr_core::{
    plan_basic, plan_dag, plan_random, plan_tradeoff, AvailabilityView, Qrg, QrgOptions,
};
use qosr_sim::{services::ServiceOptions, PaperEnvironment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_planners(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let env = PaperEnvironment::build(
        &mut rng,
        &ServiceOptions::default(),
        (1000.0, 4000.0),
        LocalBrokerConfig::default(),
    );
    let view = AvailabilityView::from_fn(env.space.ids(), |_| 2000.0);
    let session = env.session(0, 2, 1.0).unwrap();
    let qrg = Qrg::build(&session, &view, &QrgOptions::default());

    let mut group = c.benchmark_group("planners_paper_session");
    group.bench_function("basic", |b| b.iter(|| plan_basic(black_box(&qrg))));
    group.bench_function("tradeoff", |b| b.iter(|| plan_tradeoff(black_box(&qrg))));
    group.bench_function("dag", |b| b.iter(|| plan_dag(black_box(&qrg))));
    group.bench_function("random", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| plan_random(black_box(&qrg), &mut rng))
    });
    group.finish();

    // A larger synthetic chain stresses the relaxation.
    let (session, space) = synthetic_chain(8, 16);
    let view = AvailabilityView::from_fn(space.ids(), |_| 1000.0);
    let qrg = Qrg::build(&session, &view, &QrgOptions::default());
    let mut group = c.benchmark_group("planners_chain_8x16");
    group.bench_function("basic", |b| b.iter(|| plan_basic(black_box(&qrg))));
    group.bench_function("tradeoff", |b| b.iter(|| plan_tradeoff(black_box(&qrg))));
    group.finish();
}

criterion_group!(benches, bench_planners);
criterion_main!(benches);
