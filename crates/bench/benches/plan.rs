//! Planning hot path: per-call QRG construction vs the amortized
//! [`PlanCtx`] (cached skeleton + CSR adjacency + reusable scratch).
//!
//! Each iteration models one establishment attempt against a fresh
//! availability snapshot — the broker's steady-state workload:
//!
//! * `legacy`: `Qrg::build` (allocates nodes, edges, adjacency, demand
//!   vectors) followed by `plan_basic`;
//! * `cached`: `PlanCtx::prepare` + `PlanCtx::plan` on one reused
//!   context (skeleton memoized, buffers recycled, zero steady-state
//!   allocations).
//!
//! In `--bench` mode the measured ns/iter for both paths and the
//! resulting speedup are written to `BENCH_plan.json` at the workspace
//! root; `--quick` shortens the measurement window (CI smoke).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosr_bench::synth::synthetic_chain;
use qosr_core::{plan_basic, AvailabilityView, PlanCtx, Planner, Qrg, QrgOptions};
use qosr_model::{ResourceSpace, SessionInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Chain shapes: (components, levels per component).
const CONFIGS: [(usize, usize); 5] = [(2, 2), (4, 4), (8, 8), (8, 16), (16, 8)];

/// A cycle of availability snapshots so consecutive iterations plan
/// against different (but reproducibly generated) views, as the
/// coordinator does.
fn snapshots(space: &ResourceSpace, n: usize) -> Vec<AvailabilityView> {
    let mut rng = StdRng::seed_from_u64(0x9fb2);
    (0..n)
        .map(|_| {
            use rand::RngExt;
            let mut view = AvailabilityView::new();
            for rid in space.ids() {
                view.set(rid, rng.random_range(50.0..=1000.0));
            }
            view
        })
        .collect()
}

/// Measures `f` with doubling calibration up to `target`, returning
/// mean ns per call.
fn time_ns(mut f: impl FnMut(), target: Duration) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= u64::MAX / 4 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        let per_iter = (elapsed.as_nanos() / u128::from(iters)).max(1);
        iters = ((target.as_nanos() / per_iter) as u64).max(iters * 2);
    }
}

fn legacy_plan(session: &SessionInstance, view: &AvailabilityView, options: &QrgOptions) {
    let qrg = Qrg::build(black_box(session), black_box(view), options);
    let _ = black_box(plan_basic(&qrg));
}

#[derive(Serialize)]
struct ConfigResult {
    components: usize,
    levels: usize,
    legacy_ns_per_plan: f64,
    cached_ns_per_plan: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    planner: &'static str,
    unit: &'static str,
    configs: Vec<ConfigResult>,
    /// Geometric mean of the per-config speedups.
    overall_speedup: f64,
}

fn bench_plan_paths(c: &mut Criterion) {
    let options = QrgOptions::default();
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let quick = std::env::args().any(|a| a == "--quick");
    let target = if quick {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(300)
    };

    // Criterion display: both paths per config.
    let mut group = c.benchmark_group("plan_per_snapshot");
    for &(k, q) in &CONFIGS {
        let (session, space) = synthetic_chain(k, q);
        let views = snapshots(&space, 8);
        group.bench_with_input(
            BenchmarkId::new("legacy", format!("{k}x{q}")),
            &(),
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    legacy_plan(&session, &views[i % views.len()], &options);
                    i += 1;
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cached", format!("{k}x{q}")),
            &(),
            |b, _| {
                let mut ctx = PlanCtx::new();
                let mut i = 0usize;
                b.iter(|| {
                    ctx.prepare(&session, &views[i % views.len()], &options);
                    let _ = black_box(ctx.plan(Planner::Basic, &mut StdRng::seed_from_u64(0)));
                    i += 1;
                })
            },
        );
    }
    group.finish();

    if !bench_mode {
        return; // smoke run (cargo test / CI): no JSON
    }

    // Manual measurement for the committed report.
    let mut configs = Vec::new();
    for &(k, q) in &CONFIGS {
        let (session, space) = synthetic_chain(k, q);
        let views = snapshots(&space, 8);
        let mut i = 0usize;
        let legacy = time_ns(
            || {
                legacy_plan(&session, &views[i % views.len()], &options);
                i += 1;
            },
            target,
        );
        let mut ctx = PlanCtx::new();
        let mut j = 0usize;
        let cached = time_ns(
            || {
                ctx.prepare(&session, &views[j % views.len()], &options);
                let _ = black_box(ctx.plan(Planner::Basic, &mut StdRng::seed_from_u64(0)));
                j += 1;
            },
            target,
        );
        let speedup = legacy / cached;
        println!(
            "plan {k}x{q}: legacy {legacy:.0} ns, cached {cached:.0} ns, speedup {speedup:.2}x"
        );
        configs.push(ConfigResult {
            components: k,
            levels: q,
            legacy_ns_per_plan: legacy,
            cached_ns_per_plan: cached,
            speedup,
        });
    }
    let overall_speedup =
        (configs.iter().map(|c| c.speedup.ln()).sum::<f64>() / configs.len() as f64).exp();
    let report = BenchReport {
        bench: "plan_per_snapshot",
        planner: "basic",
        unit: "ns/plan",
        configs,
        overall_speedup,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan.json");
    let file = std::fs::File::create(path).expect("create BENCH_plan.json");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
        .expect("serialize bench report");
    println!("overall speedup {overall_speedup:.2}x -> {path}");
}

criterion_group!(benches, bench_plan_paths);
criterion_main!(benches);
