//! Broker micro-benchmarks: reserve/release throughput, availability
//! reports (with the α window), atomic multi-resource reservation, and
//! the two-level network broker's all-or-nothing path reservation.

use criterion::{criterion_group, criterion_main, Criterion};
use qosr_broker::{Broker, BrokerRegistry, LocalBroker, LocalBrokerConfig, SessionId, SimTime};
use qosr_model::{ResourceId, ResourceKind, ResourceSpace, ResourceVector};
use qosr_net::{NetNode, NetworkFabric, Topology};
use std::hint::black_box;
use std::sync::Arc;

fn bench_local_broker(c: &mut Criterion) {
    let broker = LocalBroker::new(
        ResourceId(0),
        1.0e12,
        SimTime::ZERO,
        LocalBrokerConfig::default(),
    );
    let mut group = c.benchmark_group("local_broker");
    let mut t = 0.0f64;
    let mut s = 0u64;
    group.bench_function("reserve_release", |b| {
        b.iter(|| {
            t += 0.01;
            s += 1;
            let session = SessionId(s);
            broker
                .reserve(session, 10.0, SimTime::new(t))
                .expect("huge capacity");
            black_box(broker.release(session, SimTime::new(t)));
        })
    });
    group.bench_function("report", |b| {
        b.iter(|| {
            t += 0.01;
            black_box(broker.report(SimTime::new(t)))
        })
    });
    group.bench_function("available_at", |b| {
        b.iter(|| black_box(broker.available_at(SimTime::new(t - 1.0))))
    });
    group.finish();
}

fn bench_registry(c: &mut Criterion) {
    let mut registry = BrokerRegistry::new();
    for i in 0..24u32 {
        registry.register(Arc::new(LocalBroker::new(
            ResourceId(i),
            1.0e12,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        )));
    }
    let demand = ResourceVector::from_pairs((0..4u32).map(|i| (ResourceId(i), 10.0))).unwrap();
    let mut group = c.benchmark_group("registry");
    let mut t = 0.0f64;
    let mut s = 0u64;
    group.bench_function("snapshot_24_resources", |b| {
        b.iter(|| {
            t += 0.01;
            black_box(registry.snapshot(SimTime::new(t)))
        })
    });
    group.bench_function("reserve_all_release_all", |b| {
        b.iter(|| {
            t += 0.01;
            s += 1;
            let session = SessionId(s);
            registry
                .reserve_all(session, &demand, SimTime::new(t))
                .expect("huge capacity");
            black_box(registry.release_all(session, SimTime::new(t)));
        })
    });
    group.finish();
}

fn bench_network_paths(c: &mut Criterion) {
    // Ring of 8 hosts: multi-link routes stress the all-or-nothing path
    // reservation.
    let mut topo = Topology::new(8, 0);
    for i in 0..8 {
        topo.add_link(NetNode::Host(i), NetNode::Host((i + 1) % 8))
            .unwrap();
    }
    let mut space = ResourceSpace::new();
    let _ = ResourceKind::NetworkLink;
    let mut fabric = NetworkFabric::new(
        topo,
        &[1.0e12; 8],
        &mut space,
        SimTime::ZERO,
        LocalBrokerConfig::default(),
    );
    let path = fabric
        .path_broker(NetNode::Host(0), NetNode::Host(4), &mut space)
        .unwrap();
    assert_eq!(path.route().len(), 4);

    let mut group = c.benchmark_group("network_broker");
    let mut t = 0.0f64;
    let mut s = 0u64;
    group.bench_function("reserve_release_4link_path", |b| {
        b.iter(|| {
            t += 0.01;
            s += 1;
            let session = SessionId(s);
            path.reserve(session, 10.0, SimTime::new(t))
                .expect("huge capacity");
            black_box(path.release(session, SimTime::new(t)));
        })
    });
    group.bench_function("report_4link_path", |b| {
        b.iter(|| {
            t += 0.01;
            black_box(path.report(SimTime::new(t)))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_local_broker,
    bench_registry,
    bench_network_paths
);
criterion_main!(benches);
