//! Steady-state replanning: a full prepare (re-evaluate every
//! candidate, re-run Pass I from scratch) per plan against the
//! delta-aware repair path ([`PlanCtx::prepare_delta`]), which diffs
//! the availability view, re-evaluates only the candidates demanding a
//! changed resource, and repairs the cached relaxation downstream of
//! them.
//!
//! The workload is the admission bench's 4×4 chain walking a ping-pong
//! schedule of availability states where consecutive states differ in
//! exactly **one** resource — the steady state the batched admission
//! pipeline sees between epochs. Both paths produce identical plans
//! (asserted step by step before timing); the timed comparison is the
//! relaxation work itself (prepare vs. repair), which is what the
//! pipeline amortizes across a plan group. `--bench` mode writes
//! `BENCH_replan.json` at the workspace root and fails if the repaired
//! path is not ≥ 3× faster; `--quick` shortens the measurement window.

use criterion::{criterion_group, criterion_main, Criterion};
use qosr_bench::synth::synthetic_chain_multi;
use qosr_core::{AvailabilityView, PlanCtx, Planner, QrgOptions, RepairOutcome};
use qosr_model::SessionInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Chain shape: components × levels per component.
const CHAIN: (usize, usize) = (4, 4);
/// Resource slots per component (cpu/mem/io — the paper's
/// multi-resource setting), each bound to its own resource.
const SLOTS: usize = 3;
/// Availability states in the walk. Consecutive states (including the
/// ping-pong turnarounds) differ in exactly one resource.
const STATES: usize = 64;

/// The availability walk: a deterministic multiplicative jitter on one
/// resource per step, staying far from infeasibility so every state
/// plans at the top rank.
fn availability_walk(rids: &[qosr_model::ResourceId]) -> Vec<AvailabilityView> {
    let mut avail: Vec<f64> = (0..rids.len()).map(|i| 90.0 + 7.0 * i as f64).collect();
    let factors = [0.93, 1.06, 0.97, 1.04];
    let mut views = Vec::with_capacity(STATES);
    for s in 0..STATES {
        if s > 0 {
            let r = s % rids.len();
            avail[r] *= factors[s % factors.len()];
        }
        let mut view = AvailabilityView::new();
        for (i, &rid) in rids.iter().enumerate() {
            view.set_with_alpha(rid, avail[i], 1.0);
        }
        views.push(view);
    }
    views
}

/// Ping-pong index schedule over the walk: …, 62, 63, 62, …, 1, 0, 1, …
/// so every step — wrap included — is a one-resource delta.
struct PingPong {
    pos: usize,
    dir: isize,
}

impl PingPong {
    fn new() -> Self {
        PingPong { pos: 0, dir: 1 }
    }
    fn next(&mut self) -> usize {
        if self.pos == STATES - 1 {
            self.dir = -1;
        } else if self.pos == 0 {
            self.dir = 1;
        }
        self.pos = (self.pos as isize + self.dir) as usize;
        self.pos
    }
}

/// Measures `f` with doubling calibration up to `target`, returning
/// mean ns per call.
fn time_ns(mut f: impl FnMut(), target: Duration) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= u64::MAX / 4 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        let per_iter = (elapsed.as_nanos() / u128::from(iters)).max(1);
        iters = ((target.as_nanos() / per_iter) as u64).max(iters * 2);
    }
}

/// Walks both contexts through one full ping-pong lap, asserting the
/// repaired plans are identical to the full-prepare plans, and returns
/// the accumulated repair statistics.
fn verify_equivalence(
    session: &SessionInstance,
    views: &[AvailabilityView],
    options: &QrgOptions,
) -> (u64, u64, u64, u64) {
    let mut full = PlanCtx::new();
    let mut delta = PlanCtx::new();
    let (mut repairs, mut fallbacks, mut nodes, mut reevals) = (0u64, 0u64, 0u64, 0u64);
    let mut schedule = PingPong::new();
    for step in 0..(2 * STATES) {
        let i = if step == 0 { 0 } else { schedule.next() };
        let view = &views[i];
        full.prepare(session, view, options);
        let a = full
            .plan(Planner::Basic, &mut StdRng::seed_from_u64(step as u64))
            .expect("walk stays feasible");
        match delta.prepare_delta(session, view, options) {
            RepairOutcome::Repaired(stats) => {
                repairs += 1;
                nodes += stats.nodes_recomputed as u64;
                reevals += stats.candidates_reevaluated as u64;
            }
            RepairOutcome::Full(_) => fallbacks += 1,
        }
        let b = delta
            .plan(Planner::Basic, &mut StdRng::seed_from_u64(step as u64))
            .expect("walk stays feasible");
        assert_eq!(
            a, b,
            "repaired plan must equal the full plan at step {step}"
        );
    }
    assert_eq!(fallbacks, 1, "only the cold start should rebuild fully");
    (repairs, fallbacks, nodes, reevals)
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    unit: &'static str,
    chain: String,
    slots_per_component: usize,
    resources: usize,
    states: usize,
    psi_threshold: f64,
    full_ns_per_prepare: f64,
    repaired_ns_per_prepare: f64,
    /// `full / repaired` — the acceptance figure (must be ≥ 3).
    speedup: f64,
    repairs: u64,
    cold_fallbacks: u64,
    mean_candidates_reevaluated: f64,
    mean_nodes_recomputed: f64,
}

fn bench_replan(c: &mut Criterion) {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let quick = std::env::args().any(|a| a == "--quick");
    let target = if quick {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(400)
    };

    let (session, space) = synthetic_chain_multi(CHAIN.0, CHAIN.1, SLOTS);
    let rids: Vec<_> = space.ids().collect();
    let views = availability_walk(&rids);
    let options = QrgOptions::default();

    let (repairs, fallbacks, nodes, reevals) = verify_equivalence(&session, &views, &options);

    // Both measured paths walk the same schedule; the delta context is
    // warm from the equivalence lap, so the measurement is pure steady
    // state. The timed unit is the relaxation step (the part the delta
    // path changes); Pass II is identical for both and verified above.
    let mut full = PlanCtx::new();
    let mut delta = PlanCtx::new();
    full.prepare(&session, &views[0], &options);
    delta.prepare_delta(&session, &views[0], &options);
    let mut full_schedule = PingPong::new();
    let mut delta_schedule = PingPong::new();

    let mut group = c.benchmark_group("replan");
    group.bench_function("full", |b| {
        b.iter(|| {
            let view = &views[full_schedule.next()];
            full.prepare(&session, view, &options);
            black_box(&full);
        })
    });
    group.bench_function("repaired", |b| {
        b.iter(|| {
            let view = &views[delta_schedule.next()];
            black_box(delta.prepare_delta(&session, view, &options));
        })
    });
    group.finish();

    if !bench_mode {
        return; // smoke run (cargo test / CI): no JSON
    }

    let full_ns = time_ns(
        || {
            let view = &views[full_schedule.next()];
            full.prepare(&session, view, &options);
            black_box(&full);
        },
        target,
    );
    let repaired_ns = time_ns(
        || {
            let view = &views[delta_schedule.next()];
            black_box(delta.prepare_delta(&session, view, &options));
        },
        target,
    );
    let speedup = full_ns / repaired_ns;
    println!(
        "full {full_ns:.0} ns/prepare, repaired {repaired_ns:.0} ns/prepare, speedup {speedup:.2}x"
    );
    assert!(
        speedup >= 3.0,
        "delta repair must be ≥ 3x faster than a full relaxation in steady state \
         (got {speedup:.2}x)"
    );

    let report = BenchReport {
        bench: "replan",
        unit: "ns/prepare",
        chain: format!("{}x{}", CHAIN.0, CHAIN.1),
        slots_per_component: SLOTS,
        resources: rids.len(),
        states: STATES,
        psi_threshold: 0.0,
        full_ns_per_prepare: full_ns,
        repaired_ns_per_prepare: repaired_ns,
        speedup,
        repairs,
        cold_fallbacks: fallbacks,
        mean_candidates_reevaluated: reevals as f64 / repairs.max(1) as f64,
        mean_nodes_recomputed: nodes as f64 / repairs.max(1) as f64,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replan.json");
    let file = std::fs::File::create(path).expect("create BENCH_replan.json");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
        .expect("serialize bench report");
    println!("-> {path}");
}

criterion_group!(benches, bench_replan);
criterion_main!(benches);
