//! Advance-reservation benchmarks: the O(log n) reservation index
//! against the linear-scan timeline oracle, plus the admitted-volume
//! uplift of malleable (deadline-driven) bulk-transfer planning over
//! naive rigid peak-rate booking.
//!
//! Two figures back the malleable-reservation design:
//!
//! 1. **Window queries.** `TimelineIndex::max_reserved` (treap with
//!    subtree prefix-max aggregates) against `Timeline::max_reserved`
//!    (ordered scan) at one million bookings. The two are held to
//!    bit-identical answers on sample windows before anything is timed
//!    — the index is the oracle's drop-in replacement, just sublinear.
//! 2. **Admitted volume.** The same bulk-transfer workload offered to
//!    a registry twice: once as rigid peak-rate windows (the only
//!    encoding the old API had) and once as malleable requests that
//!    let the planner pick start, duration, and rate under a deadline.
//!    Malleable planning books around the rigid obstacle pattern the
//!    rigid encoding collides with, so it admits strictly more volume.
//!
//! `--bench` mode writes `BENCH_advance.json` at the workspace root
//! and fails unless the index is ≥ 10× faster and the uplift is > 1;
//! `--quick` shortens the measurement window.

use criterion::{criterion_group, criterion_main, Criterion};
use qosr_broker::{
    AdvanceRegistry, AdvanceRequest, SessionId, SimTime, Timeline, TimelineBroker, TimelineIndex,
};
use qosr_model::{ResourceId, ResourceVector};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bookings loaded into both structures before querying (`--bench`
/// mode; the smoke run scales down — the acceptance figure is claimed
/// at this size).
const BOOKINGS: usize = 1_000_000;
/// Horizon the bookings scatter over, in TU.
const HORIZON: u64 = 1_000_000;
/// Query windows cycled during measurement.
const QUERIES: usize = 256;
/// Differential-oracle checks before timing.
const CHECKS: usize = 200;

/// Uplift workload: one resource of this capacity…
const CAPACITY: f64 = 100.0;
/// …pre-loaded with rigid obstacle sessions of this demand…
const OBSTACLE_AMOUNT: f64 = 70.0;
/// …occupying the first half of every period of this length.
const OBSTACLE_PERIOD: f64 = 20.0;
const OBSTACLE_BUSY: f64 = 10.0;
const OBSTACLES: usize = 52;
/// Transfers offered on top of the obstacles: `TRANSFER_VOLUME` units
/// each, arriving every `TRANSFER_SPACING` TU with `TRANSFER_SLACK` TU
/// until the deadline, rate-capped at `TRANSFER_RATE`.
const TRANSFERS: usize = 60;
const TRANSFER_VOLUME: f64 = 400.0;
const TRANSFER_RATE: f64 = 50.0;
const TRANSFER_SPACING: f64 = 16.0;
const TRANSFER_SLACK: f64 = 24.0;

/// Builds the oracle and the index holding the same `count` bookings.
/// Integer amounts keep every level sum exact, so the two must agree
/// bitwise on any window.
fn build_structures(count: usize) -> (Timeline, TimelineIndex) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut oracle = Timeline::new();
    let mut index = TimelineIndex::new();
    for _ in 0..count {
        let from = rng.random_range(0..HORIZON) as f64;
        let len = rng.random_range(1..1000u64) as f64;
        let amount = rng.random_range(1..100u64) as f64;
        let (from, to) = (SimTime::new(from), SimTime::new(from + len));
        oracle.add(from, to, amount);
        index.add(from, to, amount);
    }
    (oracle, index)
}

/// Random query windows spanning short probes to quarter-horizon scans.
fn query_windows(count: usize) -> Vec<(SimTime, SimTime)> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..count)
        .map(|_| {
            let from = rng.random_range(0..HORIZON) as f64;
            let len = rng.random_range(1..HORIZON / 4) as f64;
            (SimTime::new(from), SimTime::new(from + len))
        })
        .collect()
}

/// Measures `f` with doubling calibration up to `target`, returning
/// mean ns per call.
fn time_ns(mut f: impl FnMut(), target: Duration) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= u64::MAX / 4 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        let per_iter = (elapsed.as_nanos() / u128::from(iters)).max(1);
        iters = ((target.as_nanos() / per_iter) as u64).max(iters * 2);
    }
}

/// One fresh registry with the periodic rigid obstacle pattern booked.
fn registry_with_obstacles(rid: ResourceId) -> AdvanceRegistry {
    let mut registry = AdvanceRegistry::new();
    registry.register(Arc::new(TimelineBroker::new(rid, CAPACITY)));
    for k in 0..OBSTACLES {
        let from = k as f64 * OBSTACLE_PERIOD;
        let demand = ResourceVector::from_pairs([(rid, OBSTACLE_AMOUNT)]).expect("demand");
        let request = AdvanceRequest::rigid(
            SessionId(k as u64 + 1),
            demand,
            SimTime::new(from),
            SimTime::new(from + OBSTACLE_BUSY),
        );
        assert!(
            registry.book(&request, SimTime::ZERO).is_booked(),
            "obstacles fit an empty timeline"
        );
    }
    registry
}

/// Offers the transfer workload twice — rigid peak-rate windows vs
/// malleable deadline requests — returning
/// `(rigid_volume, rigid_count, malleable_volume, malleable_count)`.
fn admitted_volumes(rid: ResourceId) -> (f64, usize, f64, usize) {
    let rigid_reg = registry_with_obstacles(rid);
    let malleable_reg = registry_with_obstacles(rid);
    let (mut rigid_volume, mut rigid_count) = (0.0, 0);
    let (mut malleable_volume, mut malleable_count) = (0.0, 0);
    for i in 0..TRANSFERS {
        let session = SessionId(1000 + i as u64);
        let arrival = i as f64 * TRANSFER_SPACING;
        // Rigid encoding: the transfer as a fixed window at peak rate
        // starting now — all the old positional API could express.
        let duration = TRANSFER_VOLUME / TRANSFER_RATE;
        let demand = ResourceVector::from_pairs([(rid, TRANSFER_RATE)]).expect("demand");
        let request = AdvanceRequest::rigid(
            session,
            demand,
            SimTime::new(arrival),
            SimTime::new(arrival + duration),
        );
        if rigid_reg.book(&request, SimTime::new(arrival)).is_booked() {
            rigid_volume += TRANSFER_VOLUME;
            rigid_count += 1;
        }
        // Malleable encoding: same volume, same resource, a deadline —
        // start, duration, and rate are the planner's to choose.
        let request = AdvanceRequest::malleable(
            session,
            rid,
            TRANSFER_VOLUME,
            SimTime::new(arrival + TRANSFER_SLACK),
        )
        .earliest(SimTime::new(arrival))
        .max_rate(TRANSFER_RATE);
        if let Some(profile) = malleable_reg
            .book(&request, SimTime::new(arrival))
            .profile()
        {
            malleable_volume += profile.volume;
            malleable_count += 1;
        }
    }
    (rigid_volume, rigid_count, malleable_volume, malleable_count)
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    unit: &'static str,
    bookings: usize,
    horizon_tu: u64,
    breakpoints: usize,
    oracle_ns_per_query: f64,
    index_ns_per_query: f64,
    /// `oracle / index` — the acceptance figure (must be ≥ 10).
    query_speedup: f64,
    transfers_offered: usize,
    transfer_volume: f64,
    rigid_admitted_transfers: usize,
    rigid_admitted_volume: f64,
    malleable_admitted_transfers: usize,
    malleable_admitted_volume: f64,
    /// `malleable / rigid` admitted volume (must be > 1).
    admitted_volume_uplift: f64,
}

fn bench_advance(c: &mut Criterion) {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let quick = std::env::args().any(|a| a == "--quick");
    let target = if quick {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(400)
    };
    // The headline claim is made at a million bookings; the smoke run
    // (no `--bench`, no JSON) only exercises the paths.
    let bookings = if bench_mode { BOOKINGS } else { 20_000 };

    let (oracle, index) = build_structures(bookings);
    assert_eq!(
        oracle.breakpoints(),
        index.breakpoints(),
        "oracle and index must hold the same breakpoint set"
    );
    let windows = query_windows(QUERIES);
    for &(from, to) in windows.iter().cycle().take(CHECKS) {
        let want = oracle.max_reserved(from, to);
        let got = index.max_reserved(from, to);
        assert_eq!(
            want.to_bits(),
            got.to_bits(),
            "index must answer bit-identically to the oracle on [{from}, {to})"
        );
    }

    let mut group = c.benchmark_group("advance");
    let mut i = 0usize;
    group.bench_function("oracle_window_query", |b| {
        b.iter(|| {
            let (from, to) = windows[i % windows.len()];
            i += 1;
            black_box(oracle.max_reserved(from, to));
        })
    });
    let mut j = 0usize;
    group.bench_function("index_window_query", |b| {
        b.iter(|| {
            let (from, to) = windows[j % windows.len()];
            j += 1;
            black_box(index.max_reserved(from, to));
        })
    });
    group.finish();

    let rid = ResourceId(0);
    let (rigid_volume, rigid_count, malleable_volume, malleable_count) = admitted_volumes(rid);
    assert!(
        rigid_volume > 0.0,
        "the rigid baseline must admit something for the uplift to be a ratio"
    );
    let uplift = malleable_volume / rigid_volume;

    if !bench_mode {
        return; // smoke run (cargo test / CI): no JSON
    }

    let mut i = 0usize;
    let oracle_ns = time_ns(
        || {
            let (from, to) = windows[i % windows.len()];
            i += 1;
            black_box(oracle.max_reserved(from, to));
        },
        target,
    );
    let mut j = 0usize;
    let index_ns = time_ns(
        || {
            let (from, to) = windows[j % windows.len()];
            j += 1;
            black_box(index.max_reserved(from, to));
        },
        target,
    );
    let speedup = oracle_ns / index_ns;
    println!(
        "oracle {oracle_ns:.0} ns/query, index {index_ns:.0} ns/query, speedup {speedup:.1}x; \
         admitted volume rigid {rigid_volume:.0} ({rigid_count} transfers) vs malleable \
         {malleable_volume:.0} ({malleable_count} transfers), uplift {uplift:.2}x"
    );
    assert!(
        speedup >= 10.0,
        "the reservation index must answer window queries ≥ 10x faster than the \
         linear-scan oracle at {bookings} bookings (got {speedup:.1}x)"
    );
    assert!(
        uplift > 1.0,
        "malleable planning must admit more volume than rigid peak-rate booking \
         (got {uplift:.2}x)"
    );

    let report = BenchReport {
        bench: "advance",
        unit: "ns/query",
        bookings,
        horizon_tu: HORIZON,
        breakpoints: index.breakpoints(),
        oracle_ns_per_query: oracle_ns,
        index_ns_per_query: index_ns,
        query_speedup: speedup,
        transfers_offered: TRANSFERS,
        transfer_volume: TRANSFER_VOLUME,
        rigid_admitted_transfers: rigid_count,
        rigid_admitted_volume: rigid_volume,
        malleable_admitted_transfers: malleable_count,
        malleable_admitted_volume: malleable_volume,
        admitted_volume_uplift: uplift,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_advance.json");
    let file = std::fs::File::create(path).expect("create BENCH_advance.json");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
        .expect("serialize bench report");
    println!("-> {path}");
}

criterion_group!(benches, bench_advance);
criterion_main!(benches);
