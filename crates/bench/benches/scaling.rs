//! Complexity-scaling bench for the runtime algorithm (§4.2 claims
//! O(K·Q²) for K components with Q output levels each).
//!
//! Two sweeps: K at fixed Q (expect ~linear growth) and Q at fixed K
//! (expect ~quadratic growth). Each measurement covers QRG construction
//! plus the basic planner — the paper's "runtime algorithm" end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosr_bench::synth::synthetic_chain;
use qosr_core::{plan_dag, AvailabilityView, Qrg, QrgOptions};
use std::hint::black_box;

fn build_and_plan(session: &qosr_model::SessionInstance, view: &AvailabilityView) {
    let qrg = Qrg::build(session, view, &QrgOptions::default());
    black_box(plan_dag(&qrg).expect("ample availability"));
}

fn bench_scaling_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_k_at_q8");
    for k in [2usize, 4, 8, 16, 32] {
        let (session, space) = synthetic_chain(k, 8);
        let view = AvailabilityView::from_fn(space.ids(), |_| 1.0e6);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| build_and_plan(&session, &view))
        });
    }
    group.finish();
}

fn bench_scaling_q(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_q_at_k4");
    for q in [4usize, 8, 16, 32, 64] {
        let (session, space) = synthetic_chain(4, q);
        let view = AvailabilityView::from_fn(space.ids(), |_| 1.0e6);
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, _| {
            b.iter(|| build_and_plan(&session, &view))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_k, bench_scaling_q);
criterion_main!(benches);
