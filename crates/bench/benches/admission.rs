//! Batched admission throughput: the pre-redesign establishment path —
//! every request taking its own availability-collection round and the
//! whole fleet funnelling through one global mutex — against the
//! [`AdmissionQueue`] pipeline, which plans a whole batch against one
//! epoch-stamped snapshot on a pool of plan contexts and commits
//! sequentially.
//!
//! The world is deliberately broker-heavy (4 hosts, `EXTRA_PER_HOST`
//! background resources each, as a deployed QoSProxy tracks every host
//! CPU and link, not just the ones one session touches), so phase-1
//! collection costs what it costs in the paper's environment. The
//! measured ns/session for the mutex baseline (1 and 4 driver threads)
//! and the pipeline (1/2/4/8 workers) land in `BENCH_admission.json`
//! at the workspace root in `--bench` mode; `--quick` shortens the
//! measurement window (CI smoke).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosr_bench::synth::synthetic_chain;
use qosr_broker::{
    AdmissionConfig, AdmissionQueue, BrokerRegistry, Coordinator, EstablishedSession, LocalBroker,
    LocalBrokerConfig, QosProxy, SessionRequest, SimTime,
};
use qosr_model::{ResourceKind, SessionInstance};
use qosr_obs::Phase;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Chain shape: components × levels per component.
const CHAIN: (usize, usize) = (4, 4);
/// Requests per admission round.
const BATCH: usize = 128;
/// Hosts (QoSProxies) the chain's resources are spread across.
const HOSTS: usize = 4;
/// Background resources per host (host CPUs, links, devices the proxy
/// tracks but this service does not touch).
const EXTRA_PER_HOST: usize = 30;
/// Worker counts measured for the pipeline.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

struct World {
    coordinator: Coordinator,
    session: SessionInstance,
    resources: usize,
}

/// 4 proxies, chain resources spread round-robin, plus the background
/// fleet; capacities are effectively unbounded so the measurement is
/// pure admission cost, never conflict handling.
fn build_world() -> World {
    let (session, mut space) = synthetic_chain(CHAIN.0, CHAIN.1);
    let chain_rids: Vec<_> = space.ids().collect();
    let mut registries: Vec<BrokerRegistry> = (0..HOSTS).map(|_| BrokerRegistry::new()).collect();
    for (c, rid) in chain_rids.iter().enumerate() {
        registries[c % HOSTS].register(Arc::new(LocalBroker::new(
            *rid,
            1.0e12,
            SimTime::ZERO,
            LocalBrokerConfig::default(),
        )));
    }
    for (h, registry) in registries.iter_mut().enumerate() {
        for i in 0..EXTRA_PER_HOST {
            let rid = space.register(format!("bg{h}_{i}"), ResourceKind::Compute);
            registry.register(Arc::new(LocalBroker::new(
                rid,
                1.0e12,
                SimTime::ZERO,
                LocalBrokerConfig::default(),
            )));
        }
    }
    let resources = space.ids().count();
    let proxies: Vec<_> = registries
        .into_iter()
        .enumerate()
        .map(|(h, reg)| Arc::new(QosProxy::new(format!("H{h}"), reg)))
        .collect();
    World {
        coordinator: Coordinator::new(proxies),
        session,
        resources,
    }
}

fn requests(world: &World) -> Vec<SessionRequest> {
    (0..BATCH)
        .map(|_| SessionRequest::new(world.session.clone()))
        .collect()
}

fn terminate_all(world: &World, held: &mut Vec<EstablishedSession>, now: SimTime) {
    for est in held.drain(..) {
        world.coordinator.terminate(&est, now);
    }
}

/// One round of the pre-redesign design: `threads` drivers share a
/// single global mutex around establishment (the old coordinator held
/// one `Mutex<PlanCtx>` and one `Mutex<MessageStats>`, serialising the
/// whole path), and every request runs its own phase-1 collect.
fn mutex_round(world: &World, reqs: &[SessionRequest], threads: usize, now: SimTime) {
    let gate = Mutex::new(());
    let cursor = AtomicUsize::new(0);
    let mut held = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let gate = &gate;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t as u64);
                    let mut established = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= reqs.len() {
                            break established;
                        }
                        let guard = gate.lock().unwrap();
                        let outcome = world.coordinator.establish_request(&reqs[i], now, &mut rng);
                        drop(guard);
                        if let Some(est) = outcome.into_session() {
                            established.push(est);
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("driver thread panicked"))
            .collect::<Vec<_>>()
    });
    assert_eq!(held.len(), reqs.len(), "unbounded capacity must admit all");
    terminate_all(world, &mut held, now);
}

/// One round through the admission pipeline at `workers` planners.
fn pipeline_round(queue: &AdmissionQueue<'_>, reqs: &[SessionRequest], now: SimTime) {
    let world = queue.coordinator();
    let mut held: Vec<_> = queue
        .admit(reqs, now)
        .into_iter()
        .filter_map(|o| o.into_session())
        .collect();
    assert_eq!(held.len(), reqs.len(), "unbounded capacity must admit all");
    for est in held.drain(..) {
        world.terminate(&est, now);
    }
}

/// Measures `f` with doubling calibration up to `target`, returning
/// mean ns per call.
fn time_ns(mut f: impl FnMut(), target: Duration) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= u64::MAX / 4 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        let per_iter = (elapsed.as_nanos() / u128::from(iters)).max(1);
        iters = ((target.as_nanos() / per_iter) as u64).max(iters * 2);
    }
}

#[derive(Serialize)]
struct WorkerResult {
    workers: usize,
    ns_per_session: f64,
    /// Throughput multiple over the 4-thread single-mutex baseline.
    speedup_vs_mutex_4thread: f64,
}

/// One pipeline phase's wall-clock profile over the instrumented pass.
#[derive(Serialize)]
struct PhaseBreakdown {
    phase: &'static str,
    spans: u64,
    mean_ns: f64,
    p99_ns: u64,
    /// Phase time attributed to each admitted session
    /// (`sum / (rounds × batch)`).
    ns_per_session: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    unit: &'static str,
    chain: String,
    batch: usize,
    hosts: usize,
    world_resources: usize,
    mutex_1thread_ns_per_session: f64,
    mutex_4thread_ns_per_session: f64,
    pipeline: Vec<WorkerResult>,
    /// `mutex_4thread / pipeline[workers=4]` — the acceptance figure.
    speedup_at_4_workers: f64,
    /// Collect/plan/commit/replan split of the pipeline at 4 workers,
    /// measured on a separate pass with the phase timers enabled (the
    /// headline numbers above stay instrumentation-free).
    phase_breakdown: Vec<PhaseBreakdown>,
}

fn bench_admission(c: &mut Criterion) {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let quick = std::env::args().any(|a| a == "--quick");
    let target = if quick {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(400)
    };

    let world = build_world();
    let reqs = requests(&world);
    let mut t = 0.0f64;
    let mut tick = || {
        t += 1.0;
        SimTime::new(t)
    };

    // Criterion display: per-round cost of each path.
    let mut group = c.benchmark_group("batched_admission");
    group.bench_function(BenchmarkId::new("mutex", "4thread"), |b| {
        b.iter(|| mutex_round(&world, &reqs, 4, black_box(tick())))
    });
    for &w in &WORKERS {
        let queue = AdmissionQueue::new(
            &world.coordinator,
            AdmissionConfig {
                workers: w,
                seed: 0x5eed,
                ..AdmissionConfig::default()
            },
        );
        group.bench_function(BenchmarkId::new("pipeline", format!("{w}workers")), |b| {
            b.iter(|| pipeline_round(&queue, &reqs, black_box(tick())))
        });
    }
    group.finish();

    if !bench_mode {
        return; // smoke run (cargo test / CI): no JSON
    }

    // Manual measurement for the committed report.
    let per_session = |round_ns: f64| round_ns / BATCH as f64;
    let mutex_1 = per_session(time_ns(|| mutex_round(&world, &reqs, 1, tick()), target));
    let mutex_4 = per_session(time_ns(|| mutex_round(&world, &reqs, 4, tick()), target));
    println!("mutex baseline: 1 thread {mutex_1:.0} ns/session, 4 threads {mutex_4:.0} ns/session");

    let mut pipeline = Vec::new();
    for &w in &WORKERS {
        let queue = AdmissionQueue::new(
            &world.coordinator,
            AdmissionConfig {
                workers: w,
                seed: 0x5eed,
                ..AdmissionConfig::default()
            },
        );
        let ns = per_session(time_ns(|| pipeline_round(&queue, &reqs, tick()), target));
        let speedup = mutex_4 / ns;
        println!("pipeline {w} workers: {ns:.0} ns/session, {speedup:.2}x vs mutex@4");
        pipeline.push(WorkerResult {
            workers: w,
            ns_per_session: ns,
            speedup_vs_mutex_4thread: speedup,
        });
    }
    let speedup_at_4_workers = pipeline
        .iter()
        .find(|r| r.workers == 4)
        .map(|r| r.speedup_vs_mutex_4thread)
        .unwrap_or(f64::NAN);

    // Per-phase breakdown on a separate instrumented pass (the live
    // span timers are disabled during the headline measurements, so
    // those stay free of measurement overhead).
    let timers = world.coordinator.phase_timers();
    timers.set_enabled(true);
    let queue = AdmissionQueue::new(
        &world.coordinator,
        AdmissionConfig {
            workers: 4,
            seed: 0x5eed,
            ..AdmissionConfig::default()
        },
    );
    let rounds: usize = if quick { 20 } else { 200 };
    for _ in 0..rounds {
        pipeline_round(&queue, &reqs, tick());
    }
    timers.set_enabled(false);
    let sessions = (rounds * BATCH) as f64;
    let phase_breakdown: Vec<PhaseBreakdown> =
        [Phase::Collect, Phase::Plan, Phase::Commit, Phase::Replan]
            .into_iter()
            .map(|phase| {
                let hist = timers.histogram(phase);
                PhaseBreakdown {
                    phase: phase.name(),
                    spans: hist.count(),
                    mean_ns: hist.mean().unwrap_or(0.0),
                    p99_ns: hist.percentile(0.99).unwrap_or(0),
                    ns_per_session: hist.sum() as f64 / sessions,
                }
            })
            .collect();
    for p in &phase_breakdown {
        println!(
            "phase {:<8} {} spans, mean {:.0} ns, {:.0} ns/session",
            p.phase, p.spans, p.mean_ns, p.ns_per_session
        );
    }

    let report = BenchReport {
        bench: "batched_admission",
        unit: "ns/session",
        chain: format!("{}x{}", CHAIN.0, CHAIN.1),
        batch: BATCH,
        hosts: HOSTS,
        world_resources: world.resources,
        mutex_1thread_ns_per_session: mutex_1,
        mutex_4thread_ns_per_session: mutex_4,
        pipeline,
        speedup_at_4_workers,
        phase_breakdown,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_admission.json");
    let file = std::fs::File::create(path).expect("create BENCH_admission.json");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), &report)
        .expect("serialize bench report");
    println!("speedup at 4 workers {speedup_at_4_workers:.2}x -> {path}");
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
