//! # qosr-bench — experiment harness and benchmark support
//!
//! * [`experiments`] — one module per table/figure of the paper's §5,
//!   each producing the same rows/series the paper reports (shape
//!   reproduction; see EXPERIMENTS.md for paper-vs-measured).
//! * [`table`] — plain-text table rendering for the harness output.
//!
//! The `experiments` binary (`cargo run --release -p qosr-bench --bin
//! experiments -- <cmd>`) drives these; the Criterion benches under
//! `benches/` cover the micro-performance side (QRG construction,
//! planner runtime, broker throughput, O(KQ²) scaling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod oracle;
pub mod synth;
pub mod table;
