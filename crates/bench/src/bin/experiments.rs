//! The experiments harness: regenerates every table and figure of the
//! paper's §5.
//!
//! ```text
//! experiments <command> [--seeds N] [--horizon TU] [--scale S] [--out DIR] [--quick]
//!
//! commands:
//!   fig11       success rate & avg QoS vs generation rate (basic/tradeoff/random)
//!   table1      selected paths, type-A services (fig 10(a)), basic vs tradeoff
//!   table2      selected paths, type-B services (fig 10(b))
//!   table3      per-class success/QoS, basic
//!   table4      per-class success/QoS, tradeoff
//!   fig12       success rate under stale observations (E sweep), both panels
//!   fig13       success rate & QoS under low requirement diversity (3:1)
//!   bottleneck  bottleneck-resource census ("every resource bottlenecks")
//!   ablation    psi definition / tie-break / window / topology ablations
//!   overhead    protocol message counts per establishment (§4.2)
//!   upgrade     in-place QoS upgrades via renegotiation (extension)
//!   timeseries  sampled per-resource utilization over one run (CSV)
//!   dagquality  DAG-heuristic limitations vs the exhaustive oracle
//!   calibrate   requirement-scale sweep against the paper's anchors
//!   all         everything above (except calibrate)
//! ```

use qosr_bench::experiments::{
    ablation, bottleneck, calibrate, dagquality, fig11, fig12, fig13, overhead, tables12, tables34,
    timeseries, upgrade, ExperimentOpts,
};
use qosr_sim::PlannerKind;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, opts)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    match command.as_str() {
        "fig11" => print!("{}", fig11::render(&fig11::run(&opts))),
        "table1" => print!(
            "{}",
            tables12::render_table(
                "Table 1: selected reservation paths (type-A services, figure 10(a))",
                &tables12::run(&opts).type_a
            )
        ),
        "table2" => print!(
            "{}",
            tables12::render_table(
                "Table 2: selected reservation paths (type-B services, figure 10(b))",
                &tables12::run(&opts).type_b
            )
        ),
        "tables12" => print!("{}", tables12::render(&tables12::run(&opts))),
        "table3" => print!(
            "{}",
            tables34::render(&tables34::run(&opts, PlannerKind::Basic))
        ),
        "table4" => print!(
            "{}",
            tables34::render(&tables34::run(&opts, PlannerKind::Tradeoff))
        ),
        "fig12" => {
            print!("{}", fig12::render(&fig12::run(&opts, PlannerKind::Basic)));
            println!();
            print!(
                "{}",
                fig12::render(&fig12::run(&opts, PlannerKind::Tradeoff))
            );
        }
        "fig13" => print!("{}", fig13::render(&fig13::run(&opts))),
        "bottleneck" => print!("{}", bottleneck::render(&bottleneck::run(&opts))),
        "ablation" => print!("{}", ablation::render(&ablation::run(&opts))),
        "overhead" => print!("{}", overhead::render(&overhead::run(&opts))),
        "upgrade" => print!("{}", upgrade::render(&upgrade::run(&opts))),
        "timeseries" => print!("{}", timeseries::run_and_report(&opts)),
        "calibrate" => print!("{}", calibrate::render(&calibrate::run(&opts))),
        "dagquality" => print!("{}", dagquality::render(&dagquality::run(2000))),
        "all" => {
            println!("=== Figure 11 ===");
            print!("{}", fig11::render(&fig11::run(&opts)));
            println!("\n=== Tables 1 & 2 ===");
            print!("{}", tables12::render(&tables12::run(&opts)));
            println!("\n=== Table 3 ===");
            print!(
                "{}",
                tables34::render(&tables34::run(&opts, PlannerKind::Basic))
            );
            println!("\n=== Table 4 ===");
            print!(
                "{}",
                tables34::render(&tables34::run(&opts, PlannerKind::Tradeoff))
            );
            println!("\n=== Figure 12 ===");
            print!("{}", fig12::render(&fig12::run(&opts, PlannerKind::Basic)));
            println!();
            print!(
                "{}",
                fig12::render(&fig12::run(&opts, PlannerKind::Tradeoff))
            );
            println!("\n=== Figure 13 ===");
            print!("{}", fig13::render(&fig13::run(&opts)));
            println!("\n=== Bottleneck census ===");
            print!("{}", bottleneck::render(&bottleneck::run(&opts)));
            println!("\n=== Protocol overhead ===");
            print!("{}", overhead::render(&overhead::run(&opts)));
            println!("\n=== Renegotiation extension ===");
            print!("{}", upgrade::render(&upgrade::run(&opts)));
            println!("\n=== Ablations ===");
            print!("{}", ablation::render(&ablation::run(&opts)));
            println!("\n=== Utilization time series ===");
            print!("{}", timeseries::run_and_report(&opts));
            println!("\n=== DAG heuristic quality ===");
            print!("{}", dagquality::render(&dagquality::run(2000)));
        }
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

const USAGE: &str = "usage: experiments <fig11|table1|table2|table3|table4|fig12|fig13|bottleneck|ablation|overhead|upgrade|timeseries|dagquality|calibrate|all> \
[--seeds N] [--horizon TU] [--scale S] [--out DIR] [--quick]";

fn parse(args: &[String]) -> Option<(String, ExperimentOpts)> {
    let mut command = None;
    let mut opts = ExperimentOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                let out = opts.out_dir.take();
                let scale = opts.scale;
                opts = ExperimentOpts::quick();
                opts.out_dir = out;
                opts.scale = scale;
            }
            "--seeds" => {
                i += 1;
                opts.seeds = args.get(i)?.parse().ok()?;
            }
            "--horizon" => {
                i += 1;
                opts.horizon = args.get(i)?.parse().ok()?;
            }
            "--scale" => {
                i += 1;
                opts.scale = args.get(i)?.parse().ok()?;
            }
            "--out" => {
                i += 1;
                opts.out_dir = Some(args.get(i)?.into());
            }
            word if !word.starts_with('-') && command.is_none() => {
                command = Some(word.to_owned());
            }
            _ => return None,
        }
        i += 1;
    }
    Some((command?, opts))
}
