//! Figure 11: overall reservation success rate (a) and average
//! end-to-end QoS level (b) vs. session generation rate, for *basic*,
//! *tradeoff*, and *random*.

use super::{dump_results, run_seeded, ExperimentOpts, ALGORITHMS, RATE_SWEEP};
use crate::table::{pct, qos, TextTable};
use qosr_sim::ScenarioConfig;

/// One rate's data point for the three algorithms.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Point {
    /// Sessions per 60 TU.
    pub rate: f64,
    /// Success rate per algorithm, in [`ALGORITHMS`] order.
    pub success_rate: [f64; 3],
    /// Average end-to-end QoS level per algorithm.
    pub avg_qos: [f64; 3],
}

/// Runs the figure-11 sweep and returns one point per rate.
pub fn run(opts: &ExperimentOpts) -> Vec<Fig11Point> {
    let base = opts.base_config();
    let configs: Vec<ScenarioConfig> = RATE_SWEEP
        .iter()
        .flat_map(|&rate| {
            let base = base.clone();
            ALGORITHMS.iter().map(move |&planner| ScenarioConfig {
                rate_per_60tu: rate,
                planner,
                ..base.clone()
            })
        })
        .collect();
    let (merged, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, "fig11", &raw);

    RATE_SWEEP
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let group = &merged[i * ALGORITHMS.len()..(i + 1) * ALGORITHMS.len()];
            Fig11Point {
                rate,
                success_rate: [
                    group[0].overall.success_rate(),
                    group[1].overall.success_rate(),
                    group[2].overall.success_rate(),
                ],
                avg_qos: [
                    group[0].overall.avg_qos_level(),
                    group[1].overall.avg_qos_level(),
                    group[2].overall.avg_qos_level(),
                ],
            }
        })
        .collect()
}

/// Renders both panels as text tables.
pub fn render(points: &[Fig11Point]) -> String {
    let mut out = String::new();
    out.push_str("Figure 11(a): overall reservation success rate\n");
    let mut t = TextTable::new(["rate (ssn/60TU)", "basic", "tradeoff", "random"]);
    for p in points {
        t.row([
            format!("{:.0}", p.rate),
            pct(p.success_rate[0]),
            pct(p.success_rate[1]),
            pct(p.success_rate[2]),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nFigure 11(b): average end-to-end QoS level (successful sessions)\n");
    let mut t = TextTable::new(["rate (ssn/60TU)", "basic", "tradeoff", "random"]);
    for p in points {
        t.row([
            format!("{:.0}", p.rate),
            qos(p.avg_qos[0]),
            qos(p.avg_qos[1]),
            qos(p.avg_qos[2]),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shapes() {
        let points = vec![Fig11Point {
            rate: 60.0,
            success_rate: [0.99, 1.0, 0.97],
            avg_qos: [3.0, 2.4, 2.99],
        }];
        let s = render(&points);
        assert!(s.contains("Figure 11(a)"));
        assert!(s.contains("99.0%"));
        assert!(s.contains("2.40"));
    }
}
