//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. the ψ definition (the paper's footnote 2 says alternates are
//!    possible — how much does the choice matter?);
//! 2. the Dijkstra tie-breaking rule (min incoming weight among equal
//!    minimax values);
//! 3. the tradeoff window `T` (the paper's only tunable, set to 3 TU).

use super::{dump_results, run_seeded, ExperimentOpts};
use crate::table::{pct, qos, TextTable};
use qosr_sim::{PlannerKind, PsiKind, ScenarioConfig, TopologyKind};

/// Rates used for the ablation grid (moderate and heavy load).
pub const RATES: [f64; 2] = [100.0, 180.0];

/// Alpha windows swept for the tradeoff-T ablation.
pub const WINDOWS: [f64; 4] = [1.0, 3.0, 10.0, 30.0];

/// Full ablation output.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// `(psi, rate) -> (success rate, avg QoS)` for *basic*.
    pub psi: Vec<(PsiKind, f64, f64, f64)>,
    /// `(tie_break_enabled, rate) -> (success rate, avg QoS)` for *basic*.
    pub tie_break: Vec<(bool, f64, f64, f64)>,
    /// `(window T, rate) -> (success rate, avg QoS)` for *tradeoff*.
    pub window: Vec<(f64, f64, f64, f64)>,
    /// `(topology, rate) -> (success rate, avg QoS)` for *basic*.
    pub topology: Vec<(TopologyKind, f64, f64, f64)>,
}

/// Runs all three ablations.
pub fn run(opts: &ExperimentOpts) -> AblationReport {
    let base = opts.base_config();

    // ψ definitions.
    let psi_kinds = [
        PsiKind::Utilization,
        PsiKind::Headroom,
        PsiKind::NegLogSurvival,
    ];
    let mut configs = Vec::new();
    for &psi in &psi_kinds {
        for &rate in &RATES {
            configs.push(ScenarioConfig {
                planner: PlannerKind::Basic,
                psi,
                rate_per_60tu: rate,
                ..base.clone()
            });
        }
    }
    let (merged, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, "ablation-psi", &raw);
    let mut psi_rows = Vec::new();
    for (i, &psi) in psi_kinds.iter().enumerate() {
        for (j, &rate) in RATES.iter().enumerate() {
            let m = &merged[i * RATES.len() + j];
            psi_rows.push((
                psi,
                rate,
                m.overall.success_rate(),
                m.overall.avg_qos_level(),
            ));
        }
    }

    // Tie-break on/off.
    let mut configs = Vec::new();
    for &disabled in &[false, true] {
        for &rate in &RATES {
            configs.push(ScenarioConfig {
                planner: PlannerKind::Basic,
                disable_tie_break: disabled,
                rate_per_60tu: rate,
                ..base.clone()
            });
        }
    }
    let (merged, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, "ablation-tiebreak", &raw);
    let mut tie_rows = Vec::new();
    for (i, &disabled) in [false, true].iter().enumerate() {
        for (j, &rate) in RATES.iter().enumerate() {
            let m = &merged[i * RATES.len() + j];
            tie_rows.push((
                !disabled,
                rate,
                m.overall.success_rate(),
                m.overall.avg_qos_level(),
            ));
        }
    }

    // Tradeoff window T.
    let mut configs = Vec::new();
    for &window in &WINDOWS {
        for &rate in &RATES {
            configs.push(ScenarioConfig {
                planner: PlannerKind::Tradeoff,
                alpha_window: window,
                rate_per_60tu: rate,
                ..base.clone()
            });
        }
    }
    let (merged, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, "ablation-window", &raw);
    let mut window_rows = Vec::new();
    for (i, &window) in WINDOWS.iter().enumerate() {
        for (j, &rate) in RATES.iter().enumerate() {
            let m = &merged[i * RATES.len() + j];
            window_rows.push((
                window,
                rate,
                m.overall.success_rate(),
                m.overall.avg_qos_level(),
            ));
        }
    }

    // Topology variant.
    let mut configs = Vec::new();
    for &topology in &[TopologyKind::FullMesh, TopologyKind::Ring] {
        for &rate in &RATES {
            configs.push(ScenarioConfig {
                planner: PlannerKind::Basic,
                topology,
                rate_per_60tu: rate,
                ..base.clone()
            });
        }
    }
    let (merged, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, "ablation-topology", &raw);
    let mut topo_rows = Vec::new();
    for (i, &topology) in [TopologyKind::FullMesh, TopologyKind::Ring]
        .iter()
        .enumerate()
    {
        for (j, &rate) in RATES.iter().enumerate() {
            let m = &merged[i * RATES.len() + j];
            topo_rows.push((
                topology,
                rate,
                m.overall.success_rate(),
                m.overall.avg_qos_level(),
            ));
        }
    }

    AblationReport {
        psi: psi_rows,
        tie_break: tie_rows,
        window: window_rows,
        topology: topo_rows,
    }
}

/// Renders the ablation report.
pub fn render(report: &AblationReport) -> String {
    let mut out = String::new();

    out.push_str("Ablation 1: ψ definition (basic)\n");
    let mut t = TextTable::new(["psi", "rate", "success", "avg QoS"]);
    for &(psi, rate, sr, q) in &report.psi {
        t.row([format!("{psi:?}"), format!("{rate:.0}"), pct(sr), qos(q)]);
    }
    out.push_str(&t.render());

    out.push_str("\nAblation 2: Dijkstra tie-break rule (basic)\n");
    let mut t = TextTable::new(["tie-break", "rate", "success", "avg QoS"]);
    for &(enabled, rate, sr, q) in &report.tie_break {
        t.row([
            if enabled { "on (paper)" } else { "off" }.to_owned(),
            format!("{rate:.0}"),
            pct(sr),
            qos(q),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nAblation 3: tradeoff window T (tradeoff)\n");
    let mut t = TextTable::new(["T (TU)", "rate", "success", "avg QoS"]);
    for &(window, rate, sr, q) in &report.window {
        t.row([
            format!("{window:.0}"),
            format!("{rate:.0}"),
            pct(sr),
            qos(q),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nAblation 4: inter-host topology (basic)\n");
    let mut t = TextTable::new(["topology", "rate", "success", "avg QoS"]);
    for &(topology, rate, sr, q) in &report.topology {
        t.row([
            format!("{topology:?}"),
            format!("{rate:.0}"),
            pct(sr),
            qos(q),
        ]);
    }
    out.push_str(&t.render());
    out
}
