//! Tables 1 and 2: selected end-to-end reservation paths and their
//! selection percentages, in QRGs of the type-A (Table 1) and type-B
//! (Table 2) services, under *basic* and *tradeoff*, at 80 sessions per
//! 60 TU.

use super::{dump_results, run_seeded, ExperimentOpts};
use crate::table::TextTable;
use qosr_sim::{PathHistogram, PlannerKind, ScenarioConfig};
use std::collections::BTreeSet;

/// Path-selection histograms for one service type under both algorithms.
#[derive(Debug, Clone)]
pub struct PathTable {
    /// The histogram under *basic*.
    pub basic: PathHistogram,
    /// The histogram under *tradeoff*.
    pub tradeoff: PathHistogram,
}

/// Both tables' data.
#[derive(Debug, Clone)]
pub struct Tables12 {
    /// Table 1 (type-A services, figure 10(a)).
    pub type_a: PathTable,
    /// Table 2 (type-B services, figure 10(b)).
    pub type_b: PathTable,
}

/// The generation rate the paper records path selections at.
pub const RATE: f64 = 80.0;

/// Runs the path-selection experiment.
pub fn run(opts: &ExperimentOpts) -> Tables12 {
    let base = opts.base_config();
    let configs = vec![
        ScenarioConfig {
            rate_per_60tu: RATE,
            planner: PlannerKind::Basic,
            ..base.clone()
        },
        ScenarioConfig {
            rate_per_60tu: RATE,
            planner: PlannerKind::Tradeoff,
            ..base
        },
    ];
    let (merged, raw) = run_seeded(&configs, opts.seeds);
    dump_results(opts, "tables12", &raw);
    Tables12 {
        type_a: PathTable {
            basic: merged[0].paths_a.clone(),
            tradeoff: merged[1].paths_a.clone(),
        },
        type_b: PathTable {
            basic: merged[0].paths_b.clone(),
            tradeoff: merged[1].paths_b.clone(),
        },
    }
}

/// Renders one table (all labels selected by either algorithm).
pub fn render_table(title: &str, table: &PathTable) -> String {
    let mut labels: BTreeSet<String> = BTreeSet::new();
    labels.extend(table.basic.iter().map(|(l, _)| l.to_owned()));
    labels.extend(table.tradeoff.iter().map(|(l, _)| l.to_owned()));
    let mut t = TextTable::new(["Selected path", "basic", "tradeoff"]);
    for label in &labels {
        t.row([
            label.clone(),
            format!("{:.1}%", 100.0 * table.basic.fraction(label)),
            format!("{:.1}%", 100.0 * table.tradeoff.fraction(label)),
        ]);
    }
    format!("{title}\n{}", t.render())
}

/// Renders both tables.
pub fn render(tables: &Tables12) -> String {
    format!(
        "{}\n{}",
        render_table(
            "Table 1: selected reservation paths (type-A services, figure 10(a))",
            &tables.type_a
        ),
        render_table(
            "Table 2: selected reservation paths (type-B services, figure 10(b))",
            &tables.type_b
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_labels_from_both() {
        let mut basic = PathHistogram::default();
        basic.record("Qa-Qb-Qe-Qh-Ql-Qp");
        let mut tradeoff = PathHistogram::default();
        tradeoff.record("Qa-Qd-Qg-Qk-Qo-Qq");
        let s = render_table("T", &PathTable { basic, tradeoff });
        assert!(s.contains("Qa-Qb-Qe-Qh-Ql-Qp"));
        assert!(s.contains("Qa-Qd-Qg-Qk-Qo-Qq"));
        assert!(s.contains("100.0%"));
        assert!(s.contains("0.0%"));
    }
}
