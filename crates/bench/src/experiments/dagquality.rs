//! Heuristic-quality census for the two-pass DAG algorithm (§4.3.2).
//!
//! The paper documents two limitations of its DAG heuristic but does not
//! quantify them. This experiment measures both over a corpus of random
//! diamond-family DAG scenarios, comparing against the exhaustive
//! embedded-graph oracle:
//!
//! 1. **spurious failures** — Pass II gives up although a feasible
//!    embedding exists;
//! 2. **suboptimal bottlenecks** — the returned plan's `Ψ_G` exceeds the
//!    global minimum for its sink level.

use crate::oracle::best_embedding;
use crate::synth::random_dag_scenario;
use crate::table::TextTable;
use qosr_core::{plan_dag, AvailabilityView, PlanError, Qrg, QrgOptions};

/// Aggregate results over the corpus.
#[derive(Debug, Clone, Default)]
pub struct DagQualityReport {
    /// Scenarios examined.
    pub scenarios: u64,
    /// Heuristic produced a plan.
    pub success: u64,
    /// …thereof with globally minimal `Ψ_G`.
    pub optimal_psi: u64,
    /// Mean of `Ψ_G / Ψ_opt` over successful plans (1.0 = always
    /// optimal).
    pub mean_psi_ratio: f64,
    /// Worst observed `Ψ_G / Ψ_opt`.
    pub worst_psi_ratio: f64,
    /// Pass II failed although an embedding exists (limitation 1).
    pub spurious_failures: u64,
    /// Pass II failed and no embedding exists either.
    pub true_failures: u64,
    /// No end-to-end level was Pass-I reachable (genuinely infeasible).
    pub infeasible: u64,
}

/// Runs the census over `n` seeded scenarios.
pub fn run(n: u64) -> DagQualityReport {
    let mut report = DagQualityReport {
        scenarios: n,
        worst_psi_ratio: 1.0,
        ..DagQualityReport::default()
    };
    let mut ratio_sum = 0.0;
    for seed in 0..n {
        let (session, space, avail) = random_dag_scenario(seed);
        let mut view = AvailabilityView::new();
        for (i, rid) in space.ids().enumerate() {
            view.set(rid, avail[i]);
        }
        let qrg = Qrg::build(&session, &view, &QrgOptions::default());
        match plan_dag(&qrg) {
            Ok(plan) => {
                report.success += 1;
                let best =
                    best_embedding(&session, &view).expect("a plan implies an embedding exists");
                debug_assert_eq!(plan.sink_level, best.sink_level);
                let ratio = if best.psi > 0.0 {
                    plan.psi / best.psi
                } else {
                    1.0
                };
                ratio_sum += ratio;
                report.worst_psi_ratio = report.worst_psi_ratio.max(ratio);
                if plan.psi <= best.psi + 1e-9 {
                    report.optimal_psi += 1;
                }
            }
            Err(PlanError::BacktrackFailed { .. }) => {
                if best_embedding(&session, &view).is_some() {
                    report.spurious_failures += 1;
                } else {
                    report.true_failures += 1;
                }
            }
            Err(PlanError::NoFeasiblePlan) => report.infeasible += 1,
            Err(e) => unreachable!("unexpected planner error {e}"),
        }
    }
    report.mean_psi_ratio = if report.success > 0 {
        ratio_sum / report.success as f64
    } else {
        1.0
    };
    report
}

/// Renders the census.
pub fn render(r: &DagQualityReport) -> String {
    let mut t = TextTable::new(["measure", "value"]);
    let pct = |a: u64, b: u64| {
        if b == 0 {
            "-".to_owned()
        } else {
            format!("{:.1}%", 100.0 * a as f64 / b as f64)
        }
    };
    t.row(["scenarios".to_owned(), r.scenarios.to_string()]);
    t.row([
        "planned".to_owned(),
        format!("{} ({})", r.success, pct(r.success, r.scenarios)),
    ]);
    t.row([
        "…with globally minimal Ψ_G".to_owned(),
        format!("{} ({})", r.optimal_psi, pct(r.optimal_psi, r.success)),
    ]);
    t.row([
        "mean Ψ_G / Ψ_opt".to_owned(),
        format!("{:.4}", r.mean_psi_ratio),
    ]);
    t.row([
        "worst Ψ_G / Ψ_opt".to_owned(),
        format!("{:.4}", r.worst_psi_ratio),
    ]);
    t.row([
        "spurious Pass-II failures".to_owned(),
        format!(
            "{} ({})",
            r.spurious_failures,
            pct(r.spurious_failures, r.scenarios)
        ),
    ]);
    t.row([
        "true Pass-II failures".to_owned(),
        r.true_failures.to_string(),
    ]);
    t.row(["infeasible scenarios".to_owned(), r.infeasible.to_string()]);
    format!(
        "DAG-heuristic quality census (random diamond-family DAGs vs exhaustive oracle)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_runs_and_accounts_for_everything() {
        let r = run(64);
        assert_eq!(
            r.success + r.spurious_failures + r.true_failures + r.infeasible,
            r.scenarios
        );
        assert!(r.mean_psi_ratio >= 1.0 - 1e-9);
        assert!(r.worst_psi_ratio >= r.mean_psi_ratio - 1e-9);
        let s = render(&r);
        assert!(s.contains("scenarios"));
        assert!(s.contains("64"));
    }
}
