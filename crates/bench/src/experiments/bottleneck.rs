//! §5.2.2's side claim: *"every resource in the environment becomes the
//! bottleneck resource on a path for at least once during the
//! simulation"* — measured by the bottleneck-resource histogram of the
//! plans the *basic* algorithm commits at 80 sessions per 60 TU.

use super::{dump_results, run_seeded, ExperimentOpts};
use crate::table::TextTable;
use qosr_sim::{PlannerKind, ScenarioConfig};
use std::collections::BTreeMap;

/// Bottleneck histogram plus the list of reservable resources that never
/// became a bottleneck.
#[derive(Debug, Clone)]
pub struct BottleneckReport {
    /// Times each resource was a committed plan's bottleneck.
    pub counts: BTreeMap<String, u64>,
    /// Reservable resources (host CPUs and network paths in use) that
    /// never appeared.
    pub never: Vec<String>,
}

/// Runs the bottleneck census.
pub fn run(opts: &ExperimentOpts) -> BottleneckReport {
    let cfg = ScenarioConfig {
        rate_per_60tu: 80.0,
        planner: PlannerKind::Basic,
        ..opts.base_config()
    };
    let (merged, raw) = run_seeded(&[cfg], opts.seeds);
    dump_results(opts, "bottleneck", &raw);
    let counts = merged[0].bottlenecks.clone();

    // The reservable resources sessions can actually demand: 4 host CPUs,
    // 12 server->proxy paths, 8 proxy->domain paths (same inventory for
    // every seed).
    let mut expected: Vec<String> = (1..=4).map(|h| format!("H{h}.cpu")).collect();
    for s in 1..=4 {
        for p in 1..=4 {
            if s != p {
                expected.push(format!("path:H{s}->H{p}"));
            }
        }
    }
    for d in 1..=8usize {
        let p = (d - 1) / 2 + 1;
        expected.push(format!("path:H{p}->D{d}"));
    }
    let never = expected
        .into_iter()
        .filter(|name| !counts.contains_key(name))
        .collect();
    BottleneckReport { counts, never }
}

/// Renders the census.
pub fn render(report: &BottleneckReport) -> String {
    let total: u64 = report.counts.values().sum();
    let mut t = TextTable::new(["resource", "times bottleneck", "share"]);
    for (name, &count) in &report.counts {
        t.row([
            name.clone(),
            count.to_string(),
            format!("{:.1}%", 100.0 * count as f64 / total.max(1) as f64),
        ]);
    }
    let tail = if report.never.is_empty() {
        "every reservable resource became the bottleneck at least once ✓".to_owned()
    } else {
        format!("never bottleneck: {}", report.never.join(", "))
    };
    format!(
        "Bottleneck-resource census (basic, 80 ssn/60TU)\n{}\n{tail}\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_missing() {
        let report = BottleneckReport {
            counts: BTreeMap::from([("H1.cpu".to_owned(), 10)]),
            never: vec!["L3".to_owned()],
        };
        let s = render(&report);
        assert!(s.contains("H1.cpu"));
        assert!(s.contains("never bottleneck: L3"));
        let ok = BottleneckReport {
            counts: BTreeMap::new(),
            never: vec![],
        };
        assert!(render(&ok).contains("at least once"));
    }
}
